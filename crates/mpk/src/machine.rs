//! The simulated machine: paged memory, PKRU, faults, cycle counter.

use crate::addr::{pages_covering, PageNum, VAddr, PAGE_SIZE};
use crate::cost::CostModel;
use crate::fault::{AccessKind, Fault, FaultKind};
use crate::page::{PageEntry, PageFlags};
use crate::pkru::{Pkru, ProtKey};
use std::collections::{HashMap, VecDeque};

/// A machine-level event, recorded (when enabled) with the cycle count at
/// which it happened. Drained by observability layers above the machine
/// ([`Machine::drain_events`]); the machine itself never interprets them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineEvent {
    /// A page changed protection key (`pkey_mprotect`).
    Retag {
        /// Cycle count when the retag completed.
        at: u64,
        /// Base address of the retagged page.
        addr: VAddr,
        /// Key before the retag.
        from: ProtKey,
        /// Key after the retag.
        to: ProtKey,
    },
    /// The PKRU register was written (`wrpkru`).
    WrPkru {
        /// Cycle count when the write completed.
        at: u64,
        /// The value written.
        pkru: Pkru,
    },
}

/// Event counters maintained by the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MachineStats {
    /// Data loads performed.
    pub reads: u64,
    /// Data stores performed.
    pub writes: u64,
    /// Bytes loaded.
    pub bytes_read: u64,
    /// Bytes stored.
    pub bytes_written: u64,
    /// PKRU register writes (`wrpkru`).
    pub wrpkru: u64,
    /// Page key re-assignments (`pkey_mprotect`).
    pub retags: u64,
    /// Protection faults raised (all kinds).
    pub faults: u64,
}

/// The simulated MPK machine.
///
/// Owns the page table, page frames, the current thread's PKRU register and
/// the cycle counter. See the crate-level documentation for an example.
///
/// The machine enforces *mechanism* only: every access is checked against
/// the page flags and the PKRU value, and violations surface as [`Fault`]s.
/// It has no notion of cubicles or windows — that policy lives in
/// `cubicle-core`, which reacts to faults by consulting its window ACLs and
/// retagging pages ([`Machine::set_page_key`]).
#[derive(Debug, Default)]
pub struct Machine {
    page_table: HashMap<PageNum, PageEntry>,
    frames: HashMap<PageNum, Box<[u8]>>,
    pkru: Pkru,
    cycles: u64,
    cost: CostModel,
    stats: MachineStats,
    /// Models the paper's proposed hardware modification (§5.5): "whenever
    /// read and write access is disabled \[for a key\], execution is too".
    /// Enabled by default, as CubicleOS assumes it for CFI.
    exec_obeys_pkru: bool,
    /// Bounded event ring, `None` when recording is off (the default).
    /// Recording never charges simulated cycles.
    events: Option<EventRing>,
}

#[derive(Debug)]
struct EventRing {
    buf: VecDeque<MachineEvent>,
    capacity: usize,
    dropped: u64,
}

impl Machine {
    /// Creates a machine with the calibrated [`CostModel::paper`] costs.
    pub fn new() -> Machine {
        Machine::with_cost_model(CostModel::paper())
    }

    /// Creates a machine with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> Machine {
        Machine {
            page_table: HashMap::new(),
            frames: HashMap::new(),
            pkru: Pkru::deny_all(),
            cycles: 0,
            cost,
            stats: MachineStats::default(),
            exec_obeys_pkru: true,
            events: None,
        }
    }

    /// Enables (`Some(capacity)`) or disables (`None`) the machine event
    /// ring. When the ring is full the oldest event is overwritten and
    /// [`Machine::events_dropped`] grows. Recording is free of simulated
    /// cycles either way.
    pub fn set_event_recording(&mut self, capacity: Option<usize>) {
        self.events = capacity.map(|capacity| EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        });
    }

    /// Removes and returns all recorded events, oldest first. Empty when
    /// recording is off.
    pub fn drain_events(&mut self) -> Vec<MachineEvent> {
        match &mut self.events {
            Some(ring) => ring.buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Events overwritten because the ring was full (since recording was
    /// last enabled).
    pub fn events_dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, |r| r.dropped)
    }

    fn record_event(&mut self, event: MachineEvent) {
        if let Some(ring) = &mut self.events {
            if ring.buf.len() >= ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(event);
        }
    }

    /// Returns the active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Enables or disables the paper's MPK hardware modification that makes
    /// execution rights follow the PKRU access-disable bit (§5.5).
    pub fn set_exec_obeys_pkru(&mut self, enabled: bool) {
        self.exec_obeys_pkru = enabled;
    }

    // ---------------------------------------------------------------------
    // Cycle accounting
    // ---------------------------------------------------------------------

    /// Current simulated cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Charges `cycles` of simulated work (used by components to model
    /// compute that does not touch simulated memory).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Event counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    // ---------------------------------------------------------------------
    // Page table management
    // ---------------------------------------------------------------------

    /// Maps the page containing `addr` with the given key and flags,
    /// backed by a zeroed frame.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped — the caller (the CubicleOS
    /// monitor) owns the address-space layout, so a double map is a kernel
    /// bug, not a recoverable condition.
    pub fn map_page(&mut self, addr: VAddr, key: ProtKey, flags: PageFlags) {
        let page = addr.page();
        let prev = self.page_table.insert(page, PageEntry::new(key, flags));
        assert!(prev.is_none(), "page {page:?} double-mapped");
        self.frames
            .insert(page, vec![0u8; PAGE_SIZE].into_boxed_slice());
    }

    /// Unmaps the page containing `addr`, discarding its contents.
    ///
    /// Returns `true` if a page was actually unmapped.
    pub fn unmap_page(&mut self, addr: VAddr) -> bool {
        let page = addr.page();
        self.frames.remove(&page);
        self.page_table.remove(&page).is_some()
    }

    /// Returns the page-table entry for the page containing `addr`.
    pub fn page_entry(&self, addr: VAddr) -> Option<PageEntry> {
        self.page_table.get(&addr.page()).copied()
    }

    /// All pages currently tagged with `key` (used by tag-virtualisation
    /// layers that must park an evicted key's pages).
    pub fn pages_with_key(&self, key: ProtKey) -> Vec<PageNum> {
        let mut pages: Vec<PageNum> = self
            .page_table
            .iter()
            .filter(|(_, e)| e.key == key)
            .map(|(&p, _)| p)
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Re-assigns the protection key of a mapped page, charging the
    /// `pkey_mprotect` cost. This is the retag operation at the heart of
    /// trap-and-map: the frame contents are untouched (zero-copy).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] with [`FaultKind::NotPresent`] if the page is
    /// not mapped.
    pub fn set_page_key(&mut self, addr: VAddr, key: ProtKey) -> Result<(), Fault> {
        let page = addr.page();
        match self.page_table.get_mut(&page) {
            Some(entry) => {
                let from = entry.key;
                entry.key = key;
                self.cycles += self.cost.pkey_mprotect;
                self.stats.retags += 1;
                if self.events.is_some() {
                    self.record_event(MachineEvent::Retag {
                        at: self.cycles,
                        addr: page.base(),
                        from,
                        to: key,
                    });
                }
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    /// Like [`Machine::set_page_key`] but free of charge: used at load /
    /// deployment time, which the paper's measurements exclude.
    pub fn set_page_key_at_load(&mut self, addr: VAddr, key: ProtKey) -> Result<(), Fault> {
        let page = addr.page();
        match self.page_table.get_mut(&page) {
            Some(entry) => {
                entry.key = key;
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    /// Changes the R/W/X flags of a mapped page (loader only; free).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the page is not mapped.
    pub fn set_page_flags(&mut self, addr: VAddr, flags: PageFlags) -> Result<(), Fault> {
        let page = addr.page();
        match self.page_table.get_mut(&page) {
            Some(entry) => {
                entry.flags = flags;
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Read,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    // ---------------------------------------------------------------------
    // PKRU
    // ---------------------------------------------------------------------

    /// Current PKRU value of the (single) hardware thread.
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// Writes the PKRU register (`wrpkru`), charging ~20 cycles.
    pub fn set_pkru(&mut self, pkru: Pkru) {
        self.pkru = pkru;
        self.cycles += self.cost.wrpkru;
        self.stats.wrpkru += 1;
        if self.events.is_some() {
            self.record_event(MachineEvent::WrPkru {
                at: self.cycles,
                pkru,
            });
        }
    }

    /// Writes the PKRU register without charging cycles (boot-time setup).
    pub fn set_pkru_at_load(&mut self, pkru: Pkru) {
        self.pkru = pkru;
    }

    // ---------------------------------------------------------------------
    // Checked access
    // ---------------------------------------------------------------------

    /// Checks whether an access of `len` bytes at `addr` would be allowed
    /// under the current PKRU, without performing it or charging cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`Fault`] the access would raise.
    pub fn check_access(&self, addr: VAddr, len: usize, access: AccessKind) -> Result<(), Fault> {
        for page in pages_covering(addr, len) {
            let entry = self.page_table.get(&page).ok_or(Fault {
                addr: page.base().max(addr),
                access,
                kind: FaultKind::NotPresent,
            })?;
            let flags_ok = match access {
                AccessKind::Read => entry.flags.can_read(),
                AccessKind::Write => entry.flags.can_write(),
                AccessKind::Execute => entry.flags.can_execute(),
            };
            if !flags_ok {
                return Err(Fault {
                    addr: page.base().max(addr),
                    access,
                    kind: FaultKind::Permission,
                });
            }
            let rights = self.pkru.rights(entry.key);
            let key_ok = match access {
                AccessKind::Read => rights.can_read(),
                AccessKind::Write => rights.can_write(),
                // The paper's proposed hardware change: AD=1 also disables
                // execution. Without the change, MPK never blocks fetches.
                AccessKind::Execute => !self.exec_obeys_pkru || rights.can_read(),
            };
            if !key_ok {
                return Err(Fault {
                    addr: page.base().max(addr),
                    access,
                    kind: FaultKind::ProtectionKey(entry.key),
                });
            }
        }
        Ok(())
    }

    /// Loads `buf.len()` bytes starting at `addr`.
    ///
    /// The access is atomic: either every covered page passes the
    /// protection checks and the full range is copied, or nothing is.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] and counts it in [`MachineStats::faults`] when
    /// any covered page refuses the access.
    pub fn read(&mut self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        if let Err(fault) = self.check_access(addr, buf.len(), AccessKind::Read) {
            self.stats.faults += 1;
            return Err(fault);
        }
        self.cycles += self.cost.mem_access(buf.len());
        self.stats.reads += 1;
        self.stats.bytes_read += buf.len() as u64;
        let mut done = 0;
        let mut cur = addr;
        while done < buf.len() {
            let page = cur.page();
            let off = cur.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - done);
            let frame = self.frames.get(&page).expect("mapped page has a frame");
            buf[done..done + chunk].copy_from_slice(&frame[off..off + chunk]);
            done += chunk;
            cur = page.next().base();
        }
        Ok(())
    }

    /// Stores `data` starting at `addr`. Atomic like [`Machine::read`].
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] when any covered page refuses the access.
    pub fn write(&mut self, addr: VAddr, data: &[u8]) -> Result<(), Fault> {
        if let Err(fault) = self.check_access(addr, data.len(), AccessKind::Write) {
            self.stats.faults += 1;
            return Err(fault);
        }
        self.cycles += self.cost.mem_access(data.len());
        self.stats.writes += 1;
        self.stats.bytes_written += data.len() as u64;
        let mut done = 0;
        let mut cur = addr;
        while done < data.len() {
            let page = cur.page();
            let off = cur.page_offset();
            let chunk = (PAGE_SIZE - off).min(data.len() - done);
            let frame = self.frames.get_mut(&page).expect("mapped page has a frame");
            frame[off..off + chunk].copy_from_slice(&data[done..done + chunk]);
            done += chunk;
            cur = page.next().base();
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::read`].
    pub fn read_u64(&mut self, addr: VAddr) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::write`].
    pub fn write_u64(&mut self, addr: VAddr, value: u64) -> Result<(), Fault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Checks an instruction fetch at `addr` (one simulated instruction).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] when the page is unmapped, not executable, or —
    /// with the paper's hardware modification — its key is
    /// access-disabled in the current PKRU.
    pub fn fetch_check(&mut self, addr: VAddr) -> Result<(), Fault> {
        match self.check_access(addr, 1, AccessKind::Execute) {
            Ok(()) => Ok(()),
            Err(fault) => {
                self.stats.faults += 1;
                Err(fault)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_page(m: &mut Machine, raw: u64, key: u8) -> VAddr {
        let addr = VAddr::new(raw);
        m.map_page(addr, ProtKey::new(key).unwrap(), PageFlags::rw());
        addr
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a + 100, b"cubicle").unwrap();
        let mut buf = [0u8; 7];
        m.read(a + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"cubicle");
    }

    #[test]
    fn cross_page_access() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x2000, 1);
        m.set_pkru(Pkru::allow_all());
        let data: Vec<u8> = (0..=255).collect();
        m.write(a + (PAGE_SIZE - 100), &data).unwrap();
        let mut buf = vec![0u8; 256];
        m.read(a + (PAGE_SIZE - 100), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn pkru_blocks_and_faults_are_counted() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 3);
        m.set_pkru(Pkru::deny_all());
        let err = m.write(a, b"x").unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(ProtKey::new(3).unwrap()));
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn read_only_key_blocks_writes_only() {
        let mut m = Machine::new();
        let k = ProtKey::new(2).unwrap();
        let a = rw_page(&mut m, 0x1000, 2);
        m.set_pkru(Pkru::deny_all().allowing_read(k));
        let mut buf = [0u8; 4];
        assert!(m.read(a, &mut buf).is_ok());
        assert!(m.write(a, b"nope").is_err());
    }

    #[test]
    fn page_flags_override_pkru() {
        let mut m = Machine::new();
        let a = VAddr::new(0x1000);
        m.map_page(a, ProtKey::new(1).unwrap(), PageFlags::r());
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_ok());
        let err = m.write(a, b"x").unwrap_err();
        assert_eq!(err.kind, FaultKind::Permission);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Machine::new();
        m.set_pkru(Pkru::allow_all());
        let err = m.read(VAddr::new(0x5000), &mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind, FaultKind::NotPresent);
    }

    #[test]
    fn atomicity_on_partial_failure() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        // second page unmapped: nothing must be written to the first
        m.set_pkru(Pkru::allow_all());
        let data = vec![0xAA; PAGE_SIZE + 10];
        assert!(m.write(a, &data).is_err());
        let mut probe = [0u8; 1];
        m.read(a, &mut probe).unwrap();
        assert_eq!(probe[0], 0, "failed cross-page write must not be partial");
    }

    #[test]
    fn retag_preserves_contents_zero_copy() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"payload").unwrap();
        let before = m.stats().retags;
        m.set_page_key(a, ProtKey::new(9).unwrap()).unwrap();
        assert_eq!(m.stats().retags, before + 1);
        assert_eq!(m.page_entry(a).unwrap().key, ProtKey::new(9).unwrap());
        let mut buf = [0u8; 7];
        m.read(a, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn retag_charges_pkey_mprotect() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        let t0 = m.now();
        m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        assert_eq!(m.now() - t0, CostModel::paper().pkey_mprotect);
    }

    #[test]
    fn load_time_retag_is_free() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        let t0 = m.now();
        m.set_page_key_at_load(a, ProtKey::new(2).unwrap()).unwrap();
        assert_eq!(m.now(), t0);
        assert_eq!(m.stats().retags, 0);
    }

    #[test]
    fn wrpkru_charges_20_cycles() {
        let mut m = Machine::new();
        let t0 = m.now();
        m.set_pkru(Pkru::allow_all());
        assert_eq!(m.now() - t0, 20);
        assert_eq!(m.stats().wrpkru, 1);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write_u64(a + 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(a + 8).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn exec_only_page_is_unreadable() {
        let mut m = Machine::new();
        let a = VAddr::new(0x1000);
        m.map_page(a, ProtKey::new(1).unwrap(), PageFlags::x());
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_err());
        assert!(m.fetch_check(a).is_ok());
    }

    #[test]
    fn exec_obeys_pkru_hardware_modification() {
        let mut m = Machine::new();
        let k = ProtKey::new(4).unwrap();
        let a = VAddr::new(0x1000);
        m.map_page(a, k, PageFlags::x());
        m.set_pkru(Pkru::deny_all());
        // With the paper's hardware change (default): fetch faults.
        let err = m.fetch_check(a).unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(k));
        // Vanilla MPK: fetch is not subject to keys.
        m.set_exec_obeys_pkru(false);
        assert!(m.fetch_check(a).is_ok());
    }

    #[test]
    fn unmap_discards() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        assert!(m.unmap_page(a));
        assert!(!m.unmap_page(a));
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut m = Machine::new();
        rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x1000, 2);
    }

    #[test]
    fn stats_track_bytes() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, &[1, 2, 3]).unwrap();
        m.read(a, &mut [0u8; 2]).unwrap();
        let s = m.stats();
        assert_eq!(s.bytes_written, 3);
        assert_eq!(s.bytes_read, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn charge_advances_clock() {
        let mut m = Machine::with_cost_model(CostModel::free());
        m.charge(123);
        assert_eq!(m.now(), 123);
    }

    #[test]
    fn event_ring_records_retags_and_wrpkru() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_event_recording(Some(16));
        m.set_pkru(Pkru::allow_all());
        m.set_page_key(a, ProtKey::new(5).unwrap()).unwrap();
        let events = m.drain_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], MachineEvent::WrPkru { .. }));
        match events[1] {
            MachineEvent::Retag { addr, from, to, at } => {
                assert_eq!(addr, a);
                assert_eq!(from, ProtKey::new(1).unwrap());
                assert_eq!(to, ProtKey::new(5).unwrap());
                assert_eq!(at, m.now());
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(m.drain_events().is_empty(), "drain empties the ring");
    }

    #[test]
    fn event_ring_overwrites_oldest_when_full() {
        let mut m = Machine::new();
        m.set_event_recording(Some(3));
        for _ in 0..5 {
            m.set_pkru(Pkru::allow_all());
        }
        assert_eq!(m.events_dropped(), 2);
        assert_eq!(m.drain_events().len(), 3);
    }

    #[test]
    fn event_recording_is_cycle_free() {
        let mut untraced = Machine::new();
        let mut traced = Machine::new();
        traced.set_event_recording(Some(64));
        for m in [&mut untraced, &mut traced] {
            let a = rw_page(m, 0x1000, 1);
            m.set_pkru(Pkru::allow_all());
            m.write(a, b"data").unwrap();
            m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        }
        assert_eq!(untraced.now(), traced.now());
    }

    #[test]
    fn recording_off_records_nothing() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        assert!(m.drain_events().is_empty());
        assert_eq!(m.events_dropped(), 0);
    }
}

//! The simulated machine: paged memory, PKRU, faults, cycle counter.
//!
//! # Host performance vs simulated cost
//!
//! The machine separates two notions of "fast" that must never mix:
//!
//! * **Simulated cost** — the cycles charged per operation, fixed by the
//!   [`CostModel`]. These numbers produce the paper's figures.
//! * **Host cost** — the wall-clock time the simulator itself spends.
//!
//! The memory system is organised for host speed without perturbing the
//! simulated side by a single cycle, counter or fault:
//!
//! * a **flat, region-based page table** ([`PageTable`]): pages live in
//!   512-page chunks found by binary search; each chunk backs its pages
//!   with one contiguous 2 MiB frame slab, so a translation is an index
//!   computation instead of a hash-map probe, and a copy spanning many
//!   pages of one chunk collapses into a single `memcpy`;
//! * a **software TLB**: a small direct-mapped cache of recent
//!   (page → chunk/slot, key, flags) translations. Access rights are
//!   evaluated against the *live* PKRU at hit time (two bit tests), so
//!   `wrpkru` — which CubicleOS executes four times per cross-call —
//!   needs no invalidation at all; the TLB is invalidated per page on
//!   retag/flag changes and wholesale when chunk indices shift.
//!   Hit/miss counts are exposed through [`MachineStats`] as *host*
//!   observability; they never influence charged cycles;
//! * **fused check+copy**: an access that fits one page translates,
//!   checks and copies in a single pass. Multi-page accesses pre-scan
//!   all covered pages first (into a reusable scratch vector) so the
//!   all-or-nothing fault atomicity of the original two-pass design is
//!   preserved exactly, then copy chunk-contiguous runs at once.

use crate::addr::{pages_covering, PageNum, VAddr, PAGE_SIZE};
use crate::cost::CostModel;
use crate::fault::{AccessKind, Fault, FaultKind};
use crate::page::{PageEntry, PageFlags};
use crate::pkru::{Pkru, ProtKey};
use std::collections::VecDeque;

/// A machine-level event, recorded (when enabled) with the cycle count at
/// which it happened. Drained by observability layers above the machine
/// ([`Machine::drain_events`]); the machine itself never interprets them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineEvent {
    /// A page changed protection key (`pkey_mprotect`).
    Retag {
        /// Cycle count when the retag completed.
        at: u64,
        /// Base address of the retagged page.
        addr: VAddr,
        /// Key before the retag.
        from: ProtKey,
        /// Key after the retag.
        to: ProtKey,
    },
    /// The PKRU register was written (`wrpkru`).
    WrPkru {
        /// Cycle count when the write completed.
        at: u64,
        /// The value written.
        pkru: Pkru,
    },
    /// A page was reclaimed (unmapped) via [`Machine::reclaim_page`] —
    /// the quarantine path tearing down a cubicle's address space.
    Unmap {
        /// Cycle count when the unmap completed.
        at: u64,
        /// Base address of the reclaimed page.
        addr: VAddr,
        /// The key the page carried when reclaimed.
        key: ProtKey,
    },
}

/// Event counters maintained by the machine.
///
/// The first seven counters describe the *simulated* machine and are part
/// of the golden regression surface. The TLB counters describe the
/// *simulator* (host-side translation caching) — they are deterministic
/// for a deterministic workload but intentionally excluded from golden
/// snapshots, since toggling [`Machine::set_tlb_enabled`] changes them
/// without changing any simulated behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MachineStats {
    /// Data loads performed.
    pub reads: u64,
    /// Data stores performed.
    pub writes: u64,
    /// Bytes loaded.
    pub bytes_read: u64,
    /// Bytes stored.
    pub bytes_written: u64,
    /// PKRU register writes (`wrpkru`).
    pub wrpkru: u64,
    /// Page key re-assignments (`pkey_mprotect`).
    pub retags: u64,
    /// Pages reclaimed through the charged [`Machine::reclaim_page`]
    /// primitive (quarantine teardown; loader-side `unmap_page` is free
    /// and uncounted).
    pub unmaps: u64,
    /// Protection faults raised (all kinds).
    pub faults: u64,
    /// Software-TLB hits (host-side; no simulated-cycle effect).
    pub tlb_hits: u64,
    /// Software-TLB misses, i.e. full page-table walks (host-side).
    pub tlb_misses: u64,
}

/// Per-core event counters (host-side observability; no simulated-cycle
/// effect). The machine keeps one of these per simulated core so that
/// multi-core runs can attribute TLB behaviour, PKRU churn and cross-call
/// pressure to the core that caused it. On a single-core machine the core-0
/// counters mirror the corresponding [`MachineStats`] fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Software-TLB hits on this core.
    pub tlb_hits: u64,
    /// Software-TLB misses (full walks) on this core.
    pub tlb_misses: u64,
    /// Cross-cubicle calls dispatched while this core was current
    /// (reported by the kernel via [`Machine::note_cross_call`]).
    pub cross_calls: u64,
    /// PKRU writes executed on this core.
    pub wrpkru: u64,
}

/// The architectural state of one simulated core while it is *parked*
/// (not the current core): its private PKRU register, cycle counter,
/// software TLB, cycle alarm and per-core counters. The current core's
/// state lives directly in the [`Machine`] fields — the hot paths never
/// indirect through this struct — and is swapped in and out by
/// [`Machine::switch_to_core`].
#[derive(Debug)]
struct CoreState {
    pkru: Pkru,
    cycles: u64,
    tlb: Box<[TlbEntry]>,
    tlb_gen: u64,
    alarm: Option<u64>,
    stats: CoreStats,
}

/// Pages per chunk of the flat page table (power of two). 512 pages cover
/// a 2 MiB span — large enough that a whole component region usually sits
/// in one or two chunks, small enough that sparse mappings stay cheap.
const CHUNK_PAGES: u64 = 512;

/// Bytes of backing store per chunk.
const CHUNK_BYTES: usize = CHUNK_PAGES as usize * PAGE_SIZE;

/// Entries in the direct-mapped software TLB (power of two). 256 entries
/// index by the low page-number bits, so any run of up to 256 consecutive
/// pages (1 MiB) is conflict-free.
const TLB_ENTRIES: usize = 256;

/// Upper bound on parked chunk slabs kept for reuse; beyond this they are
/// simply dropped.
const SPARE_SLABS: usize = 8;

/// A 512-page span of the address space. `base` is the first page number
/// (a multiple of [`CHUNK_PAGES`]); `entries[i]` describes page
/// `base + i`, whose frame is `frames[i * PAGE_SIZE ..][.. PAGE_SIZE]`.
#[derive(Debug)]
struct Chunk {
    base: u64,
    /// Number of `Some` entries; lets full-table scans skip nothing and
    /// drives chunk recycling when the last page unmaps.
    mapped: usize,
    entries: Vec<Option<PageEntry>>,
    /// One contiguous slab backing all 512 frames. Regions are zeroed on
    /// `map_page`, so recycled slabs never leak stale bytes.
    frames: Box<[u8]>,
}

/// A parked chunk's allocations (entry vector + frame slab), kept for
/// reuse once its last page unmaps.
type SpareSlab = (Vec<Option<PageEntry>>, Box<[u8]>);

/// The flat page table: chunks sorted by base page number.
///
/// A chunk whose last page unmaps is removed and its slab parked on a
/// small free list for the next insertion — the kernel above allocates
/// page numbers monotonically, so without recycling the table would grow
/// with the *lifetime* address space instead of the *live* one. Removal
/// (like insertion) shifts chunk indices, which the machine answers with
/// a TLB flush.
#[derive(Debug, Default)]
struct PageTable {
    chunks: Vec<Chunk>,
    /// Drained chunk slabs (entries all `None`), reused to avoid fresh
    /// 2 MiB allocations on every chunk creation.
    spare: Vec<SpareSlab>,
}

impl PageTable {
    /// Locates a mapped page as `(chunk index, slot index)`.
    #[inline]
    fn locate(&self, page: PageNum) -> Option<(usize, usize)> {
        let base = page.0 & !(CHUNK_PAGES - 1);
        let ci = self.chunks.binary_search_by_key(&base, |c| c.base).ok()?;
        let si = (page.0 & (CHUNK_PAGES - 1)) as usize;
        self.chunks[ci].entries[si].map(|_| (ci, si))
    }

    #[inline]
    fn entry(&self, page: PageNum) -> Option<PageEntry> {
        let (ci, si) = self.locate(page)?;
        self.chunks[ci].entries[si]
    }

    fn entry_mut(&mut self, page: PageNum) -> Option<&mut PageEntry> {
        let (ci, si) = self.locate(page)?;
        self.chunks[ci].entries[si].as_mut()
    }

    /// Inserts an entry for `page`, creating its chunk if needed and
    /// zeroing the page's frame region. Returns `false` if the page was
    /// already mapped (the old entry is replaced).
    fn insert(&mut self, page: PageNum, entry: PageEntry) -> bool {
        let base = page.0 & !(CHUNK_PAGES - 1);
        let ci = match self.chunks.binary_search_by_key(&base, |c| c.base) {
            Ok(i) => i,
            Err(i) => {
                let (entries, frames) = self.spare.pop().unwrap_or_else(|| {
                    (
                        vec![None; CHUNK_PAGES as usize],
                        vec![0u8; CHUNK_BYTES].into_boxed_slice(),
                    )
                });
                self.chunks.insert(
                    i,
                    Chunk {
                        base,
                        mapped: 0,
                        entries,
                        frames,
                    },
                );
                i
            }
        };
        let si = (page.0 & (CHUNK_PAGES - 1)) as usize;
        let chunk = &mut self.chunks[ci];
        let fresh = chunk.entries[si].is_none();
        if fresh {
            chunk.mapped += 1;
        }
        chunk.entries[si] = Some(entry);
        chunk.frames[si * PAGE_SIZE..(si + 1) * PAGE_SIZE].fill(0);
        fresh
    }

    /// Clears the entry for `page`; a drained chunk is removed and its
    /// slab parked for reuse. Returns `(page was mapped, chunk indices
    /// shifted)` — the latter tells the caller to flush its TLB.
    fn remove(&mut self, page: PageNum) -> (bool, bool) {
        match self.locate(page) {
            Some((ci, si)) => {
                self.chunks[ci].entries[si] = None;
                self.chunks[ci].mapped -= 1;
                if self.chunks[ci].mapped == 0 {
                    let chunk = self.chunks.remove(ci);
                    if self.spare.len() < SPARE_SLABS {
                        self.spare.push((chunk.entries, chunk.frames));
                    }
                    (true, true)
                } else {
                    (true, false)
                }
            }
            None => (false, false),
        }
    }
}

/// One direct-mapped TLB entry: a page's table location plus its key and
/// permission flags. Rights are *not* resolved here — they are evaluated
/// against the live PKRU on every hit, so PKRU writes need no
/// invalidation. Valid iff `gen` equals the machine's current TLB
/// generation (0 never matches, as the generation starts at 1).
#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: u64,
    gen: u64,
    chunk: u32,
    slot: u32,
    key: ProtKey,
    flags: PageFlags,
}

impl TlbEntry {
    const INVALID: TlbEntry = TlbEntry {
        page: 0,
        gen: 0,
        chunk: 0,
        slot: 0,
        key: ProtKey::MONITOR,
        flags: PageFlags::r(),
    };
}

/// The simulated MPK machine.
///
/// Owns the page table, page frames, the current thread's PKRU register and
/// the cycle counter. See the crate-level documentation for an example.
///
/// The machine enforces *mechanism* only: every access is checked against
/// the page flags and the PKRU value, and violations surface as [`Fault`]s.
/// It has no notion of cubicles or windows — that policy lives in
/// `cubicle-core`, which reacts to faults by consulting its window ACLs and
/// retagging pages ([`Machine::set_page_key`]).
#[derive(Debug)]
pub struct Machine {
    table: PageTable,
    pkru: Pkru,
    cycles: u64,
    cost: CostModel,
    stats: MachineStats,
    /// Models the paper's proposed hardware modification (§5.5): "whenever
    /// read and write access is disabled \[for a key\], execution is too".
    /// Enabled by default, as CubicleOS assumes it for CFI.
    exec_obeys_pkru: bool,
    /// Bounded event ring, `None` when recording is off (the default).
    /// Recording never charges simulated cycles.
    events: Option<EventRing>,
    /// Direct-mapped software TLB (host-side acceleration only).
    tlb: Box<[TlbEntry]>,
    /// Current TLB generation; bumping it invalidates every entry at once.
    tlb_gen: u64,
    tlb_enabled: bool,
    /// Reusable per-page location buffer for multi-page pre-scans, so bulk
    /// accesses allocate nothing in steady state.
    scan_scratch: Vec<(u32, u32)>,
    /// Cycle alarm: the kernel's watchdog arms this with the earliest
    /// in-flight call deadline and polls [`Machine::cycle_alarm_expired`]
    /// on its entry paths. Pure bookkeeping — never charges cycles.
    alarm: Option<u64>,
    /// Parked per-core state under multi-core simulation. Empty on a
    /// single-core machine (the default), in which case every loop over
    /// it degenerates to nothing and behaviour is bit-identical to the
    /// pre-multi-core machine. When non-empty, `cores.len()` is the core
    /// count and the slot at `cur` holds a stale placeholder (its live
    /// state is in the `Machine` fields).
    cores: Vec<CoreState>,
    /// Index of the current core (0 on a single-core machine).
    cur: usize,
    /// Per-core counters of the *current* core; swapped with the parked
    /// state on [`Machine::switch_to_core`].
    cur_stats: CoreStats,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

#[derive(Debug)]
struct EventRing {
    buf: VecDeque<MachineEvent>,
    capacity: usize,
    dropped: u64,
}

impl Machine {
    /// Creates a machine with the calibrated [`CostModel::paper`] costs.
    pub fn new() -> Machine {
        Machine::with_cost_model(CostModel::paper())
    }

    /// Creates a machine with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> Machine {
        Machine {
            table: PageTable::default(),
            pkru: Pkru::deny_all(),
            cycles: 0,
            cost,
            stats: MachineStats::default(),
            exec_obeys_pkru: true,
            events: None,
            tlb: vec![TlbEntry::INVALID; TLB_ENTRIES].into_boxed_slice(),
            tlb_gen: 1,
            tlb_enabled: true,
            scan_scratch: Vec::new(),
            alarm: None,
            cores: Vec::new(),
            cur: 0,
            cur_stats: CoreStats::default(),
        }
    }

    // ---------------------------------------------------------------------
    // Cores
    // ---------------------------------------------------------------------

    /// Number of simulated cores (1 unless [`Machine::set_num_cores`]
    /// grew the machine).
    pub fn num_cores(&self) -> usize {
        self.cores.len().max(1)
    }

    /// Index of the core currently executing.
    pub fn current_core(&self) -> usize {
        self.cur
    }

    /// Grows the machine to `n` cores (grow-only; shrinking a machine
    /// with live per-core state would discard clocks and is a harness
    /// bug). Every new core starts at the *current* core's cycle count
    /// with the current PKRU, a cold TLB and zeroed counters — as if it
    /// had just been released from a spin-at-boot barrier.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or smaller than the current core count.
    pub fn set_num_cores(&mut self, n: usize) {
        assert!(n >= 1, "a machine has at least one core");
        assert!(
            n >= self.num_cores(),
            "core count is grow-only ({} -> {n})",
            self.num_cores()
        );
        if n == 1 {
            return;
        }
        if self.cores.is_empty() {
            // Placeholder for the current core; its live state stays in
            // the Machine fields. The empty TLB box allocates nothing.
            self.cores.push(CoreState {
                pkru: self.pkru,
                cycles: self.cycles,
                tlb: Box::default(),
                tlb_gen: self.tlb_gen,
                alarm: self.alarm,
                stats: self.cur_stats,
            });
        }
        while self.cores.len() < n {
            self.cores.push(CoreState {
                pkru: self.pkru,
                cycles: self.cycles,
                tlb: vec![TlbEntry::INVALID; TLB_ENTRIES].into_boxed_slice(),
                tlb_gen: 1,
                alarm: None,
                stats: CoreStats::default(),
            });
        }
    }

    /// Switches execution to core `i`: parks the current core's PKRU,
    /// cycle counter, TLB, alarm and counters, and restores core `i`'s.
    /// Host-side bookkeeping only — switching charges no simulated
    /// cycles (the simulated cores run concurrently; the simulator just
    /// serialises them).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn switch_to_core(&mut self, i: usize) {
        assert!(i < self.num_cores(), "core {i} out of range");
        if i == self.cur {
            return;
        }
        let parked = &mut self.cores[self.cur];
        parked.pkru = self.pkru;
        parked.cycles = self.cycles;
        parked.tlb_gen = self.tlb_gen;
        parked.alarm = self.alarm;
        parked.stats = self.cur_stats;
        parked.tlb = std::mem::take(&mut self.tlb);
        let next = &mut self.cores[i];
        self.pkru = next.pkru;
        self.cycles = next.cycles;
        self.tlb_gen = next.tlb_gen;
        self.alarm = next.alarm;
        self.cur_stats = next.stats;
        self.tlb = std::mem::take(&mut next.tlb);
        self.cur = i;
    }

    /// Cycle counter of core `i` (the current core reads its live value).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core_cycles(&self, i: usize) -> u64 {
        assert!(i < self.num_cores(), "core {i} out of range");
        if i == self.cur {
            self.cycles
        } else {
            self.cores[i].cycles
        }
    }

    /// The maximum cycle counter over all cores — the *makespan* of a
    /// multi-core run, used as the denominator of aggregate throughput.
    pub fn max_core_cycles(&self) -> u64 {
        let mut max = self.cycles;
        for (i, core) in self.cores.iter().enumerate() {
            if i != self.cur {
                max = max.max(core.cycles);
            }
        }
        max
    }

    /// Per-core counters for core `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn core_stats(&self, i: usize) -> CoreStats {
        assert!(i < self.num_cores(), "core {i} out of range");
        if i == self.cur {
            self.cur_stats
        } else {
            self.cores[i].stats
        }
    }

    /// Tells the machine a cross-cubicle call was dispatched on the
    /// current core (kernel-side observability; free of cycles).
    pub fn note_cross_call(&mut self) {
        self.cur_stats.cross_calls += 1;
    }

    /// Arms (or with `None` disarms) the cycle alarm at an absolute
    /// cycle count. Costs nothing in simulated cycles.
    pub fn set_cycle_alarm(&mut self, at: Option<u64>) {
        self.alarm = at;
    }

    /// The armed cycle alarm, if any.
    pub fn cycle_alarm(&self) -> Option<u64> {
        self.alarm
    }

    /// Has the cycle counter reached the armed alarm? Always `false`
    /// while disarmed — a single branch on the fast path.
    #[inline]
    pub fn cycle_alarm_expired(&self) -> bool {
        self.alarm.is_some_and(|at| self.cycles >= at)
    }

    /// Enables (`Some(capacity)`) or disables (`None`) the machine event
    /// ring. When the ring is full the oldest event is overwritten and
    /// [`Machine::events_dropped`] grows. Recording is free of simulated
    /// cycles either way.
    pub fn set_event_recording(&mut self, capacity: Option<usize>) {
        self.events = capacity.map(|capacity| EventRing {
            buf: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        });
    }

    /// Removes and returns all recorded events, oldest first. Empty when
    /// recording is off.
    pub fn drain_events(&mut self) -> Vec<MachineEvent> {
        match &mut self.events {
            Some(ring) => ring.buf.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Events overwritten because the ring was full (since recording was
    /// last enabled).
    pub fn events_dropped(&self) -> u64 {
        self.events.as_ref().map_or(0, |r| r.dropped)
    }

    fn record_event(&mut self, event: MachineEvent) {
        if let Some(ring) = &mut self.events {
            if ring.buf.len() >= ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(event);
        }
    }

    /// Returns the active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Enables or disables the paper's MPK hardware modification that makes
    /// execution rights follow the PKRU access-disable bit (§5.5).
    /// (No TLB impact: exec rights are evaluated live on every hit.)
    pub fn set_exec_obeys_pkru(&mut self, enabled: bool) {
        self.exec_obeys_pkru = enabled;
    }

    /// Enables or disables the simulator's software TLB.
    ///
    /// This is a *host-side* knob: simulated behaviour — charged cycles,
    /// counters, faults — is identical either way (a property test holds
    /// the two modes against each other). Disabling it only slows the
    /// simulator down; with the TLB off, neither TLB counter moves.
    pub fn set_tlb_enabled(&mut self, enabled: bool) {
        self.tlb_enabled = enabled;
        self.tlb_flush();
    }

    /// Returns whether the software TLB is enabled.
    pub fn tlb_enabled(&self) -> bool {
        self.tlb_enabled
    }

    // ---------------------------------------------------------------------
    // Cycle accounting
    // ---------------------------------------------------------------------

    /// Current simulated cycle count.
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Charges `cycles` of simulated work (used by components to model
    /// compute that does not touch simulated memory).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Event counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    // ---------------------------------------------------------------------
    // Translation (host fast path)
    // ---------------------------------------------------------------------

    /// Invalidates every TLB entry — on *every* core. A mapping change is
    /// a global TLB shootdown: parked cores' generations are bumped too,
    /// so a stale translation can never survive a core switch.
    #[inline]
    fn tlb_flush(&mut self) {
        self.tlb_gen += 1;
        for (i, core) in self.cores.iter_mut().enumerate() {
            if i != self.cur {
                core.tlb_gen += 1;
            }
        }
    }

    /// Invalidates the TLB entry for one page, if cached — on every core
    /// (the per-page analogue of the shootdown in [`Self::tlb_flush`]).
    #[inline]
    fn tlb_evict(&mut self, page: PageNum) {
        let idx = (page.0 as usize) & (TLB_ENTRIES - 1);
        let e = &mut self.tlb[idx];
        if e.page == page.0 {
            e.gen = 0;
        }
        for (i, core) in self.cores.iter_mut().enumerate() {
            if i != self.cur {
                let e = &mut core.tlb[idx];
                if e.page == page.0 {
                    e.gen = 0;
                }
            }
        }
    }

    /// Translates `page` for `access`, returning its table location.
    ///
    /// This is the host fast path behind every checked access: a TLB hit
    /// grants in a few loads plus a PKRU bit test; a miss takes the full
    /// walk ([`Self::walk`]) which performs exactly the checks
    /// [`Machine::check_access`] would, producing byte-identical faults.
    /// `fault_addr` is the address any fault is reported at (the
    /// reference walk's `page.base().max(addr)`).
    #[inline]
    fn translate(
        &mut self,
        page: PageNum,
        access: AccessKind,
        fault_addr: VAddr,
    ) -> Result<(usize, usize), Fault> {
        if self.tlb_enabled {
            let e = self.tlb[(page.0 as usize) & (TLB_ENTRIES - 1)];
            if e.gen == self.tlb_gen && e.page == page.0 {
                // Rights are evaluated against the *current* PKRU, so a
                // stale-rights hazard cannot exist by construction.
                let rights = self.pkru.rights(e.key);
                let granted = match access {
                    AccessKind::Read => e.flags.can_read() && rights.can_read(),
                    AccessKind::Write => e.flags.can_write() && rights.can_write(),
                    AccessKind::Execute => {
                        e.flags.can_execute() && (!self.exec_obeys_pkru || rights.can_read())
                    }
                };
                if granted {
                    self.stats.tlb_hits += 1;
                    self.cur_stats.tlb_hits += 1;
                    return Ok((e.chunk as usize, e.slot as usize));
                }
                // Cached but denied: fall through to the walk so the
                // fault carries the precise kind (Permission vs key).
            }
            self.stats.tlb_misses += 1;
            self.cur_stats.tlb_misses += 1;
        }
        self.walk(page, access, fault_addr)
    }

    /// Full page-table walk with permission checks; fills the TLB on a
    /// grant. The check order (present, then flags, then PKRU) and the
    /// fault contents mirror [`Machine::check_access`] exactly.
    fn walk(
        &mut self,
        page: PageNum,
        access: AccessKind,
        fault_addr: VAddr,
    ) -> Result<(usize, usize), Fault> {
        let Some((ci, si)) = self.table.locate(page) else {
            return Err(Fault {
                addr: fault_addr,
                access,
                kind: FaultKind::NotPresent,
            });
        };
        let entry = self.table.chunks[ci].entries[si].expect("located slot is mapped");
        let flags_ok = match access {
            AccessKind::Read => entry.flags.can_read(),
            AccessKind::Write => entry.flags.can_write(),
            AccessKind::Execute => entry.flags.can_execute(),
        };
        if !flags_ok {
            return Err(Fault {
                addr: fault_addr,
                access,
                kind: FaultKind::Permission,
            });
        }
        let rights = self.pkru.rights(entry.key);
        let key_ok = match access {
            AccessKind::Read => rights.can_read(),
            AccessKind::Write => rights.can_write(),
            // The paper's proposed hardware change: AD=1 also disables
            // execution. Without the change, MPK never blocks fetches.
            AccessKind::Execute => !self.exec_obeys_pkru || rights.can_read(),
        };
        if !key_ok {
            return Err(Fault {
                addr: fault_addr,
                access,
                kind: FaultKind::ProtectionKey(entry.key),
            });
        }
        if self.tlb_enabled {
            self.tlb[(page.0 as usize) & (TLB_ENTRIES - 1)] = TlbEntry {
                page: page.0,
                gen: self.tlb_gen,
                chunk: ci as u32,
                slot: si as u32,
                key: entry.key,
                flags: entry.flags,
            };
        }
        Ok((ci, si))
    }

    /// Pre-scans every page covered by `[addr, addr + len)` for `access`,
    /// collecting table locations into `locs`. Nothing is copied, so a
    /// fault part-way leaves memory untouched (all-or-nothing atomicity).
    fn prescan(
        &mut self,
        addr: VAddr,
        len: usize,
        access: AccessKind,
        locs: &mut Vec<(u32, u32)>,
    ) -> Result<(), Fault> {
        for page in pages_covering(addr, len) {
            let (ci, si) = self.translate(page, access, page.base().max(addr))?;
            locs.push((ci as u32, si as u32));
        }
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Page table management
    // ---------------------------------------------------------------------

    /// Maps the page containing `addr` with the given key and flags,
    /// backed by a zeroed frame.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped — the caller (the CubicleOS
    /// monitor) owns the address-space layout, so a double map is a kernel
    /// bug, not a recoverable condition.
    pub fn map_page(&mut self, addr: VAddr, key: ProtKey, flags: PageFlags) {
        let page = addr.page();
        let fresh = self.table.insert(page, PageEntry::new(key, flags));
        assert!(fresh, "page {page:?} double-mapped");
        // Inserting may have created a chunk and shifted the indices
        // cached in TLB entries; mapping is rare, so flush wholesale.
        self.tlb_flush();
    }

    /// Unmaps the page containing `addr`, discarding its contents.
    ///
    /// Returns `true` if a page was actually unmapped.
    pub fn unmap_page(&mut self, addr: VAddr) -> bool {
        let page = addr.page();
        self.tlb_evict(page);
        let (unmapped, indices_shifted) = self.table.remove(page);
        if indices_shifted {
            self.tlb_flush();
        }
        unmapped
    }

    /// Reclaims (unmaps) a mapped page at full `pkey_mprotect` cost,
    /// counting it in [`MachineStats::unmaps`] and recording a
    /// [`MachineEvent::Unmap`]. The monitor's quarantine path uses this
    /// to tear down a faulting cubicle's address space; unlike the free
    /// loader-side [`Machine::unmap_page`], reclamation is part of the
    /// simulated machine's observable behaviour.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] with [`FaultKind::NotPresent`] if the page is
    /// not mapped.
    pub fn reclaim_page(&mut self, addr: VAddr) -> Result<ProtKey, Fault> {
        let page = addr.page();
        let Some(entry) = self.table.entry(page) else {
            return Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            });
        };
        let key = entry.key;
        self.tlb_evict(page);
        let (_, indices_shifted) = self.table.remove(page);
        if indices_shifted {
            self.tlb_flush();
        }
        self.cycles += self.cost.pkey_mprotect;
        self.stats.unmaps += 1;
        if self.events.is_some() {
            self.record_event(MachineEvent::Unmap {
                at: self.cycles,
                addr: page.base(),
                key,
            });
        }
        Ok(key)
    }

    /// Returns the page-table entry for the page containing `addr`.
    pub fn page_entry(&self, addr: VAddr) -> Option<PageEntry> {
        self.table.entry(addr.page())
    }

    /// All pages currently tagged with `key` (used by tag-virtualisation
    /// layers that must park an evicted key's pages). Ascending order —
    /// chunks are sorted by base and slots are scanned in index order.
    pub fn pages_with_key(&self, key: ProtKey) -> Vec<PageNum> {
        let mut pages = Vec::new();
        for chunk in &self.table.chunks {
            for (si, entry) in chunk.entries.iter().enumerate() {
                if entry.is_some_and(|e| e.key == key) {
                    pages.push(PageNum(chunk.base + si as u64));
                }
            }
        }
        pages
    }

    /// Every mapped page with its page-table entry, in ascending page
    /// order. State exposure for verification layers (the kernel
    /// invariant auditor walks this to check W^X and tag consistency);
    /// host-side only, charges no simulated cycles.
    pub fn mapped_pages(&self) -> Vec<(PageNum, PageEntry)> {
        let mut pages = Vec::new();
        for chunk in &self.table.chunks {
            for (si, entry) in chunk.entries.iter().enumerate() {
                if let Some(e) = entry {
                    pages.push((PageNum(chunk.base + si as u64), *e));
                }
            }
        }
        pages
    }

    /// Re-assigns the protection key of a mapped page, charging the
    /// `pkey_mprotect` cost. This is the retag operation at the heart of
    /// trap-and-map: the frame contents are untouched (zero-copy).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] with [`FaultKind::NotPresent`] if the page is
    /// not mapped.
    pub fn set_page_key(&mut self, addr: VAddr, key: ProtKey) -> Result<(), Fault> {
        let page = addr.page();
        match self.table.entry_mut(page) {
            Some(entry) => {
                let from = entry.key;
                entry.key = key;
                self.tlb_evict(page);
                self.cycles += self.cost.pkey_mprotect;
                self.stats.retags += 1;
                if self.events.is_some() {
                    self.record_event(MachineEvent::Retag {
                        at: self.cycles,
                        addr: page.base(),
                        from,
                        to: key,
                    });
                }
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    /// Re-assigns the protection key of a mapped page *without* charging
    /// the `pkey_mprotect` kernel round trip. This is the grant-cache hit
    /// path of trap-and-map: the monitor has already validated this
    /// (accessor, page) pair, so the retag goes through a pre-armed
    /// kernel descriptor whose permission walk is skipped — only the
    /// trap and the metadata lookup (charged by the caller) remain. The
    /// retag is still architecturally real: it counts in
    /// [`MachineStats::retags`], records a [`MachineEvent::Retag`] and
    /// shoots down the page's TLB entries on every core.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] with [`FaultKind::NotPresent`] if the page is
    /// not mapped.
    pub fn set_page_key_cached(&mut self, addr: VAddr, key: ProtKey) -> Result<(), Fault> {
        let page = addr.page();
        match self.table.entry_mut(page) {
            Some(entry) => {
                let from = entry.key;
                entry.key = key;
                self.tlb_evict(page);
                self.stats.retags += 1;
                if self.events.is_some() {
                    self.record_event(MachineEvent::Retag {
                        at: self.cycles,
                        addr: page.base(),
                        from,
                        to: key,
                    });
                }
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    /// Like [`Machine::set_page_key`] but free of charge: used at load /
    /// deployment time, which the paper's measurements exclude.
    pub fn set_page_key_at_load(&mut self, addr: VAddr, key: ProtKey) -> Result<(), Fault> {
        let page = addr.page();
        match self.table.entry_mut(page) {
            Some(entry) => {
                entry.key = key;
                self.tlb_evict(page);
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Write,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    /// Changes the R/W/X flags of a mapped page (loader only; free).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the page is not mapped.
    pub fn set_page_flags(&mut self, addr: VAddr, flags: PageFlags) -> Result<(), Fault> {
        let page = addr.page();
        match self.table.entry_mut(page) {
            Some(entry) => {
                entry.flags = flags;
                self.tlb_evict(page);
                Ok(())
            }
            None => Err(Fault {
                addr,
                access: AccessKind::Read,
                kind: FaultKind::NotPresent,
            }),
        }
    }

    // ---------------------------------------------------------------------
    // PKRU
    // ---------------------------------------------------------------------

    /// Current PKRU value of the (single) hardware thread.
    pub fn pkru(&self) -> Pkru {
        self.pkru
    }

    /// Writes the PKRU register (`wrpkru`), charging ~20 cycles.
    ///
    /// No TLB traffic: cached translations carry the page *key*, and
    /// rights are re-derived from the live PKRU on every hit.
    pub fn set_pkru(&mut self, pkru: Pkru) {
        self.pkru = pkru;
        self.cycles += self.cost.wrpkru;
        self.stats.wrpkru += 1;
        self.cur_stats.wrpkru += 1;
        if self.events.is_some() {
            self.record_event(MachineEvent::WrPkru {
                at: self.cycles,
                pkru,
            });
        }
    }

    /// Writes the PKRU register without charging cycles (boot-time setup).
    pub fn set_pkru_at_load(&mut self, pkru: Pkru) {
        self.pkru = pkru;
    }

    // ---------------------------------------------------------------------
    // Checked access
    // ---------------------------------------------------------------------

    /// Checks whether an access of `len` bytes at `addr` would be allowed
    /// under the current PKRU, without performing it or charging cycles.
    ///
    /// This is the reference walk: side-effect free (`&self`, no TLB, no
    /// counters), used by diagnostic probes. The hot paths go through the
    /// TLB but must agree with it bit for bit.
    ///
    /// # Errors
    ///
    /// Returns the first [`Fault`] the access would raise.
    pub fn check_access(&self, addr: VAddr, len: usize, access: AccessKind) -> Result<(), Fault> {
        for page in pages_covering(addr, len) {
            let entry = match self.table.entry(page) {
                Some(entry) => entry,
                None => {
                    return Err(Fault {
                        addr: page.base().max(addr),
                        access,
                        kind: FaultKind::NotPresent,
                    })
                }
            };
            let flags_ok = match access {
                AccessKind::Read => entry.flags.can_read(),
                AccessKind::Write => entry.flags.can_write(),
                AccessKind::Execute => entry.flags.can_execute(),
            };
            if !flags_ok {
                return Err(Fault {
                    addr: page.base().max(addr),
                    access,
                    kind: FaultKind::Permission,
                });
            }
            let rights = self.pkru.rights(entry.key);
            let key_ok = match access {
                AccessKind::Read => rights.can_read(),
                AccessKind::Write => rights.can_write(),
                // The paper's proposed hardware change: AD=1 also disables
                // execution. Without the change, MPK never blocks fetches.
                AccessKind::Execute => !self.exec_obeys_pkru || rights.can_read(),
            };
            if !key_ok {
                return Err(Fault {
                    addr: page.base().max(addr),
                    access,
                    kind: FaultKind::ProtectionKey(entry.key),
                });
            }
        }
        Ok(())
    }

    /// Loads `buf.len()` bytes starting at `addr`.
    ///
    /// The access is atomic: either every covered page passes the
    /// protection checks and the full range is copied, or nothing is.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] and counts it in [`MachineStats::faults`] when
    /// any covered page refuses the access.
    pub fn read(&mut self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        let len = buf.len();
        let off = addr.page_offset();
        if len > 0 && len <= PAGE_SIZE - off {
            // Single page: translate, check, charge and copy in one pass.
            let (ci, si) = match self.translate(addr.page(), AccessKind::Read, addr) {
                Ok(loc) => loc,
                Err(fault) => {
                    self.stats.faults += 1;
                    return Err(fault);
                }
            };
            self.cycles += self.cost.mem_access(len);
            self.stats.reads += 1;
            self.stats.bytes_read += len as u64;
            let base = si * PAGE_SIZE + off;
            buf.copy_from_slice(&self.table.chunks[ci].frames[base..base + len]);
            return Ok(());
        }
        self.read_slow(addr, buf)
    }

    /// Multi-page (or empty) read: pre-scan for atomicity, then copy
    /// chunk-contiguous runs of pages with single `memcpy`s.
    fn read_slow(&mut self, addr: VAddr, buf: &mut [u8]) -> Result<(), Fault> {
        let len = buf.len();
        let mut locs = std::mem::take(&mut self.scan_scratch);
        locs.clear();
        let scan = self.prescan(addr, len, AccessKind::Read, &mut locs);
        if let Err(fault) = scan {
            self.scan_scratch = locs;
            self.stats.faults += 1;
            return Err(fault);
        }
        self.cycles += self.cost.mem_access(len);
        self.stats.reads += 1;
        self.stats.bytes_read += len as u64;
        let mut done = 0;
        let mut i = 0;
        while done < len {
            let off = (addr + done).page_offset();
            let (ci, si) = locs[i];
            let mut run = 1;
            while i + run < locs.len()
                && locs[i + run].0 == ci
                && locs[i + run].1 == si + run as u32
            {
                run += 1;
            }
            let bytes = (run * PAGE_SIZE - off).min(len - done);
            let base = si as usize * PAGE_SIZE + off;
            buf[done..done + bytes]
                .copy_from_slice(&self.table.chunks[ci as usize].frames[base..base + bytes]);
            done += bytes;
            i += run;
        }
        self.scan_scratch = locs;
        Ok(())
    }

    /// Stores `data` starting at `addr`. Atomic like [`Machine::read`].
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] when any covered page refuses the access.
    pub fn write(&mut self, addr: VAddr, data: &[u8]) -> Result<(), Fault> {
        let len = data.len();
        let off = addr.page_offset();
        if len > 0 && len <= PAGE_SIZE - off {
            let (ci, si) = match self.translate(addr.page(), AccessKind::Write, addr) {
                Ok(loc) => loc,
                Err(fault) => {
                    self.stats.faults += 1;
                    return Err(fault);
                }
            };
            self.cycles += self.cost.mem_access(len);
            self.stats.writes += 1;
            self.stats.bytes_written += len as u64;
            let base = si * PAGE_SIZE + off;
            self.table.chunks[ci].frames[base..base + len].copy_from_slice(data);
            return Ok(());
        }
        self.write_slow(addr, data)
    }

    /// Multi-page (or empty) write; see [`Machine::read_slow`].
    fn write_slow(&mut self, addr: VAddr, data: &[u8]) -> Result<(), Fault> {
        let len = data.len();
        let mut locs = std::mem::take(&mut self.scan_scratch);
        locs.clear();
        let scan = self.prescan(addr, len, AccessKind::Write, &mut locs);
        if let Err(fault) = scan {
            self.scan_scratch = locs;
            self.stats.faults += 1;
            return Err(fault);
        }
        self.cycles += self.cost.mem_access(len);
        self.stats.writes += 1;
        self.stats.bytes_written += len as u64;
        let mut done = 0;
        let mut i = 0;
        while done < len {
            let off = (addr + done).page_offset();
            let (ci, si) = locs[i];
            let mut run = 1;
            while i + run < locs.len()
                && locs[i + run].0 == ci
                && locs[i + run].1 == si + run as u32
            {
                run += 1;
            }
            let bytes = (run * PAGE_SIZE - off).min(len - done);
            let base = si as usize * PAGE_SIZE + off;
            self.table.chunks[ci as usize].frames[base..base + bytes]
                .copy_from_slice(&data[done..done + bytes]);
            done += bytes;
            i += run;
        }
        self.scan_scratch = locs;
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`, appending them to `out`.
    ///
    /// Charge- and fault-identical to a [`Machine::read`] of `len` bytes,
    /// but writes straight from the frames into the vector's spare
    /// capacity — the zero-initialisation pass a `vec![0; len]` +
    /// `read` sequence would pay is skipped entirely. On a fault, `out`
    /// is left exactly as passed in.
    ///
    /// # Errors
    ///
    /// As [`Machine::read`].
    pub fn read_append(&mut self, addr: VAddr, len: usize, out: &mut Vec<u8>) -> Result<(), Fault> {
        let off = addr.page_offset();
        if len > 0 && len <= PAGE_SIZE - off {
            let (ci, si) = match self.translate(addr.page(), AccessKind::Read, addr) {
                Ok(loc) => loc,
                Err(fault) => {
                    self.stats.faults += 1;
                    return Err(fault);
                }
            };
            self.cycles += self.cost.mem_access(len);
            self.stats.reads += 1;
            self.stats.bytes_read += len as u64;
            let base = si * PAGE_SIZE + off;
            out.extend_from_slice(&self.table.chunks[ci].frames[base..base + len]);
            return Ok(());
        }
        let mut locs = std::mem::take(&mut self.scan_scratch);
        locs.clear();
        let scan = self.prescan(addr, len, AccessKind::Read, &mut locs);
        if let Err(fault) = scan {
            self.scan_scratch = locs;
            self.stats.faults += 1;
            return Err(fault);
        }
        self.cycles += self.cost.mem_access(len);
        self.stats.reads += 1;
        self.stats.bytes_read += len as u64;
        out.reserve(len);
        let mut done = 0;
        let mut i = 0;
        while done < len {
            let off = (addr + done).page_offset();
            let (ci, si) = locs[i];
            let mut run = 1;
            while i + run < locs.len()
                && locs[i + run].0 == ci
                && locs[i + run].1 == si + run as u32
            {
                run += 1;
            }
            let bytes = (run * PAGE_SIZE - off).min(len - done);
            let base = si as usize * PAGE_SIZE + off;
            out.extend_from_slice(&self.table.chunks[ci as usize].frames[base..base + bytes]);
            done += bytes;
            i += run;
        }
        self.scan_scratch = locs;
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`. Unaligned and page-straddling
    /// addresses are fine; the cost is that of an 8-byte read either way.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::read`].
    pub fn read_u64(&mut self, addr: VAddr) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::write`].
    pub fn write_u64(&mut self, addr: VAddr, value: u64) -> Result<(), Fault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr` (cost of a 4-byte read).
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::read`].
    pub fn read_u32(&mut self, addr: VAddr) -> Result<u32, Fault> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates faults from [`Machine::write`].
    pub fn write_u32(&mut self, addr: VAddr, value: u32) -> Result<(), Fault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Checks an instruction fetch at `addr` (one simulated instruction).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] when the page is unmapped, not executable, or —
    /// with the paper's hardware modification — its key is
    /// access-disabled in the current PKRU.
    pub fn fetch_check(&mut self, addr: VAddr) -> Result<(), Fault> {
        match self.translate(addr.page(), AccessKind::Execute, addr) {
            Ok(_) => Ok(()),
            Err(fault) => {
                self.stats.faults += 1;
                Err(fault)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw_page(m: &mut Machine, raw: u64, key: u8) -> VAddr {
        let addr = VAddr::new(raw);
        m.map_page(addr, ProtKey::new(key).unwrap(), PageFlags::rw());
        addr
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a + 100, b"cubicle").unwrap();
        let mut buf = [0u8; 7];
        m.read(a + 100, &mut buf).unwrap();
        assert_eq!(&buf, b"cubicle");
    }

    #[test]
    fn cross_page_access() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x2000, 1);
        m.set_pkru(Pkru::allow_all());
        let data: Vec<u8> = (0..=255).collect();
        m.write(a + (PAGE_SIZE - 100), &data).unwrap();
        let mut buf = vec![0u8; 256];
        m.read(a + (PAGE_SIZE - 100), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn cross_chunk_access() {
        // Pages 511 and 512 sit in different 512-page chunks: the copy
        // must stitch two runs together.
        let mut m = Machine::new();
        let a = rw_page(&mut m, 511 * PAGE_SIZE as u64, 1);
        rw_page(&mut m, 512 * PAGE_SIZE as u64, 1);
        m.set_pkru(Pkru::allow_all());
        let data: Vec<u8> = (0..200).collect();
        m.write(a + (PAGE_SIZE - 100), &data).unwrap();
        let mut buf = vec![0u8; 200];
        m.read(a + (PAGE_SIZE - 100), &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn pkru_blocks_and_faults_are_counted() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 3);
        m.set_pkru(Pkru::deny_all());
        let err = m.write(a, b"x").unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(ProtKey::new(3).unwrap()));
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn read_only_key_blocks_writes_only() {
        let mut m = Machine::new();
        let k = ProtKey::new(2).unwrap();
        let a = rw_page(&mut m, 0x1000, 2);
        m.set_pkru(Pkru::deny_all().allowing_read(k));
        let mut buf = [0u8; 4];
        assert!(m.read(a, &mut buf).is_ok());
        assert!(m.write(a, b"nope").is_err());
    }

    #[test]
    fn page_flags_override_pkru() {
        let mut m = Machine::new();
        let a = VAddr::new(0x1000);
        m.map_page(a, ProtKey::new(1).unwrap(), PageFlags::r());
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_ok());
        let err = m.write(a, b"x").unwrap_err();
        assert_eq!(err.kind, FaultKind::Permission);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Machine::new();
        m.set_pkru(Pkru::allow_all());
        let err = m.read(VAddr::new(0x5000), &mut [0u8; 1]).unwrap_err();
        assert_eq!(err.kind, FaultKind::NotPresent);
    }

    #[test]
    fn atomicity_on_partial_failure() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        // second page unmapped: nothing must be written to the first
        m.set_pkru(Pkru::allow_all());
        let data = vec![0xAA; PAGE_SIZE + 10];
        assert!(m.write(a, &data).is_err());
        let mut probe = [0u8; 1];
        m.read(a, &mut probe).unwrap();
        assert_eq!(probe[0], 0, "failed cross-page write must not be partial");
    }

    #[test]
    fn retag_preserves_contents_zero_copy() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"payload").unwrap();
        let before = m.stats().retags;
        m.set_page_key(a, ProtKey::new(9).unwrap()).unwrap();
        assert_eq!(m.stats().retags, before + 1);
        assert_eq!(m.page_entry(a).unwrap().key, ProtKey::new(9).unwrap());
        let mut buf = [0u8; 7];
        m.read(a, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
    }

    #[test]
    fn retag_charges_pkey_mprotect() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        let t0 = m.now();
        m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        assert_eq!(m.now() - t0, CostModel::paper().pkey_mprotect);
    }

    #[test]
    fn load_time_retag_is_free() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        let t0 = m.now();
        m.set_page_key_at_load(a, ProtKey::new(2).unwrap()).unwrap();
        assert_eq!(m.now(), t0);
        assert_eq!(m.stats().retags, 0);
    }

    #[test]
    fn wrpkru_charges_20_cycles() {
        let mut m = Machine::new();
        let t0 = m.now();
        m.set_pkru(Pkru::allow_all());
        assert_eq!(m.now() - t0, 20);
        assert_eq!(m.stats().wrpkru, 1);
    }

    #[test]
    fn u64_round_trip() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write_u64(a + 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read_u64(a + 8).unwrap(), 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn u64_round_trip_straddling_page_boundary() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x2000, 1);
        m.set_pkru(Pkru::allow_all());
        // 3 bytes on the first page, 5 on the second.
        let addr = a + (PAGE_SIZE - 3);
        m.write_u64(addr, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u64(addr).unwrap(), 0x0123_4567_89ab_cdef);
        // The straddling access is still one 8-byte access, cost-wise.
        let t0 = m.now();
        m.read_u64(addr).unwrap();
        assert_eq!(m.now() - t0, CostModel::paper().mem_access(8));
    }

    #[test]
    fn u32_round_trip_straddling_page_boundary() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x2000, 1);
        m.set_pkru(Pkru::allow_all());
        let addr = a + (PAGE_SIZE - 1);
        m.write_u32(addr, 0xdead_beef).unwrap();
        assert_eq!(m.read_u32(addr).unwrap(), 0xdead_beef);
        let t0 = m.now();
        m.read_u32(addr).unwrap();
        assert_eq!(m.now() - t0, CostModel::paper().mem_access(4));
    }

    #[test]
    fn straddling_u64_is_atomic_when_second_page_faults() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        // next page unmapped
        m.set_pkru(Pkru::allow_all());
        let addr = a + (PAGE_SIZE - 4);
        let err = m.write_u64(addr, u64::MAX).unwrap_err();
        assert_eq!(err.kind, FaultKind::NotPresent);
        assert_eq!(err.addr, VAddr::new(0x2000), "fault at the failing page");
        let mut probe = [0u8; 4];
        m.read(addr, &mut probe).unwrap();
        assert_eq!(probe, [0; 4], "no partial store on the first page");
    }

    #[test]
    fn read_append_matches_read() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x2000, 1);
        m.set_pkru(Pkru::allow_all());
        let data: Vec<u8> = (0u8..=255).cycle().take(PAGE_SIZE + 77).collect();
        m.write(a + 9, &data).unwrap();
        let cycles0 = m.now();
        let stats0 = m.stats();
        let mut via_read = vec![0u8; data.len()];
        m.read(a + 9, &mut via_read).unwrap();
        let read_cost = m.now() - cycles0;
        let mut via_append = vec![0xEE]; // pre-existing contents survive
        m.read_append(a + 9, data.len(), &mut via_append).unwrap();
        assert_eq!(&via_append[1..], &via_read[..]);
        assert_eq!(via_append[0], 0xEE);
        assert_eq!(m.now() - cycles0 - read_cost, read_cost, "same charge");
        assert_eq!(m.stats().reads, stats0.reads + 2);
    }

    #[test]
    fn read_append_leaves_out_untouched_on_fault() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        let mut out = vec![1, 2, 3];
        assert!(m.read_append(a, 2 * PAGE_SIZE, &mut out).is_err());
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn exec_only_page_is_unreadable() {
        let mut m = Machine::new();
        let a = VAddr::new(0x1000);
        m.map_page(a, ProtKey::new(1).unwrap(), PageFlags::x());
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_err());
        assert!(m.fetch_check(a).is_ok());
    }

    #[test]
    fn exec_obeys_pkru_hardware_modification() {
        let mut m = Machine::new();
        let k = ProtKey::new(4).unwrap();
        let a = VAddr::new(0x1000);
        m.map_page(a, k, PageFlags::x());
        m.set_pkru(Pkru::deny_all());
        // With the paper's hardware change (default): fetch faults.
        let err = m.fetch_check(a).unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(k));
        // Vanilla MPK: fetch is not subject to keys. The switch takes
        // effect immediately even though the page was just cached.
        m.set_exec_obeys_pkru(false);
        assert!(m.fetch_check(a).is_ok());
    }

    #[test]
    fn unmap_discards() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        assert!(m.unmap_page(a));
        assert!(!m.unmap_page(a));
        m.set_pkru(Pkru::allow_all());
        assert!(m.read(a, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn remap_after_unmap_yields_a_zeroed_frame() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"dirty").unwrap();
        assert!(m.unmap_page(a));
        m.map_page(a, ProtKey::new(1).unwrap(), PageFlags::rw());
        let mut buf = [0xffu8; 5];
        m.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0; 5]);
    }

    #[test]
    #[should_panic(expected = "double-mapped")]
    fn double_map_panics() {
        let mut m = Machine::new();
        rw_page(&mut m, 0x1000, 1);
        rw_page(&mut m, 0x1000, 2);
    }

    #[test]
    fn sparse_mappings_far_apart() {
        let mut m = Machine::new();
        let lo = rw_page(&mut m, 0x1000, 1);
        let hi = rw_page(&mut m, 1 << 40, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(lo, b"lo").unwrap();
        m.write(hi, b"hi").unwrap();
        let mut buf = [0u8; 2];
        m.read(lo, &mut buf).unwrap();
        assert_eq!(&buf, b"lo");
        m.read(hi, &mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        assert_eq!(
            m.pages_with_key(ProtKey::new(1).unwrap()),
            vec![VAddr::new(0x1000).page(), VAddr::new(1 << 40).page()],
            "ascending across chunks"
        );
    }

    #[test]
    fn stats_track_bytes() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, &[1, 2, 3]).unwrap();
        m.read(a, &mut [0u8; 2]).unwrap();
        let s = m.stats();
        assert_eq!(s.bytes_written, 3);
        assert_eq!(s.bytes_read, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn charge_advances_clock() {
        let mut m = Machine::with_cost_model(CostModel::free());
        m.charge(123);
        assert_eq!(m.now(), 123);
    }

    // -- software TLB (host-side) -----------------------------------------

    #[test]
    fn tlb_hits_after_first_access() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        let mut buf = [0u8; 1];
        m.read(a, &mut buf).unwrap(); // cold: walk
        let s0 = m.stats();
        assert_eq!((s0.tlb_hits, s0.tlb_misses), (0, 1));
        m.read(a, &mut buf).unwrap(); // warm: hit
        m.write(a, b"x").unwrap(); // same entry serves all access kinds
        let s1 = m.stats();
        assert_eq!((s1.tlb_hits, s1.tlb_misses), (2, 1));
    }

    #[test]
    fn wrpkru_needs_no_tlb_invalidation() {
        let mut m = Machine::new();
        let k = ProtKey::new(1).unwrap();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        let mut buf = [0u8; 1];
        m.read(a, &mut buf).unwrap(); // fills the TLB
                                      // Revoking the key is visible instantly: rights are evaluated
                                      // against the live PKRU on every hit, never cached.
        m.set_pkru(Pkru::deny_all());
        let err = m.read(a, &mut buf).unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(k));
        // And granting again serves from the still-valid entry.
        m.set_pkru(Pkru::allow_all());
        let hits0 = m.stats().tlb_hits;
        m.read(a, &mut buf).unwrap();
        assert_eq!(m.stats().tlb_hits, hits0 + 1);
    }

    #[test]
    fn tlb_invalidated_by_retag() {
        let mut m = Machine::new();
        let k1 = ProtKey::new(1).unwrap();
        let k2 = ProtKey::new(2).unwrap();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::deny_all().allowing(k1));
        let mut buf = [0u8; 1];
        m.read(a, &mut buf).unwrap();
        m.set_page_key(a, k2).unwrap();
        let err = m.read(a, &mut buf).unwrap_err();
        assert_eq!(err.kind, FaultKind::ProtectionKey(k2));
    }

    #[test]
    fn tlb_invalidated_by_flag_change_and_unmap() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"x").unwrap();
        m.set_page_flags(a, PageFlags::r()).unwrap();
        assert_eq!(m.write(a, b"x").unwrap_err().kind, FaultKind::Permission);
        assert!(m.read(a, &mut [0u8; 1]).is_ok());
        m.unmap_page(a);
        assert_eq!(
            m.read(a, &mut [0u8; 1]).unwrap_err().kind,
            FaultKind::NotPresent
        );
    }

    #[test]
    fn tlb_disabled_same_outcomes_no_counters() {
        let mut m = Machine::new();
        m.set_tlb_enabled(false);
        assert!(!m.tlb_enabled());
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"data").unwrap();
        let mut buf = [0u8; 4];
        m.read(a, &mut buf).unwrap();
        assert_eq!(&buf, b"data");
        let s = m.stats();
        assert_eq!((s.tlb_hits, s.tlb_misses), (0, 0));
    }

    #[test]
    fn tlb_is_simulated_cycle_neutral() {
        // Same workload with and without the TLB: identical cycles and
        // simulated counters (the property test in tests/ goes further).
        let run = |tlb: bool| {
            let mut m = Machine::new();
            m.set_tlb_enabled(tlb);
            let a = rw_page(&mut m, 0x1000, 1);
            rw_page(&mut m, 0x2000, 1);
            m.set_pkru(Pkru::allow_all());
            let data = vec![7u8; PAGE_SIZE + 64];
            m.write(a, &data).unwrap();
            let mut buf = vec![0u8; PAGE_SIZE + 64];
            m.read(a, &mut buf).unwrap();
            m.set_page_key(a, ProtKey::new(3).unwrap()).unwrap();
            let _ = m.read(a, &mut buf);
            (m.now(), m.stats().faults, m.stats().bytes_read)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn event_ring_records_retags_and_wrpkru() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_event_recording(Some(16));
        m.set_pkru(Pkru::allow_all());
        m.set_page_key(a, ProtKey::new(5).unwrap()).unwrap();
        let events = m.drain_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], MachineEvent::WrPkru { .. }));
        match events[1] {
            MachineEvent::Retag { addr, from, to, at } => {
                assert_eq!(addr, a);
                assert_eq!(from, ProtKey::new(1).unwrap());
                assert_eq!(to, ProtKey::new(5).unwrap());
                assert_eq!(at, m.now());
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(m.drain_events().is_empty(), "drain empties the ring");
    }

    #[test]
    fn event_ring_overwrites_oldest_when_full() {
        let mut m = Machine::new();
        m.set_event_recording(Some(3));
        for _ in 0..5 {
            m.set_pkru(Pkru::allow_all());
        }
        assert_eq!(m.events_dropped(), 2);
        assert_eq!(m.drain_events().len(), 3);
    }

    #[test]
    fn event_recording_is_cycle_free() {
        let mut untraced = Machine::new();
        let mut traced = Machine::new();
        traced.set_event_recording(Some(64));
        for m in [&mut untraced, &mut traced] {
            let a = rw_page(m, 0x1000, 1);
            m.set_pkru(Pkru::allow_all());
            m.write(a, b"data").unwrap();
            m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        }
        assert_eq!(untraced.now(), traced.now());
    }

    #[test]
    fn recording_off_records_nothing() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.set_page_key(a, ProtKey::new(2).unwrap()).unwrap();
        assert!(m.drain_events().is_empty());
        assert_eq!(m.events_dropped(), 0);
    }

    #[test]
    fn mapped_pages_walks_everything_in_order() {
        let mut m = Machine::new();
        assert!(m.mapped_pages().is_empty());
        // two chunks apart, mapped out of order
        let hi = VAddr::new(600 * PAGE_SIZE as u64);
        let lo = VAddr::new(3 * PAGE_SIZE as u64);
        m.map_page(hi, ProtKey::new(2).unwrap(), PageFlags::x());
        m.map_page(lo, ProtKey::new(1).unwrap(), PageFlags::rw());
        let pages = m.mapped_pages();
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].0, lo.page());
        assert_eq!(pages[0].1.key, ProtKey::new(1).unwrap());
        assert!(pages[0].1.flags.can_write());
        assert_eq!(pages[1].0, hi.page());
        assert!(pages[1].1.flags.can_execute());
        m.unmap_page(lo);
        assert_eq!(m.mapped_pages().len(), 1);
    }

    #[test]
    fn cores_have_private_clocks_and_pkru() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.set_num_cores(2);
        m.charge(100);
        assert_eq!(m.core_cycles(0), m.now());

        m.switch_to_core(1);
        m.set_pkru(Pkru::deny_all());
        assert!(m.write(a, b"x").is_err(), "core 1's PKRU denies");
        m.charge(7);
        let c1_parked = m.core_cycles(1);

        m.switch_to_core(0);
        assert!(m.write(a, b"x").is_ok(), "core 0's PKRU still allows");
        assert_eq!(
            m.core_cycles(1),
            c1_parked,
            "a parked core's clock must not advance while another core runs"
        );
        assert_eq!(m.max_core_cycles(), m.core_cycles(0).max(m.core_cycles(1)));
    }

    #[test]
    fn single_core_machine_is_unchanged_by_core_api() {
        let mut m = Machine::new();
        assert_eq!(m.num_cores(), 1);
        assert_eq!(m.current_core(), 0);
        m.charge(42);
        assert_eq!(m.core_cycles(0), 42);
        assert_eq!(m.max_core_cycles(), 42);
        m.set_num_cores(1); // no-op
        assert_eq!(m.num_cores(), 1);
    }

    #[test]
    fn per_core_stats_are_private() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.set_num_cores(2);
        m.note_cross_call();
        m.write(a, b"hi").unwrap();
        assert_eq!(m.core_stats(0).cross_calls, 1);
        assert_eq!(m.core_stats(1).cross_calls, 0);
        m.switch_to_core(1);
        m.note_cross_call();
        m.note_cross_call();
        assert_eq!(m.core_stats(1).cross_calls, 2);
        assert_eq!(m.core_stats(0).cross_calls, 1);
        // Core 1's TLB is cold: its first touch of the page misses.
        let misses_before = m.core_stats(1).tlb_misses;
        m.write(a, b"yo").unwrap();
        assert!(m.core_stats(1).tlb_misses > misses_before);
    }

    #[test]
    fn retag_shoots_down_parked_core_tlbs() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        m.set_num_cores(2);
        // Warm core 1's TLB on the page, then park it.
        m.switch_to_core(1);
        m.set_pkru(Pkru::allow_all());
        m.write(a, b"warm").unwrap();
        m.switch_to_core(0);
        // Core 0 retags the page to a key core 1's PKRU denies.
        m.set_page_key(a, ProtKey::new(3).unwrap()).unwrap();
        m.switch_to_core(1);
        m.set_pkru(Pkru::deny_all().allowing(ProtKey::new(1).unwrap()));
        assert!(
            m.write(a, b"stale").is_err(),
            "a stale TLB entry must not survive a cross-core retag"
        );
    }

    #[test]
    fn set_page_key_cached_is_free_but_counted() {
        let mut m = Machine::new();
        let a = rw_page(&mut m, 0x1000, 1);
        m.set_pkru(Pkru::allow_all());
        let before = m.now();
        let retags = m.stats().retags;
        m.set_page_key_cached(a, ProtKey::new(2).unwrap()).unwrap();
        assert_eq!(m.now(), before, "cached retag charges no cycles");
        assert_eq!(m.stats().retags, retags + 1);
        // And the tag really changed.
        m.set_pkru(Pkru::deny_all().allowing(ProtKey::new(1).unwrap()));
        assert!(m.write(a, b"x").is_err());
    }

    #[test]
    #[should_panic(expected = "grow-only")]
    fn shrinking_cores_panics() {
        let mut m = Machine::new();
        m.set_num_cores(4);
        m.set_num_cores(2);
    }
}

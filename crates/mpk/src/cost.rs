//! Cycle cost model for the simulated machine.
//!
//! The CubicleOS paper reports its isolation primitives in cycles
//! (§2.2, quoting Park et al. \[43\]): writing the PKRU register with
//! `wrpkru` costs ~20 cycles, while re-assigning a page's protection key
//! through the kernel (`pkey_mprotect`) costs more than 1,100 cycles.
//! The remaining constants model a 2.2 GHz Xeon Silver 4210 (the paper's
//! testbed) and are documented in `EXPERIMENTS.md`; they are set once,
//! globally, and shared by every experiment.

/// Cycle costs charged by the machine and by the CubicleOS runtime.
///
/// All fields are public so that ablation studies can build variants, but
/// [`CostModel::paper`] is the configuration used by every experiment in
/// this repository.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// `wrpkru`: user-level PKRU write (paper §2.2: ~20 cycles).
    pub wrpkru: u64,
    /// `pkey_mprotect`: kernel-mediated page retag (paper §2.2: >1,100
    /// cycles). This is what trap-and-map pays per migrated page.
    pub pkey_mprotect: u64,
    /// Delivering a protection fault to the user-level monitor and
    /// returning (signal-style round trip through the host kernel).
    pub trap: u64,
    /// A plain (same-cubicle) function call + return.
    pub call: u64,
    /// Fixed cost of a cross-cubicle trampoline: stack-pointer switch,
    /// current-cubicle bookkeeping, guard-page entry (excludes the
    /// `wrpkru`s, charged separately).
    pub trampoline: u64,
    /// Base cost of one memory access operation (address generation, L1
    /// hit).
    pub mem_op: u64,
    /// Additional cost per 64-byte cache line touched by an access.
    pub per_cache_line: u64,
    /// Cost of inspecting one window descriptor during the monitor's
    /// linear ACL search (paper §5.3, step ❸).
    pub acl_probe: u64,
    /// Consulting the O(1) page-metadata map (paper §5.3, step ❷).
    pub page_meta_lookup: u64,
    /// A host-OS system call round trip (used by the Linux baseline and
    /// by `pkey_mprotect`-class operations already folded into their own
    /// constants).
    pub syscall: u64,
}

impl CostModel {
    /// The calibrated configuration used by all experiments.
    pub const fn paper() -> CostModel {
        CostModel {
            wrpkru: 20,
            pkey_mprotect: 1_100,
            trap: 4_200,
            call: 5,
            trampoline: 60,
            mem_op: 4,
            per_cache_line: 1,
            acl_probe: 12,
            page_meta_lookup: 30,
            syscall: 700,
        }
    }

    /// A zero-cost model, useful in unit tests that assert on event counts
    /// rather than cycles.
    pub const fn free() -> CostModel {
        CostModel {
            wrpkru: 0,
            pkey_mprotect: 0,
            trap: 0,
            call: 0,
            trampoline: 0,
            mem_op: 0,
            per_cache_line: 0,
            acl_probe: 0,
            page_meta_lookup: 0,
            syscall: 0,
        }
    }

    /// Cycles for one memory access of `len` bytes.
    pub const fn mem_access(&self, len: usize) -> u64 {
        let lines = (len as u64).div_ceil(64);
        self.mem_op + self.per_cache_line * lines
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_published_constants() {
        let c = CostModel::paper();
        assert_eq!(c.wrpkru, 20);
        assert_eq!(c.pkey_mprotect, 1_100);
        assert!(
            c.trap > c.pkey_mprotect,
            "a trap includes a kernel round trip"
        );
    }

    #[test]
    fn mem_access_scales_with_lines() {
        let c = CostModel::paper();
        assert_eq!(c.mem_access(1), c.mem_op + 1);
        assert_eq!(c.mem_access(64), c.mem_op + 1);
        assert_eq!(c.mem_access(65), c.mem_op + 2);
        assert_eq!(c.mem_access(4096), c.mem_op + 64);
    }

    #[test]
    fn mem_access_zero_len_is_base_only() {
        let c = CostModel::paper();
        assert_eq!(c.mem_access(0), c.mem_op);
    }

    #[test]
    fn free_is_all_zero() {
        let c = CostModel::free();
        assert_eq!(c.mem_access(4096), 0);
        assert_eq!(c.wrpkru + c.trap + c.syscall, 0);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CostModel::default(), CostModel::paper());
    }
}

//! Virtual addresses and page numbers.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Size of a virtual memory page in bytes (4 KiB, as on x86-64).
pub const PAGE_SIZE: usize = 4096;

/// A virtual address in the simulated address space.
///
/// Addresses are plain 64-bit values; the zero address is conventionally
/// left unmapped so it can play the role of a null pointer.
///
/// # Example
///
/// ```
/// use cubicle_mpk::{VAddr, PAGE_SIZE};
///
/// let a = VAddr::new(0x1234);
/// assert_eq!(a.page().base(), VAddr::new(0x1000));
/// assert_eq!(a.page_offset(), 0x234);
/// assert_eq!(a + 10, VAddr::new(0x123e));
/// assert_eq!(a.align_up(PAGE_SIZE as u64), VAddr::new(0x2000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// The null address.
    pub const NULL: VAddr = VAddr(0);

    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        VAddr(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the page containing this address.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_SIZE as u64)
    }

    /// Returns the offset of this address within its page.
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// Returns `true` if the address is aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// Rounds the address up to the next multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_up(self, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        VAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Rounds the address down to the previous multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn align_down(self, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        VAddr(self.0 & !(align - 1))
    }

    /// Byte distance from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier > self`.
    pub fn offset_from(self, earlier: VAddr) -> usize {
        assert!(earlier.0 <= self.0, "offset_from: argument is later");
        (self.0 - earlier.0) as usize
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Add<usize> for VAddr {
    type Output = VAddr;

    fn add(self, rhs: usize) -> VAddr {
        VAddr(self.0 + rhs as u64)
    }
}

impl AddAssign<usize> for VAddr {
    fn add_assign(&mut self, rhs: usize) {
        self.0 += rhs as u64;
    }
}

impl Sub<usize> for VAddr {
    type Output = VAddr;

    fn sub(self, rhs: usize) -> VAddr {
        VAddr(self.0 - rhs as u64)
    }
}

impl From<u64> for VAddr {
    fn from(raw: u64) -> Self {
        VAddr(raw)
    }
}

/// A virtual page number (address divided by [`PAGE_SIZE`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageNum(pub u64);

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}@{}", self.0, self.base())
    }
}

impl PageNum {
    /// Returns the base address of this page.
    pub const fn base(self) -> VAddr {
        VAddr(self.0 * PAGE_SIZE as u64)
    }

    /// Returns the page immediately after this one.
    pub const fn next(self) -> PageNum {
        PageNum(self.0 + 1)
    }
}

/// Iterates over all pages covering the byte range `[start, start + len)`.
///
/// Returns an empty iterator when `len == 0`.
///
/// # Example
///
/// ```
/// use cubicle_mpk::{VAddr, PAGE_SIZE};
/// use cubicle_mpk::pages_covering;
///
/// let pages: Vec<_> = pages_covering(VAddr::new(0xff0), 0x20).collect();
/// assert_eq!(pages.len(), 2); // straddles a page boundary
/// ```
pub fn pages_covering(start: VAddr, len: usize) -> impl Iterator<Item = PageNum> {
    let first = start.page().0;
    let last = if len == 0 {
        first // produce an empty range below
    } else {
        (start + (len - 1)).page().0 + 1
    };
    (first..last).map(PageNum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_offset() {
        let a = VAddr::new(3 * PAGE_SIZE as u64 + 17);
        assert_eq!(a.page(), PageNum(3));
        assert_eq!(a.page_offset(), 17);
        assert_eq!(a.page().base(), VAddr::new(3 * PAGE_SIZE as u64));
    }

    #[test]
    fn alignment() {
        let a = VAddr::new(0x1001);
        assert!(!a.is_aligned(0x1000));
        assert_eq!(a.align_up(0x1000), VAddr::new(0x2000));
        assert_eq!(a.align_down(0x1000), VAddr::new(0x1000));
        let b = VAddr::new(0x2000);
        assert_eq!(b.align_up(0x1000), b);
    }

    #[test]
    fn arithmetic() {
        let a = VAddr::new(100);
        assert_eq!(a + 28, VAddr::new(128));
        assert_eq!((a + 28) - 28, a);
        assert_eq!((a + 28).offset_from(a), 28);
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_when_reversed() {
        VAddr::new(10).offset_from(VAddr::new(20));
    }

    #[test]
    fn pages_covering_empty() {
        assert_eq!(pages_covering(VAddr::new(0x1000), 0).count(), 0);
    }

    #[test]
    fn pages_covering_single() {
        let v: Vec<_> = pages_covering(VAddr::new(0x1000), 1).collect();
        assert_eq!(v, vec![PageNum(1)]);
        let v: Vec<_> = pages_covering(VAddr::new(0x1fff), 1).collect();
        assert_eq!(v, vec![PageNum(1)]);
    }

    #[test]
    fn pages_covering_straddle() {
        let v: Vec<_> = pages_covering(VAddr::new(0x1ff0), 0x20).collect();
        assert_eq!(v, vec![PageNum(1), PageNum(2)]);
        let v: Vec<_> = pages_covering(VAddr::new(0x1000), 2 * PAGE_SIZE).collect();
        assert_eq!(v, vec![PageNum(1), PageNum(2)]);
    }

    #[test]
    fn null_address() {
        assert!(VAddr::NULL.is_null());
        assert!(!VAddr::new(1).is_null());
        assert_eq!(VAddr::default(), VAddr::NULL);
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", VAddr::new(0x1000)), "0x1000");
        assert_eq!(format!("{:?}", VAddr::new(0x1000)), "VAddr(0x1000)");
        assert_eq!(format!("{}", PageNum(3)), "p3@0x3000");
    }
}

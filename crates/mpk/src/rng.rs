//! Deterministic pseudo-random numbers for workloads and tests.
//!
//! The whole reproduction must run offline and bit-reproducibly, so the
//! workload generators (speedtest1 strings, siege request mixes) and the
//! randomized test suites use this tiny in-tree SplitMix64 generator
//! instead of an external crate. SplitMix64 (Steele, Lea, Flood;
//! "Fast splittable pseudorandom number generators", OOPSLA'14) passes
//! BigCrush at 64-bit state — far more than statistical quality than a
//! deterministic benchmark needs.

/// A SplitMix64 pseudo-random generator. Copy-cheap, seedable, and
/// deterministic across platforms and runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub const fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[lo, hi)` (Lemire reduction —
    /// no modulo bias worth speaking of at these ranges).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// [`Rng64::range_u64`] for `usize` bounds.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly distributed value in `[lo, hi)` for signed bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = lo.abs_diff(hi);
        let off = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo.wrapping_add(off as i64)
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.range_usize(0, i + 1));
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let s = rng.range_i64(-5, 5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..8 hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = Rng64::new(11);
        for len in [0, 1, 7, 8, 9, 31] {
            assert_eq!(rng.bytes(len).len(), len);
        }
    }
}

//! Deterministic multi-core interleaving scheduler.
//!
//! Multi-core simulation runs host-sequentially: exactly one simulated
//! core executes at a time, and the harness asks [`CoreScheduler`] which
//! core goes next before every top-level operation. The policy is
//! *min-clock-first with a seeded quantum*: among runnable cores, the one
//! whose cycle counter lags furthest behind runs next — this bounds the
//! causality skew between cores to one operation, which is what makes
//! sim-time overlap of cross-calls meaningful — except that the current
//! core keeps running while its quantum lasts, so a core executes bursts
//! instead of ping-ponging on every step. Quantum lengths and min-clock
//! ties are drawn from the in-tree [`Rng64`], so the full interleaving of
//! a run is a pure function of the seed: replaying with the same seed and
//! the same per-core workloads reproduces every switch, every cycle count
//! and every trace record bit-identically.
//!
//! With one core the scheduler always answers "core 0" and consumes no
//! randomness, so a 1-core scheduled run is cycle-identical to a run that
//! never heard of the scheduler.

use crate::rng::Rng64;

/// Default lower bound on quantum length (scheduler steps).
const DEFAULT_QUANTUM_MIN: u64 = 1;
/// Default upper bound (inclusive) on quantum length.
const DEFAULT_QUANTUM_MAX: u64 = 8;

/// Seeded, deterministic scheduler for interleaving N simulated cores.
#[derive(Clone, Debug)]
pub struct CoreScheduler {
    rng: Rng64,
    cores: usize,
    current: usize,
    /// Steps left in the current core's quantum.
    remaining: u64,
    quantum_min: u64,
    quantum_max: u64,
    switches: u64,
    steps: u64,
}

impl CoreScheduler {
    /// Creates a scheduler for `cores` cores with the default quantum
    /// range, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(seed: u64, cores: usize) -> CoreScheduler {
        CoreScheduler::with_quantum(seed, cores, DEFAULT_QUANTUM_MIN, DEFAULT_QUANTUM_MAX)
    }

    /// Creates a scheduler drawing quantum lengths uniformly from
    /// `[quantum_min, quantum_max]` steps.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or the quantum range is empty.
    pub fn with_quantum(
        seed: u64,
        cores: usize,
        quantum_min: u64,
        quantum_max: u64,
    ) -> CoreScheduler {
        assert!(cores >= 1, "a schedule needs at least one core");
        assert!(
            quantum_min >= 1 && quantum_min <= quantum_max,
            "invalid quantum range {quantum_min}..={quantum_max}"
        );
        CoreScheduler {
            rng: Rng64::new(seed),
            cores,
            current: 0,
            remaining: 0,
            quantum_min,
            quantum_max,
            switches: 0,
            steps: 0,
        }
    }

    /// Number of cores being scheduled.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Core chosen by the last [`CoreScheduler::next_core`] call.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Scheduling decisions taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Core switches performed so far (a step that stayed on the same
    /// core does not count).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Picks the core to run the next operation. `clocks[i]` is core
    /// `i`'s cycle counter and `runnable[i]` says whether core `i` has
    /// work left; returns `None` when no core is runnable.
    ///
    /// The current core keeps running while its quantum lasts and it
    /// stays runnable; otherwise the runnable core with the smallest
    /// clock wins, ties broken uniformly by the seeded generator, and a
    /// fresh quantum is drawn. On a 1-core schedule this always returns
    /// `Some(0)` without touching the generator.
    ///
    /// # Panics
    ///
    /// Panics if the slices do not both have one entry per core.
    pub fn next_core(&mut self, clocks: &[u64], runnable: &[bool]) -> Option<usize> {
        assert_eq!(clocks.len(), self.cores, "one clock per core");
        assert_eq!(runnable.len(), self.cores, "one runnable flag per core");
        if self.cores == 1 {
            if !runnable[0] {
                return None;
            }
            self.steps += 1;
            return Some(0);
        }
        if self.remaining > 0 && runnable[self.current] {
            self.remaining -= 1;
            self.steps += 1;
            return Some(self.current);
        }
        // Min-clock-first over runnable cores, reservoir tie-break so
        // every tied core is equally likely under the seeded stream.
        let mut best: Option<usize> = None;
        let mut ties = 0u64;
        for (i, (&clock, &run)) in clocks.iter().zip(runnable).enumerate() {
            if !run {
                continue;
            }
            match best {
                Some(b) if clocks[b] < clock => {}
                Some(b) if clocks[b] == clock => {
                    ties += 1;
                    if self.rng.range_u64(0, ties + 1) == 0 {
                        best = Some(i);
                    }
                }
                _ => {
                    best = Some(i);
                    ties = 0;
                }
            }
        }
        let chosen = best?;
        if chosen != self.current {
            self.switches += 1;
        }
        self.current = chosen;
        self.remaining = self.rng.range_u64(self.quantum_min, self.quantum_max + 1) - 1;
        self.steps += 1;
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_always_zero_and_rng_untouched() {
        let mut s = CoreScheduler::new(123, 1);
        let before = s.rng;
        for _ in 0..100 {
            assert_eq!(s.next_core(&[42], &[true]), Some(0));
        }
        assert_eq!(
            s.rng, before,
            "1-core scheduling must consume no randomness"
        );
        assert_eq!(s.next_core(&[42], &[false]), None);
        assert_eq!(s.switches(), 0);
    }

    #[test]
    fn replay_is_bit_identical() {
        let run = |seed: u64| {
            let mut s = CoreScheduler::new(seed, 4);
            let mut clocks = [0u64; 4];
            let mut picks = Vec::new();
            let mut work = Rng64::new(seed ^ 0xDEAD);
            for _ in 0..500 {
                let c = s.next_core(&clocks, &[true; 4]).unwrap();
                clocks[c] += work.range_u64(1, 1000);
                picks.push(c);
            }
            picks
        };
        for seed in 0..16 {
            assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
        }
        assert_ne!(
            run(1),
            run(2),
            "different seeds should interleave differently"
        );
    }

    #[test]
    fn prefers_lagging_core() {
        let mut s = CoreScheduler::with_quantum(7, 2, 1, 1);
        // Core 1 lags far behind: with quantum 1 it must be chosen.
        let c = s.next_core(&[1_000_000, 5], &[true, true]).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn skips_unrunnable_cores() {
        let mut s = CoreScheduler::new(9, 3);
        for _ in 0..50 {
            let c = s.next_core(&[5, 0, 10], &[false, true, false]).unwrap();
            assert_eq!(c, 1);
        }
        assert_eq!(s.next_core(&[5, 0, 10], &[false; 3]), None);
    }

    #[test]
    fn quantum_produces_bursts() {
        let mut s = CoreScheduler::with_quantum(11, 4, 4, 8);
        let mut clocks = [0u64; 4];
        let mut picks = Vec::new();
        for _ in 0..200 {
            let c = s.next_core(&clocks, &[true; 4]).unwrap();
            clocks[c] += 10;
            picks.push(c);
        }
        // With quanta of >= 4 steps, switches happen at most every 4th step.
        assert!(s.switches() <= 200 / 4 + 1, "switches: {}", s.switches());
        assert!(picks.windows(2).any(|w| w[0] == w[1]), "expected bursts");
    }
}

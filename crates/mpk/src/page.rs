//! Page-table entries: classic permissions plus the MPK key.

use crate::pkru::ProtKey;
use std::fmt;

/// Classic per-page permissions (read / write / execute).
///
/// CubicleOS' loader enforces W^X: code pages are execute-only, data pages
/// are read-write but never executable (paper §4, loader rule 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct PageFlags {
    read: bool,
    write: bool,
    execute: bool,
}

impl PageFlags {
    /// Read-only data page.
    pub const fn r() -> PageFlags {
        PageFlags {
            read: true,
            write: false,
            execute: false,
        }
    }

    /// Read-write data page.
    pub const fn rw() -> PageFlags {
        PageFlags {
            read: true,
            write: true,
            execute: false,
        }
    }

    /// Execute-only code page (CubicleOS maps component code X-only).
    pub const fn x() -> PageFlags {
        PageFlags {
            read: false,
            write: false,
            execute: true,
        }
    }

    /// Read + execute page (not used by the CubicleOS loader, provided for
    /// completeness of the machine model).
    pub const fn rx() -> PageFlags {
        PageFlags {
            read: true,
            write: false,
            execute: true,
        }
    }

    /// Writable **and** executable page. The CubicleOS loader never
    /// produces this — it violates W^X — but the machine model must be
    /// able to represent it so that verification layers (the kernel
    /// invariant auditor) can be tested against seeded corruption.
    pub const fn rwx() -> PageFlags {
        PageFlags {
            read: true,
            write: true,
            execute: true,
        }
    }

    /// Returns `true` if reads are permitted.
    pub const fn can_read(self) -> bool {
        self.read
    }

    /// Returns `true` if writes are permitted.
    pub const fn can_write(self) -> bool {
        self.write
    }

    /// Returns `true` if instruction fetch is permitted.
    pub const fn can_execute(self) -> bool {
        self.execute
    }
}

impl fmt::Display for PageFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { "r" } else { "-" },
            if self.write { "w" } else { "-" },
            if self.execute { "x" } else { "-" }
        )
    }
}

/// A page-table entry in the simulated machine: permissions plus the 4-bit
/// protection key (paper §2.2: "MPK assigns a 4-bit key to each virtual
/// page by extending the page table structures").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageEntry {
    /// Protection key tagged onto this page.
    pub key: ProtKey,
    /// Classic read/write/execute permissions.
    pub flags: PageFlags,
}

impl PageEntry {
    /// Creates a page-table entry.
    pub const fn new(key: ProtKey, flags: PageFlags) -> PageEntry {
        PageEntry { key, flags }
    }
}

impl fmt::Display for PageEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.flags, self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_constructors() {
        assert!(PageFlags::r().can_read());
        assert!(!PageFlags::r().can_write());
        assert!(!PageFlags::r().can_execute());

        assert!(PageFlags::rw().can_read());
        assert!(PageFlags::rw().can_write());
        assert!(!PageFlags::rw().can_execute());

        assert!(!PageFlags::x().can_read());
        assert!(!PageFlags::x().can_write());
        assert!(PageFlags::x().can_execute());

        assert!(PageFlags::rx().can_read());
        assert!(PageFlags::rx().can_execute());

        assert!(PageFlags::rwx().can_read());
        assert!(PageFlags::rwx().can_write());
        assert!(PageFlags::rwx().can_execute());
    }

    #[test]
    fn default_denies_everything() {
        let f = PageFlags::default();
        assert!(!f.can_read() && !f.can_write() && !f.can_execute());
    }

    #[test]
    fn display_is_ls_style() {
        assert_eq!(format!("{}", PageFlags::rw()), "rw-");
        assert_eq!(format!("{}", PageFlags::x()), "--x");
        let e = PageEntry::new(ProtKey::new(2).unwrap(), PageFlags::r());
        assert_eq!(format!("{e}"), "r-- pk2");
    }
}

//! Protection faults raised by the simulated machine.

use crate::addr::VAddr;
use crate::pkru::ProtKey;
use std::error::Error;
use std::fmt;

/// The kind of memory access that faulted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        })
    }
}

/// Why an access faulted.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultKind {
    /// The page is not mapped at all.
    NotPresent,
    /// The page is mapped but its R/W/X permissions disallow the access.
    Permission,
    /// The page's protection key is blocked by the current PKRU value.
    ///
    /// This is the fault CubicleOS' monitor intercepts for trap-and-map
    /// (paper Fig. 4): it carries the key so the handler can identify the
    /// owning cubicle.
    ProtectionKey(ProtKey),
}

/// A memory protection fault.
///
/// Delivered as the error of [`crate::Machine::read`] and friends; the
/// CubicleOS monitor inspects it, may retag the page, and retries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// The faulting virtual address.
    pub addr: VAddr,
    /// What the access was trying to do.
    pub access: AccessKind,
    /// Why it was refused.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::NotPresent => {
                write!(
                    f,
                    "page fault: {} of unmapped address {}",
                    self.access, self.addr
                )
            }
            FaultKind::Permission => {
                write!(
                    f,
                    "permission fault: {} of {} denied by page flags",
                    self.access, self.addr
                )
            }
            FaultKind::ProtectionKey(key) => write!(
                f,
                "protection-key fault: {} of {} denied by PKRU for {}",
                self.access, self.addr, key
            ),
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let f = Fault {
            addr: VAddr::new(0x2000),
            access: AccessKind::Write,
            kind: FaultKind::ProtectionKey(ProtKey::new(5).unwrap()),
        };
        let s = f.to_string();
        assert!(s.contains("0x2000"));
        assert!(s.contains("write"));
        assert!(s.contains("pk5"));
    }

    #[test]
    fn not_present_display() {
        let f = Fault {
            addr: VAddr::new(0x10),
            access: AccessKind::Read,
            kind: FaultKind::NotPresent,
        };
        assert!(f.to_string().contains("unmapped"));
    }

    #[test]
    fn is_std_error() {
        fn assert_error<E: Error>() {}
        assert_error::<Fault>();
    }
}

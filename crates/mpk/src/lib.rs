//! Simulated Intel MPK machine for the CubicleOS reproduction.
//!
//! The ASPLOS'21 CubicleOS prototype runs on real Intel Memory Protection
//! Keys (MPK) hardware. This crate is the laboratory substitute: a small,
//! deterministic machine model that provides exactly the pieces of the ISA
//! CubicleOS depends on (see paper §2.2 and §5):
//!
//! * a paged virtual **address space** whose page-table entries carry a
//!   4-bit **protection key** ([`ProtKey`]) in addition to classic
//!   read/write/execute permissions ([`PageFlags`]);
//! * a per-thread **PKRU register** ([`Pkru`]) with a 2-bit
//!   access-disable/write-disable field per key, writable in ~20 cycles
//!   (`wrpkru`), while *retagging* a page (`pkey_mprotect`) costs
//!   ~1,100 cycles;
//! * **protection faults** ([`Fault`]) raised on any access that the current
//!   PKRU value or the page permissions do not allow — the hook CubicleOS'
//!   monitor uses for its lazy trap-and-map scheme;
//! * a synthetic **instruction stream** ([`insn::CodeImage`]) so the loader
//!   can scan component binaries for forbidden `wrpkru`/`syscall`
//!   sequences before mapping them executable;
//! * a **cycle counter** driven by a [`CostModel`] so that experiments can
//!   report simulated time from measured event counts.
//!
//! Everything here is mechanism; policy (cubicles, windows, trap-and-map)
//! lives in the `cubicle-core` crate.
//!
//! # Example
//!
//! ```
//! use cubicle_mpk::{Machine, ProtKey, PageFlags, Pkru, PAGE_SIZE, VAddr};
//!
//! # fn main() -> Result<(), cubicle_mpk::Fault> {
//! let mut m = Machine::new();
//! let key = ProtKey::new(3).unwrap();
//! let page = VAddr::new(0x1000);
//! m.map_page(page, key, PageFlags::rw());
//!
//! // A PKRU value that can only touch key 3:
//! m.set_pkru(Pkru::deny_all().allowing(key));
//! m.write(page, b"hello")?;
//!
//! // Key 3 revoked: the same access now faults.
//! m.set_pkru(Pkru::deny_all());
//! assert!(m.write(page, b"denied").is_err());
//! # Ok(())
//! # }
//! ```

mod addr;
mod cost;
mod fault;
mod machine;
mod page;
mod pkru;

pub mod insn;
pub mod rng;
pub mod sched;

pub use addr::{pages_covering, PageNum, VAddr, PAGE_SIZE};
pub use cost::CostModel;
pub use fault::{AccessKind, Fault, FaultKind};
pub use machine::{CoreStats, Machine, MachineEvent, MachineStats};
pub use page::{PageEntry, PageFlags};
pub use pkru::{KeyRights, Pkru, ProtKey, NUM_KEYS};
pub use sched::CoreScheduler;

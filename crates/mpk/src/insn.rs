//! Synthetic instruction streams for the loader's binary scan.
//!
//! CubicleOS' loader refuses to map code executable if it contains byte
//! sequences encoding `wrpkru` or `syscall` instructions (paper §5.4),
//! because either would let a component escape its cubicle. On real
//! hardware this is a scan for `0F 01 EF` / `0F 05`, including unaligned
//! occurrences; our machine model keeps the same two-level structure: a
//! [`CodeImage`] is a byte stream, and the scanner looks for the encoded
//! sequences at *any* byte offset, exactly like the ERIM-style scanners
//! cited by the paper.

use std::fmt;

/// Encoding of `wrpkru` on x86-64.
pub const WRPKRU_BYTES: [u8; 3] = [0x0F, 0x01, 0xEF];
/// Encoding of `syscall` on x86-64.
pub const SYSCALL_BYTES: [u8; 2] = [0x0F, 0x05];

/// One instruction in a synthetic component binary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Insn {
    /// An ordinary, harmless instruction occupying `len` bytes with
    /// non-significant content.
    Plain { len: u8 },
    /// A `wrpkru` — forbidden in untrusted cubicles.
    Wrpkru,
    /// A `syscall` — forbidden in untrusted cubicles.
    Syscall,
    /// An instruction whose *immediate operand* embeds the given bytes.
    /// Used to test that the scanner finds unaligned occurrences of
    /// forbidden sequences inside larger instructions.
    ImmCarrier { imm: [u8; 4] },
}

impl Insn {
    /// Encoded length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Insn::Plain { len } => *len as usize,
            Insn::Wrpkru => WRPKRU_BYTES.len(),
            Insn::Syscall => SYSCALL_BYTES.len(),
            Insn::ImmCarrier { .. } => 1 + 4,
        }
    }

    /// Returns `true` if the encoding is empty (never, but required pair
    /// for `len`).
    pub fn is_empty(&self) -> bool {
        false
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Insn::Plain { len } => out.extend(std::iter::repeat_n(0x90, *len as usize)),
            Insn::Wrpkru => out.extend_from_slice(&WRPKRU_BYTES),
            Insn::Syscall => out.extend_from_slice(&SYSCALL_BYTES),
            Insn::ImmCarrier { imm } => {
                out.push(0xB8); // mov eax, imm32
                out.extend_from_slice(imm);
            }
        }
    }
}

/// A component's code, as handed to the loader.
///
/// # Example
///
/// ```
/// use cubicle_mpk::insn::{CodeImage, Insn, ForbiddenInsn};
///
/// let clean = CodeImage::from_insns(&[Insn::Plain { len: 5 }]);
/// assert!(clean.scan_forbidden().is_none());
///
/// let dirty = CodeImage::from_insns(&[Insn::Plain { len: 2 }, Insn::Syscall]);
/// assert_eq!(dirty.scan_forbidden(), Some(ForbiddenInsn::Syscall));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CodeImage {
    bytes: Vec<u8>,
}

/// A forbidden instruction found by the scanner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForbiddenInsn {
    /// A `wrpkru` byte sequence.
    Wrpkru,
    /// A `syscall` byte sequence.
    Syscall,
}

impl fmt::Display for ForbiddenInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ForbiddenInsn::Wrpkru => "wrpkru",
            ForbiddenInsn::Syscall => "syscall",
        })
    }
}

impl CodeImage {
    /// Builds an image by encoding a sequence of instructions.
    pub fn from_insns(insns: &[Insn]) -> CodeImage {
        let mut bytes = Vec::new();
        for insn in insns {
            insn.encode_into(&mut bytes);
        }
        CodeImage { bytes }
    }

    /// Builds an image of `len` harmless bytes — the common case for
    /// components that are trusted to have been compiled from honest
    /// source but still go through the scan.
    pub fn plain(len: usize) -> CodeImage {
        CodeImage {
            bytes: vec![0x90; len],
        }
    }

    /// Builds an image from raw bytes (e.g., from a test vector).
    pub fn from_bytes(bytes: Vec<u8>) -> CodeImage {
        CodeImage { bytes }
    }

    /// The encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Returns `true` if the image has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Scans for forbidden byte sequences at any offset (paper §5.4:
    /// "the loader scans code pages for binary sequences containing
    /// system call or wrpkru instructions ... and refuses to load code if
    /// any such sequence is found").
    ///
    /// This is the loader's fast path: it stops at the *first* hit, since
    /// one forbidden sequence is enough to refuse the image. Use
    /// [`CodeImage::scan_all`] for the exhaustive audit-log variant.
    pub fn scan_forbidden(&self) -> Option<ForbiddenInsn> {
        let b = &self.bytes;
        for i in 0..b.len() {
            if b[i..].starts_with(&WRPKRU_BYTES) {
                return Some(ForbiddenInsn::Wrpkru);
            }
            if b[i..].starts_with(&SYSCALL_BYTES) {
                return Some(ForbiddenInsn::Syscall);
            }
        }
        None
    }

    /// Exhaustive scan: every forbidden occurrence with its byte offset,
    /// in ascending offset order. Overlapping occurrences are all
    /// reported (a jump into the middle of one sequence can decode as
    /// another), which is what an audit log wants even though the loader
    /// itself only needs the early-exit [`CodeImage::scan_forbidden`].
    pub fn scan_all(&self) -> Vec<(usize, ForbiddenInsn)> {
        let b = &self.bytes;
        let mut hits = Vec::new();
        for i in 0..b.len() {
            if b[i..].starts_with(&WRPKRU_BYTES) {
                hits.push((i, ForbiddenInsn::Wrpkru));
            }
            if b[i..].starts_with(&SYSCALL_BYTES) {
                hits.push((i, ForbiddenInsn::Syscall));
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_image_is_clean() {
        assert!(CodeImage::plain(1024).scan_forbidden().is_none());
    }

    #[test]
    fn explicit_wrpkru_found() {
        let img = CodeImage::from_insns(&[Insn::Plain { len: 7 }, Insn::Wrpkru]);
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Wrpkru));
    }

    #[test]
    fn explicit_syscall_found() {
        let img = CodeImage::from_insns(&[Insn::Syscall]);
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Syscall));
    }

    #[test]
    fn unaligned_sequence_inside_immediate_found() {
        // A wrpkru hidden in the immediate of a mov: the scanner must find
        // byte sequences regardless of instruction boundaries.
        let img = CodeImage::from_insns(&[
            Insn::Plain { len: 3 },
            Insn::ImmCarrier {
                imm: [0x0F, 0x01, 0xEF, 0x00],
            },
        ]);
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Wrpkru));
    }

    #[test]
    fn sequence_straddling_two_instructions_found() {
        // 0x0F as the last byte of one instruction's encoding and 0x05
        // leading the next would decode as `syscall` if jumped into.
        let img = CodeImage::from_bytes(vec![0x90, 0x0F, 0x05, 0x90]);
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Syscall));
    }

    #[test]
    fn wrpkru_reported_before_syscall_when_earlier() {
        let img = CodeImage::from_insns(&[Insn::Wrpkru, Insn::Syscall]);
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Wrpkru));
    }

    #[test]
    fn lengths_add_up() {
        let insns = [
            Insn::Plain { len: 4 },
            Insn::Wrpkru,
            Insn::Syscall,
            Insn::ImmCarrier { imm: [0; 4] },
        ];
        let img = CodeImage::from_insns(&insns);
        let expect: usize = insns.iter().map(Insn::len).sum();
        assert_eq!(img.len(), expect);
        assert!(!img.is_empty());
        assert!(CodeImage::default().is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(ForbiddenInsn::Wrpkru.to_string(), "wrpkru");
        assert_eq!(ForbiddenInsn::Syscall.to_string(), "syscall");
    }

    #[test]
    fn scan_all_reports_every_occurrence_with_offsets() {
        let img = CodeImage::from_insns(&[
            Insn::Plain { len: 4 },
            Insn::Wrpkru, // offset 4
            Insn::Plain { len: 2 },
            Insn::Syscall, // offset 9
            Insn::ImmCarrier {
                imm: [0x0F, 0x01, 0xEF, 0x00], // carrier at 11, imm at 12
            },
        ]);
        assert_eq!(
            img.scan_all(),
            vec![
                (4, ForbiddenInsn::Wrpkru),
                (9, ForbiddenInsn::Syscall),
                (12, ForbiddenInsn::Wrpkru),
            ]
        );
        // the early-exit path agrees on the first hit
        assert_eq!(img.scan_forbidden(), Some(ForbiddenInsn::Wrpkru));
    }

    #[test]
    fn scan_all_reports_overlapping_decodings() {
        // 0F 0F 05: a syscall hides one byte into the stream.
        let img = CodeImage::from_bytes(vec![0x0F, 0x0F, 0x05]);
        assert_eq!(img.scan_all(), vec![(1, ForbiddenInsn::Syscall)]);
        // clean image: empty report, same verdict as the fast path
        assert!(CodeImage::plain(64).scan_all().is_empty());
        assert!(CodeImage::plain(64).scan_forbidden().is_none());
    }
}

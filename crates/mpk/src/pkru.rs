//! Protection keys and the PKRU register.

use std::fmt;

/// Number of protection keys supported by the hardware (paper §2.2: MPK
/// supports 16 keys of 4 bits each).
pub const NUM_KEYS: usize = 16;

/// A 4-bit memory protection key, assigned per page.
///
/// Key 0 is conventionally reserved for the trusted monitor (the kernel of
/// CubicleOS), mirroring how Linux reserves pkey 0 for "default" memory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProtKey(u8);

impl ProtKey {
    /// The monitor's key: the trusted CubicleOS runtime tags its own pages
    /// (and trampoline code thunks) with this key.
    pub const MONITOR: ProtKey = ProtKey(0);

    /// Creates a protection key, returning `None` when `raw >= 16`.
    pub const fn new(raw: u8) -> Option<ProtKey> {
        if raw < NUM_KEYS as u8 {
            Some(ProtKey(raw))
        } else {
            None
        }
    }

    /// Returns the raw 4-bit key value.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Iterates over all 16 keys.
    pub fn all() -> impl Iterator<Item = ProtKey> {
        (0..NUM_KEYS as u8).map(ProtKey)
    }
}

impl fmt::Display for ProtKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pk{}", self.0)
    }
}

/// Access rights the current thread holds on one protection key.
///
/// Encodes MPK's two per-key bits: *access disable* (AD) and *write
/// disable* (WD).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum KeyRights {
    /// AD = 1: neither reads nor writes are allowed.
    #[default]
    None,
    /// AD = 0, WD = 1: reads allowed, writes disallowed.
    ReadOnly,
    /// AD = 0, WD = 0: reads and writes allowed.
    ReadWrite,
}

impl KeyRights {
    /// Returns `true` if reads are permitted.
    pub const fn can_read(self) -> bool {
        !matches!(self, KeyRights::None)
    }

    /// Returns `true` if writes are permitted.
    pub const fn can_write(self) -> bool {
        matches!(self, KeyRights::ReadWrite)
    }
}

/// The per-thread PKRU register: 2 bits of rights for each of the 16 keys.
///
/// `Pkru` is a plain value — writing it to the machine models the
/// unprivileged `wrpkru` instruction (~20 cycles, paper §2.2).
///
/// # Example
///
/// ```
/// use cubicle_mpk::{Pkru, ProtKey, KeyRights};
///
/// let k3 = ProtKey::new(3).unwrap();
/// let pkru = Pkru::deny_all().allowing(k3).allowing_read(ProtKey::new(5).unwrap());
/// assert_eq!(pkru.rights(k3), KeyRights::ReadWrite);
/// assert_eq!(pkru.rights(ProtKey::new(5).unwrap()), KeyRights::ReadOnly);
/// assert_eq!(pkru.rights(ProtKey::new(7).unwrap()), KeyRights::None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pkru(u32);

impl Pkru {
    const AD: u32 = 0b01;
    const WD: u32 = 0b10;

    /// A PKRU value that denies access to every key.
    pub const fn deny_all() -> Pkru {
        Pkru(0x5555_5555) // AD bit set for all 16 keys
    }

    /// A PKRU value that grants read/write on every key.
    ///
    /// This is what the trusted monitor runs with (it has access to all
    /// cubicles' window descriptor arrays, paper §5.3).
    pub const fn allow_all() -> Pkru {
        Pkru(0)
    }

    /// Returns the raw 32-bit register value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Creates a PKRU from a raw 32-bit register value.
    pub const fn from_raw(raw: u32) -> Pkru {
        Pkru(raw)
    }

    /// Returns the rights this register grants on `key`.
    pub const fn rights(self, key: ProtKey) -> KeyRights {
        let bits = (self.0 >> (key.raw() * 2)) & 0b11;
        if bits & Self::AD != 0 {
            KeyRights::None
        } else if bits & Self::WD != 0 {
            KeyRights::ReadOnly
        } else {
            KeyRights::ReadWrite
        }
    }

    /// Returns a copy of this register with `rights` set for `key`.
    pub const fn with(self, key: ProtKey, rights: KeyRights) -> Pkru {
        let shift = key.raw() * 2;
        let cleared = self.0 & !(0b11 << shift);
        let bits = match rights {
            KeyRights::None => Self::AD,
            KeyRights::ReadOnly => Self::WD,
            KeyRights::ReadWrite => 0,
        };
        Pkru(cleared | (bits << shift))
    }

    /// Returns a copy with read/write access granted on `key`.
    pub const fn allowing(self, key: ProtKey) -> Pkru {
        self.with(key, KeyRights::ReadWrite)
    }

    /// Returns a copy with read-only access granted on `key`.
    pub const fn allowing_read(self, key: ProtKey) -> Pkru {
        self.with(key, KeyRights::ReadOnly)
    }

    /// Returns a copy with all access revoked on `key`.
    pub const fn denying(self, key: ProtKey) -> Pkru {
        self.with(key, KeyRights::None)
    }
}

impl Default for Pkru {
    /// The default register denies everything — components start with no
    /// rights until the monitor grants them.
    fn default() -> Self {
        Pkru::deny_all()
    }
}

impl fmt::Debug for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pkru({:#010x})", self.0)
    }
}

impl fmt::Display for Pkru {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "[")?;
        for key in ProtKey::all() {
            let r = self.rights(key);
            if r != KeyRights::None {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                let tag = if r.can_write() { "rw" } else { "r" };
                write!(f, "{key}:{tag}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bounds() {
        assert!(ProtKey::new(0).is_some());
        assert!(ProtKey::new(15).is_some());
        assert!(ProtKey::new(16).is_none());
        assert_eq!(ProtKey::all().count(), NUM_KEYS);
    }

    #[test]
    fn deny_all_denies_everything() {
        let p = Pkru::deny_all();
        for key in ProtKey::all() {
            assert_eq!(p.rights(key), KeyRights::None);
        }
    }

    #[test]
    fn allow_all_allows_everything() {
        let p = Pkru::allow_all();
        for key in ProtKey::all() {
            assert_eq!(p.rights(key), KeyRights::ReadWrite);
        }
    }

    #[test]
    fn with_is_isolated_per_key() {
        let k2 = ProtKey::new(2).unwrap();
        let k9 = ProtKey::new(9).unwrap();
        let p = Pkru::deny_all().allowing(k2).allowing_read(k9);
        assert_eq!(p.rights(k2), KeyRights::ReadWrite);
        assert_eq!(p.rights(k9), KeyRights::ReadOnly);
        for key in ProtKey::all() {
            if key != k2 && key != k9 {
                assert_eq!(p.rights(key), KeyRights::None);
            }
        }
    }

    #[test]
    fn rights_transitions_round_trip() {
        let k = ProtKey::new(7).unwrap();
        for rights in [KeyRights::None, KeyRights::ReadOnly, KeyRights::ReadWrite] {
            let p = Pkru::allow_all().with(k, rights);
            assert_eq!(p.rights(k), rights);
        }
    }

    #[test]
    fn denying_revokes() {
        let k = ProtKey::new(4).unwrap();
        let p = Pkru::allow_all().denying(k);
        assert_eq!(p.rights(k), KeyRights::None);
        assert!(!p.rights(k).can_read());
        assert!(!p.rights(k).can_write());
    }

    #[test]
    fn readonly_semantics() {
        assert!(KeyRights::ReadOnly.can_read());
        assert!(!KeyRights::ReadOnly.can_write());
        assert!(KeyRights::ReadWrite.can_write());
        assert!(!KeyRights::None.can_read());
    }

    #[test]
    fn raw_round_trip() {
        let k = ProtKey::new(1).unwrap();
        let p = Pkru::deny_all().allowing(k);
        assert_eq!(Pkru::from_raw(p.raw()), p);
    }

    #[test]
    fn display_compact() {
        let k1 = ProtKey::new(1).unwrap();
        let p = Pkru::deny_all().allowing(k1);
        assert_eq!(format!("{p}"), "[pk1:rw]");
        assert_eq!(format!("{}", Pkru::deny_all()), "[]");
    }

    #[test]
    fn default_denies() {
        assert_eq!(Pkru::default(), Pkru::deny_all());
    }
}

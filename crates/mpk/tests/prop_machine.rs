//! Property tests of the machine model: the PKRU check is exactly the
//! MPK specification, and memory behaves like memory.

use cubicle_mpk::{
    pages_covering, KeyRights, Machine, PageFlags, Pkru, ProtKey, VAddr, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_rights() -> impl Strategy<Value = KeyRights> {
    prop_oneof![Just(KeyRights::None), Just(KeyRights::ReadOnly), Just(KeyRights::ReadWrite)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pkru_bits_are_independent(assignments in proptest::collection::vec((0u8..16, arb_rights()), 0..40)) {
        let mut model: HashMap<u8, KeyRights> = HashMap::new();
        let mut pkru = Pkru::deny_all();
        for (key, rights) in assignments {
            pkru = pkru.with(ProtKey::new(key).unwrap(), rights);
            model.insert(key, rights);
        }
        for k in 0..16u8 {
            let expect = model.get(&k).copied().unwrap_or(KeyRights::None);
            prop_assert_eq!(pkru.rights(ProtKey::new(k).unwrap()), expect);
        }
    }

    #[test]
    fn access_allowed_iff_flags_and_key_allow(
        key in 0u8..16,
        allowed in arb_rights(),
        write in any::<bool>(),
        readable in any::<bool>(),
        writable in any::<bool>(),
    ) {
        let mut m = Machine::new();
        let addr = VAddr::new(0x4000);
        let flags = match (readable, writable) {
            (true, true) => PageFlags::rw(),
            (true, false) => PageFlags::r(),
            // the machine model has no write-only pages: fall back to rw
            (false, true) => PageFlags::rw(),
            (false, false) => PageFlags::x(),
        };
        let readable = flags.can_read();
        let writable = flags.can_write();
        let k = ProtKey::new(key).unwrap();
        m.map_page(addr, k, flags);
        m.set_pkru(Pkru::deny_all().with(k, allowed));
        let ok = if write {
            m.write(addr, &[1]).is_ok()
        } else {
            m.read(addr, &mut [0]).is_ok()
        };
        let expect = if write {
            writable && allowed.can_write()
        } else {
            readable && allowed.can_read()
        };
        prop_assert_eq!(ok, expect, "write={} flags={:?} rights={:?}", write, flags, allowed);
    }

    #[test]
    fn memory_behaves_like_memory(
        writes in proptest::collection::vec((0usize..3 * PAGE_SIZE - 64, proptest::collection::vec(any::<u8>(), 1..64)), 1..30)
    ) {
        let mut m = Machine::new();
        let base = VAddr::new(0x10000);
        for i in 0..3 {
            m.map_page(base + i * PAGE_SIZE, ProtKey::new(1).unwrap(), PageFlags::rw());
        }
        m.set_pkru(Pkru::allow_all());
        let mut model = vec![0u8; 3 * PAGE_SIZE];
        for (off, data) in writes {
            m.write(base + off, &data).unwrap();
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut got = vec![0u8; 3 * PAGE_SIZE];
        m.read(base, &mut got).unwrap();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn retagging_never_corrupts_data(
        tags in proptest::collection::vec(0u8..16, 1..20)
    ) {
        let mut m = Machine::new();
        let addr = VAddr::new(0x8000);
        m.map_page(addr, ProtKey::new(0).unwrap(), PageFlags::rw());
        m.set_pkru(Pkru::allow_all());
        let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        m.write(addr, &payload).unwrap();
        for t in tags {
            m.set_page_key(addr, ProtKey::new(t).unwrap()).unwrap();
        }
        let mut back = vec![0u8; PAGE_SIZE];
        m.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn pages_covering_is_exact(start in 0u64..1_000_000, len in 0usize..20_000) {
        let pages: Vec<_> = pages_covering(VAddr::new(start), len).collect();
        if len == 0 {
            prop_assert!(pages.is_empty());
        } else {
            let first = start / PAGE_SIZE as u64;
            let last = (start + len as u64 - 1) / PAGE_SIZE as u64;
            prop_assert_eq!(pages.len() as u64, last - first + 1);
            prop_assert_eq!(pages.first().unwrap().0, first);
            prop_assert_eq!(pages.last().unwrap().0, last);
        }
    }
}

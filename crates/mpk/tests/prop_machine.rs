//! Randomized tests of the machine model: the PKRU check is exactly the
//! MPK specification, and memory behaves like memory.
//!
//! Formerly proptest-based; rewritten over the in-tree deterministic
//! [`Rng64`] so the suite builds fully offline. Every case is seeded, so
//! a failure message's case number reproduces the exact inputs.

use cubicle_mpk::rng::Rng64;
use cubicle_mpk::{pages_covering, KeyRights, Machine, PageFlags, Pkru, ProtKey, VAddr, PAGE_SIZE};
use std::collections::HashMap;

fn rand_rights(rng: &mut Rng64) -> KeyRights {
    *rng.pick(&[KeyRights::None, KeyRights::ReadOnly, KeyRights::ReadWrite])
}

#[test]
fn pkru_bits_are_independent() {
    for case in 0..128u64 {
        let mut rng = Rng64::new(0x9B1D_0000 + case);
        let mut model: HashMap<u8, KeyRights> = HashMap::new();
        let mut pkru = Pkru::deny_all();
        for _ in 0..rng.range_usize(0, 40) {
            let key = rng.range_u64(0, 16) as u8;
            let rights = rand_rights(&mut rng);
            pkru = pkru.with(ProtKey::new(key).unwrap(), rights);
            model.insert(key, rights);
        }
        for k in 0..16u8 {
            let expect = model.get(&k).copied().unwrap_or(KeyRights::None);
            assert_eq!(
                pkru.rights(ProtKey::new(k).unwrap()),
                expect,
                "case {case}, key {k}"
            );
        }
    }
}

#[test]
fn access_allowed_iff_flags_and_key_allow() {
    for case in 0..128u64 {
        let mut rng = Rng64::new(0xACCE_0000 + case);
        let key = rng.range_u64(0, 16) as u8;
        let allowed = rand_rights(&mut rng);
        let write = rng.flip();
        let flags = match (rng.flip(), rng.flip()) {
            (true, true) => PageFlags::rw(),
            (true, false) => PageFlags::r(),
            // the machine model has no write-only pages: fall back to rw
            (false, true) => PageFlags::rw(),
            (false, false) => PageFlags::x(),
        };
        let readable = flags.can_read();
        let writable = flags.can_write();

        let mut m = Machine::new();
        let addr = VAddr::new(0x4000);
        let k = ProtKey::new(key).unwrap();
        m.map_page(addr, k, flags);
        m.set_pkru(Pkru::deny_all().with(k, allowed));
        let ok = if write {
            m.write(addr, &[1]).is_ok()
        } else {
            m.read(addr, &mut [0]).is_ok()
        };
        let expect = if write {
            writable && allowed.can_write()
        } else {
            readable && allowed.can_read()
        };
        assert_eq!(
            ok, expect,
            "case {case}: write={write} flags={flags:?} rights={allowed:?}"
        );
    }
}

#[test]
fn memory_behaves_like_memory() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x3E30_0000 + case);
        let mut m = Machine::new();
        let base = VAddr::new(0x10000);
        for i in 0..3 {
            m.map_page(
                base + i * PAGE_SIZE,
                ProtKey::new(1).unwrap(),
                PageFlags::rw(),
            );
        }
        m.set_pkru(Pkru::allow_all());
        let mut model = vec![0u8; 3 * PAGE_SIZE];
        for _ in 0..rng.range_usize(1, 30) {
            let off = rng.range_usize(0, 3 * PAGE_SIZE - 64);
            let len = rng.range_usize(1, 64);
            let data = rng.bytes(len);
            m.write(base + off, &data).unwrap();
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut got = vec![0u8; 3 * PAGE_SIZE];
        m.read(base, &mut got).unwrap();
        assert_eq!(got, model, "case {case}");
    }
}

#[test]
fn retagging_never_corrupts_data() {
    for case in 0..32u64 {
        let mut rng = Rng64::new(0x4E7A_0000 + case);
        let mut m = Machine::new();
        let addr = VAddr::new(0x8000);
        m.map_page(addr, ProtKey::new(0).unwrap(), PageFlags::rw());
        m.set_pkru(Pkru::allow_all());
        let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        m.write(addr, &payload).unwrap();
        for _ in 0..rng.range_usize(1, 20) {
            let t = rng.range_u64(0, 16) as u8;
            m.set_page_key(addr, ProtKey::new(t).unwrap()).unwrap();
        }
        let mut back = vec![0u8; PAGE_SIZE];
        m.read(addr, &mut back).unwrap();
        assert_eq!(back, payload, "case {case}");
    }
}

#[test]
fn pages_covering_is_exact() {
    let mut rng = Rng64::new(0xC07E_0001);
    for case in 0..2_000 {
        let start = rng.range_u64(0, 1_000_000);
        let len = rng.range_usize(0, 20_000);
        let pages: Vec<_> = pages_covering(VAddr::new(start), len).collect();
        if len == 0 {
            assert!(pages.is_empty(), "case {case}");
        } else {
            let first = start / PAGE_SIZE as u64;
            let last = (start + len as u64 - 1) / PAGE_SIZE as u64;
            assert_eq!(pages.len() as u64, last - first + 1, "case {case}");
            assert_eq!(pages.first().unwrap().0, first, "case {case}");
            assert_eq!(pages.last().unwrap().0, last, "case {case}");
        }
    }
}

//! Property test: the software TLB is invisible to the simulated machine.
//!
//! Two machines run the same seeded sequence of page-table mutations,
//! PKRU writes and memory accesses — one with the TLB enabled, one with
//! it disabled (every access takes the full page-table walk). After
//! every single operation the outcomes must agree exactly: success or
//! the same fault at the same address, identical cycle counters,
//! identical simulated event counts. This is the simulator's analogue of
//! "TLB coherence": any missing invalidation (retag, flag change, unmap,
//! chunk-index shift) shows up here as a divergence, with the case seed
//! reproducing the exact op sequence.

use cubicle_mpk::rng::Rng64;
use cubicle_mpk::{Machine, PageFlags, Pkru, ProtKey, VAddr, PAGE_SIZE};

/// Candidate pages: a dense low run, a run straddling the simulator's
/// 512-page chunk boundary, and a far-away region (distinct chunk whose
/// creation/removal shifts chunk indices under the TLB).
const PAGES: [u64; 12] = [
    1,
    2,
    3,
    4,
    510,
    511,
    512,
    513,
    514,
    1 << 20,
    (1 << 20) + 1,
    (1 << 20) + 2,
];

fn rand_flags(rng: &mut Rng64) -> PageFlags {
    *rng.pick(&[
        PageFlags::rw(),
        PageFlags::r(),
        PageFlags::rx(),
        PageFlags::x(),
    ])
}

fn rand_pkru(rng: &mut Rng64) -> Pkru {
    let mut pkru = Pkru::deny_all();
    for k in 0..16u8 {
        let key = ProtKey::new(k).unwrap();
        match rng.range_u64(0, 3) {
            0 => {}
            1 => pkru = pkru.allowing_read(key),
            _ => pkru = pkru.allowing(key),
        }
    }
    pkru
}

/// Drives one op on a machine, returning a canonical rendering of the
/// outcome (so faults compare by address, access kind and fault kind).
fn step(m: &mut Machine, op: &Op) -> String {
    match op {
        Op::Map(addr, key, flags) => {
            if m.page_entry(*addr).is_none() {
                m.map_page(*addr, *key, *flags);
                "mapped".into()
            } else {
                "already".into()
            }
        }
        Op::Unmap(addr) => format!("{:?}", m.unmap_page(*addr)),
        Op::Retag(addr, key) => format!("{:?}", m.set_page_key(*addr, *key)),
        Op::Reflag(addr, flags) => format!("{:?}", m.set_page_flags(*addr, *flags)),
        Op::WrPkru(pkru) => {
            m.set_pkru(*pkru);
            "pkru".into()
        }
        Op::ExecObeys(on) => {
            m.set_exec_obeys_pkru(*on);
            "exec".into()
        }
        Op::Read(addr, len) => {
            let mut buf = vec![0u8; *len];
            match m.read(*addr, &mut buf) {
                Ok(()) => format!("read {buf:?}"),
                Err(f) => format!("fault {:?} {:?} {:?}", f.addr, f.access, f.kind),
            }
        }
        Op::Write(addr, data) => match m.write(*addr, data) {
            Ok(()) => "wrote".into(),
            Err(f) => format!("fault {:?} {:?} {:?}", f.addr, f.access, f.kind),
        },
        Op::ReadAppend(addr, len) => {
            let mut out = vec![0xCC];
            match m.read_append(*addr, *len, &mut out) {
                Ok(()) => format!("append {out:?}"),
                Err(f) => format!("fault {:?} {:?} {:?}", f.addr, f.access, f.kind),
            }
        }
        Op::Fetch(addr) => match m.fetch_check(*addr) {
            Ok(()) => "fetch".into(),
            Err(f) => format!("fault {:?} {:?} {:?}", f.addr, f.access, f.kind),
        },
    }
}

enum Op {
    Map(VAddr, ProtKey, PageFlags),
    Unmap(VAddr),
    Retag(VAddr, ProtKey),
    Reflag(VAddr, PageFlags),
    WrPkru(Pkru),
    ExecObeys(bool),
    Read(VAddr, usize),
    Write(VAddr, Vec<u8>),
    ReadAppend(VAddr, usize),
    Fetch(VAddr),
}

fn rand_op(rng: &mut Rng64) -> Op {
    let page = *rng.pick(&PAGES);
    let base = VAddr::new(page * PAGE_SIZE as u64);
    // accesses start anywhere in the page and may straddle into the next
    let addr = base + rng.range_usize(0, PAGE_SIZE);
    let len = rng.range_usize(0, 2 * PAGE_SIZE);
    match rng.range_u64(0, 100) {
        0..=9 => Op::Map(
            base,
            ProtKey::new(rng.range_u64(0, 16) as u8).unwrap(),
            rand_flags(rng),
        ),
        10..=14 => Op::Unmap(base),
        15..=24 => Op::Retag(base, ProtKey::new(rng.range_u64(0, 16) as u8).unwrap()),
        25..=29 => Op::Reflag(base, rand_flags(rng)),
        30..=44 => Op::WrPkru(rand_pkru(rng)),
        45..=46 => Op::ExecObeys(rng.flip()),
        47..=66 => Op::Read(addr, len),
        67..=86 => Op::Write(addr, rng.bytes(len)),
        87..=94 => Op::ReadAppend(addr, len),
        _ => Op::Fetch(addr),
    }
}

#[test]
fn tlb_on_and_off_agree_on_every_outcome() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0x71B0_0000 + case);
        let mut with_tlb = Machine::new();
        let mut without = Machine::new();
        without.set_tlb_enabled(false);
        assert!(with_tlb.tlb_enabled() && !without.tlb_enabled());
        for i in 0..300 {
            let op = rand_op(&mut rng);
            let a = step(&mut with_tlb, &op);
            let b = step(&mut without, &op);
            assert_eq!(a, b, "case {case}, op {i}: outcomes diverged");
            assert_eq!(
                with_tlb.now(),
                without.now(),
                "case {case}, op {i}: charged cycles diverged"
            );
        }
        // Simulated counters must match field by field; the TLB counters
        // are host-side and differ by construction.
        let (sa, sb) = (with_tlb.stats(), without.stats());
        assert_eq!(
            (sa.reads, sa.writes, sa.bytes_read, sa.bytes_written),
            (sb.reads, sb.writes, sb.bytes_read, sb.bytes_written),
            "case {case}: access counters diverged"
        );
        assert_eq!(
            (sa.wrpkru, sa.retags, sa.faults),
            (sb.wrpkru, sb.retags, sb.faults),
            "case {case}: event counters diverged"
        );
        assert!(sa.tlb_hits > 0, "case {case}: workload never hit the TLB");
        assert_eq!(
            (sb.tlb_hits, sb.tlb_misses),
            (0, 0),
            "case {case}: disabled TLB must not count"
        );
    }
}

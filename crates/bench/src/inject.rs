//! Deterministic fault injection for the containment campaign.
//!
//! A seeded [`Rng64`] drives a storm of faults — wild reads and writes,
//! premature window closes, out-of-window pointer passing, images
//! carrying forbidden instructions, heap exhaustion mid-call — against a
//! three-cubicle micro deployment, and checks after every injection that
//! the blast radius stayed inside the offender: the expected cubicle
//! (and only it) is quarantined, `System::audit()` is clean, and the
//! surviving cubicles still complete cross-calls. Every quarantined
//! offender is then microrebooted and the checks repeat.
//!
//! The same seed must reproduce the same storm bit-for-bit: the report
//! carries an FNV digest over the kernel trace so `faultstorm` can
//! assert replay determinism.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, Errno, IsolationMode, System,
    Value,
};
use cubicle_mpk::insn::{CodeImage, Insn};
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::VAddr;
use cubicle_ramfs::{install_journal, mount_at, Ramfs};
use cubicle_sqldb::storage::{CubicleEnv, StorageEnv, StorageFile};
use cubicle_sqldb::{Database, SqlError, SqlValue};
use cubicle_ukbase::boot_base;
use cubicle_vfs::{Vfs, VfsPort, VfsProxy};
use std::cell::RefCell;
use std::rc::Rc;

/// An address far above anything the monitor maps in these runs.
const WILD: VAddr = VAddr::new(0x0FFF_0000);

/// Cubicles in the micro deployment.
const POP: usize = 3;
const NAMES: [&str; POP] = ["APP", "SVC", "STORE"];

/// One injected fault shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The target reads unmapped memory in its own frame.
    WildRead,
    /// The target writes unmapped memory in its own frame.
    WildWrite,
    /// The caller opens a window, closes it, then cross-calls an entry
    /// that dereferences the no-longer-shared buffer.
    PrematureClose,
    /// The caller passes a pointer to its memory without ever opening a
    /// window for it.
    BadPointer,
    /// A component image carrying a `wrpkru` reaches the loader.
    ForbiddenImage,
    /// A callee exhausts its heap quota mid-call.
    HeapExhaust,
}

impl FaultKind {
    /// All kinds, in storm-mix order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::WildRead,
        FaultKind::WildWrite,
        FaultKind::PrematureClose,
        FaultKind::BadPointer,
        FaultKind::ForbiddenImage,
        FaultKind::HeapExhaust,
    ];
}

struct Node;
impl_component!(Node);

/// Builds the image for micro-deployment cubicle `i`: a ping entry for
/// liveness probes plus entries the injector drives into each fault.
fn node_image(i: usize) -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new(NAMES[i], CodeImage::plain(256))
        .export(
            b.export(&format!("long ping{i}(void)")).unwrap(),
            |_sys, _this, _| Ok(Value::I64(1)),
        )
        .export(
            b.export(&format!("long deref{i}(const void *p)")).unwrap(),
            |sys, _this, args| {
                sys.read_vec(args[0].as_ptr(), 8)?;
                Ok(Value::I64(0))
            },
        )
        .export(
            b.export(&format!("long hog{i}(uint64_t bytes)")).unwrap(),
            |sys, _this, args| {
                sys.heap_alloc(args[0].as_u64() as usize, 8)?;
                Ok(Value::I64(0))
            },
        )
}

/// Outcome of one campaign run.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Seed the storm was drawn from.
    pub seed: u64,
    /// Faults injected.
    pub injected: u64,
    /// Faults whose blast radius stayed inside the offender.
    pub contained: u64,
    /// Faults that escaped (any failed check). Must be zero.
    pub uncontained: u64,
    /// Quarantines performed by the kernel during the storm.
    pub quarantines: u64,
    /// Microreboots performed to bring offenders back.
    pub restarts: u64,
    /// FNV-1a digest over the kernel trace (replay-determinism witness).
    pub digest: u64,
    /// Human-readable notes for every escaped fault.
    pub escapes: Vec<String>,
}

/// FNV-1a over a byte slice.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one seeded storm of `injections` faults and reports containment.
///
/// # Panics
///
/// Panics when the micro deployment itself fails to boot — that is a
/// harness bug, not a containment escape.
pub fn run_campaign(seed: u64, injections: usize) -> CampaignReport {
    let mut rng = Rng64::new(seed);
    let mut sys = System::new(IsolationMode::Full);
    sys.set_fault_containment(true);
    sys.enable_tracing(1 << 16);

    let mut ids: Vec<CubicleId> = Vec::new();
    for i in 0..POP {
        ids.push(sys.load(node_image(i), Box::new(Node)).unwrap().cid);
    }

    let mut report = CampaignReport {
        seed,
        ..CampaignReport::default()
    };

    for step in 0..injections {
        let kind = FaultKind::ALL[rng.range_usize(0, FaultKind::ALL.len())];
        let t = rng.range_usize(0, POP);
        let c = (t + 1 + rng.range_usize(0, POP - 1)) % POP; // c != t
        report.injected += 1;

        // Fire the fault. `offender` is who the kernel must quarantine;
        // `None` means the fault is contained without a quarantine
        // (resource exhaustion, loader rejection).
        let (offender, fired_ok) = match kind {
            FaultKind::WildRead => {
                let r = sys.run_in_cubicle(ids[t], |sys| sys.read_vec(WILD, 8));
                (Some(t), r.is_err())
            }
            FaultKind::WildWrite => {
                let r = sys.run_in_cubicle(ids[t], |sys| sys.write(WILD, b"stray"));
                (Some(t), r.is_err())
            }
            FaultKind::PrematureClose => {
                let peer = ids[c];
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    let buf = sys.heap_alloc(64, 8)?;
                    let wid = sys.window_init();
                    sys.window_add(wid, buf, 64)?;
                    sys.window_open(wid, peer)?;
                    sys.window_close(wid, peer)?; // revoked before use
                    sys.call(&format!("deref{c}"), &[Value::Ptr(buf)])
                });
                (Some(t), r.is_err())
            }
            FaultKind::BadPointer => {
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    let buf = sys.heap_alloc(64, 8)?;
                    sys.call(&format!("deref{c}"), &[Value::Ptr(buf)])
                });
                (Some(t), r.is_err())
            }
            FaultKind::ForbiddenImage => {
                let bad = CodeImage::from_insns(&[
                    Insn::Plain { len: 32 },
                    Insn::Wrpkru,
                    Insn::Plain { len: 8 },
                ]);
                let r = sys.load(ComponentImage::new("EVIL", bad), Box::new(Node));
                (
                    None,
                    matches!(r, Err(CubicleError::ForbiddenInstruction(_))),
                )
            }
            FaultKind::HeapExhaust => {
                sys.set_heap_limit(ids[c], Some(8)).unwrap();
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    sys.call(&format!("hog{c}"), &[Value::U64(64 * 1024 * 1024)])
                });
                sys.set_heap_limit(ids[c], None).unwrap();
                // Contained as -ENOMEM at the healthy caller; no
                // quarantine — exhaustion is not an isolation breach.
                (None, matches!(r.map(|v| v.as_i64()), Ok(-12)))
            }
        };

        // Verify the blast radius.
        let escape = |why: String, report: &mut CampaignReport| {
            report.uncontained += 1;
            report
                .escapes
                .push(format!("seed {seed:#x} step {step} {kind:?}: {why}"));
        };
        let mut ok = true;
        if !fired_ok {
            escape("fault did not fire as expected".into(), &mut report);
            ok = false;
        }
        for (i, id) in ids.iter().enumerate() {
            let expect = offender == Some(i);
            if sys.cubicle(*id).is_quarantined() != expect {
                escape(
                    format!("{} quarantined={}, expected {expect}", NAMES[i], !expect),
                    &mut report,
                );
                ok = false;
            }
        }
        let audit = sys.audit();
        if !audit.is_clean() {
            escape(format!("audit dirty after fault: {audit}"), &mut report);
            ok = false;
        }
        // Survivors keep serving.
        let healthy: Vec<usize> = (0..POP)
            .filter(|&i| !sys.cubicle(ids[i]).is_quarantined())
            .collect();
        if healthy.len() >= 2 {
            let (a, b) = (healthy[0], healthy[healthy.len() - 1]);
            let r = sys.run_in_cubicle(ids[a], |sys| sys.call(&format!("ping{b}"), &[]));
            if r.map(|v| v.as_i64()) != Ok(1) {
                escape("healthy pair stopped serving".into(), &mut report);
                ok = false;
            }
        }

        // Bring the offender back and re-verify.
        if let Some(i) = offender {
            if sys.cubicle(ids[i]).is_quarantined() {
                sys.restart(ids[i]).unwrap();
                let audit = sys.audit();
                if !audit.is_clean() {
                    escape(format!("audit dirty after restart: {audit}"), &mut report);
                    ok = false;
                }
                let r = sys
                    .run_in_cubicle(ids[(i + 1) % POP], |sys| sys.call(&format!("ping{i}"), &[]));
                if r.map(|v| v.as_i64()) != Ok(1) {
                    escape("offender not serving after microreboot".into(), &mut report);
                    ok = false;
                }
            }
        }
        if ok {
            report.contained += 1;
        }
    }

    let stats = sys.stats();
    report.quarantines = stats.quarantines;
    report.restarts = stats.restarts;

    // Digest the whole trace: same seed ⇒ same storm ⇒ same digest.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    if let Some(trace) = sys.trace() {
        for rec in trace.records() {
            h = fnv1a(h, format!("{rec:?}").as_bytes());
        }
    }
    h = fnv1a(h, sys.export_fault_audit().as_bytes());
    report.digest = h;
    report
}

// =========================================================================
// Crashstorm: seeded crash injection on the durability path
// =========================================================================
//
// Where the fault storm above asks "does the blast radius stay inside the
// offender?", the crash storm asks the stronger question of the recovery
// machinery: after a quarantine lands at the *worst possible instant* of
// the commit path, does reboot-and-replay restore exactly the acknowledged
// state? Injection points cover every phase of the sqldb WAL commit path
// (frames written but unsynced, a frame torn mid-write, checkpoint fold
// half-done) plus the RAMFS inode journal's own torn-append window.

/// A commit-path phase the crash storm can land a quarantine in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// WAL frames (and the commit record) written, sync not yet issued.
    PreWalSync,
    /// Mid-way through a WAL frame's bytes — the torn-frame case.
    MidFrame,
    /// Commit durable, checkpoint about to fold its first page back.
    PostCommitPreCheckpoint,
    /// Mid-way through the checkpoint's db-file writes / truncate.
    MidCheckpoint,
    /// Inside a RAMFS journal append, between record bytes and `len`.
    MidRamfsJournalAppend,
}

impl CrashPoint {
    /// All phases, in storm-mix order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::PreWalSync,
        CrashPoint::MidFrame,
        CrashPoint::PostCommitPreCheckpoint,
        CrashPoint::MidCheckpoint,
        CrashPoint::MidRamfsJournalAppend,
    ];
}

/// Which file a storage operation touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FileKind {
    Db,
    Wal,
    Other,
}

fn classify(path: &str) -> FileKind {
    if path.ends_with("-wal") {
        FileKind::Wal
    } else if path.ends_with(".db") {
        FileKind::Db
    } else {
        FileKind::Other
    }
}

/// One mutating storage operation, as observed by [`CrashEnv`].
#[derive(Clone, Copy, Debug)]
enum OpKind {
    Write { len: usize },
    Sync,
    Truncate,
}

/// Shared crash schedule: the observe run records the op trace, the armed
/// run fires a wild access at op `target.0` (after `target.1` bytes of a
/// write have landed — the torn prefix).
#[derive(Default)]
struct CrashPlan {
    ops: u64,
    target: Option<(u64, usize)>,
    fired: bool,
    trace: Vec<(FileKind, OpKind)>,
}

type SharedPlan = Rc<RefCell<CrashPlan>>;

/// [`StorageEnv`] wrapper that counts mutating operations and detonates
/// the armed one mid-flight: the prefix bytes land, then the app touches
/// wild memory and the containment policy quarantines it on the spot.
struct CrashEnv {
    inner: CubicleEnv,
    plan: SharedPlan,
}

struct CrashFile {
    inner: Box<dyn StorageFile>,
    kind: FileKind,
    plan: SharedPlan,
}

impl CrashFile {
    /// Records one mutating op; returns `Some(cut)` when this op is the
    /// armed target (the caller performs the torn prefix, then dies).
    fn tick(&mut self, op: OpKind) -> Option<usize> {
        let mut plan = self.plan.borrow_mut();
        let idx = plan.ops;
        plan.ops += 1;
        plan.trace.push((self.kind, op));
        match plan.target {
            Some((t, cut)) if t == idx => {
                plan.fired = true;
                Some(cut)
            }
            _ => None,
        }
    }

    fn dead(&self) -> bool {
        let plan = self.plan.borrow();
        plan.fired && plan.target.is_some()
    }
}

/// The injected "power failure": a wild read quarantines the calling
/// cubicle (fault containment is on), and the in-flight operation
/// surfaces as an I/O error to the engine.
fn die(sys: &mut System) -> cubicle_sqldb::Result<usize> {
    let _ = sys.read_vec(WILD, 8);
    Err(SqlError::Io(Errno::Efault.neg()))
}

impl StorageFile for CrashFile {
    fn pread(
        &mut self,
        sys: &mut System,
        off: u64,
        buf: &mut [u8],
    ) -> cubicle_sqldb::Result<usize> {
        self.inner.pread(sys, off, buf)
    }

    fn pwrite(&mut self, sys: &mut System, off: u64, data: &[u8]) -> cubicle_sqldb::Result<usize> {
        if self.dead() {
            return Err(SqlError::Io(Errno::Efault.neg()));
        }
        match self.tick(OpKind::Write { len: data.len() }) {
            Some(cut) => {
                if cut > 0 {
                    self.inner.pwrite(sys, off, &data[..cut.min(data.len())])?;
                }
                die(sys)
            }
            None => self.inner.pwrite(sys, off, data),
        }
    }

    fn size(&mut self, sys: &mut System) -> cubicle_sqldb::Result<u64> {
        self.inner.size(sys)
    }

    fn truncate(&mut self, sys: &mut System, len: u64) -> cubicle_sqldb::Result<()> {
        if self.dead() {
            return Err(SqlError::Io(Errno::Efault.neg()));
        }
        match self.tick(OpKind::Truncate) {
            Some(_) => die(sys).map(|_| ()),
            None => self.inner.truncate(sys, len),
        }
    }

    fn sync(&mut self, sys: &mut System) -> cubicle_sqldb::Result<()> {
        if self.dead() {
            return Err(SqlError::Io(Errno::Efault.neg()));
        }
        match self.tick(OpKind::Sync) {
            Some(_) => die(sys).map(|_| ()),
            None => self.inner.sync(sys),
        }
    }

    fn close(&mut self, sys: &mut System) -> cubicle_sqldb::Result<()> {
        self.inner.close(sys)
    }
}

impl StorageEnv for CrashEnv {
    fn open(
        &mut self,
        sys: &mut System,
        path: &str,
    ) -> cubicle_sqldb::Result<Box<dyn StorageFile>> {
        let inner = self.inner.open(sys, path)?;
        Ok(Box::new(CrashFile {
            inner,
            kind: classify(path),
            plan: self.plan.clone(),
        }))
    }

    fn unlink(&mut self, sys: &mut System, path: &str) -> cubicle_sqldb::Result<()> {
        self.inner.unlink(sys, path)
    }

    fn exists(&mut self, sys: &mut System, path: &str) -> cubicle_sqldb::Result<bool> {
        self.inner.exists(sys, path)
    }
}

/// The SQLite-over-cubicles stack the crash storm runs against.
struct SqlStack {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    vfs_cid: CubicleId,
    ramfs_cid: CubicleId,
    ramfs_slot: usize,
}

/// Journal region: 64 pages = 256 KiB; small enough that long storms
/// exercise compaction, large enough that a snapshot always fits.
const STORM_JOURNAL_PAGES: usize = 64;

fn boot_sql_stack() -> SqlStack {
    let mut sys = System::new(IsolationMode::Full);
    let base = boot_base(&mut sys).expect("boot_base");
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .expect("load vfs");
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .expect("load ramfs");
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .expect("ramfs slot");
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").expect("mount");
    install_journal(
        &mut sys,
        vfs_loaded.cid,
        ramfs_loaded.cid,
        ramfs_loaded.slot,
        STORM_JOURNAL_PAGES,
    )
    .expect("install journal");
    let app = sys
        .load(
            ComponentImage::new("SQLITE", CodeImage::plain(4096)).heap_pages(128),
            Box::new(Node),
        )
        .expect("load app");
    sys.mark_boot_complete();
    sys.set_fault_containment(true);
    SqlStack {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).expect("vfs proxy"),
        vfs_cid: vfs_loaded.cid,
        ramfs_cid: ramfs_loaded.cid,
        ramfs_slot: ramfs_loaded.slot,
    }
}

fn open_storm_db(stack: &mut SqlStack, plan: &SharedPlan) -> cubicle_sqldb::Result<Database> {
    let (app, vfs, ramfs) = (stack.app, stack.vfs, stack.ramfs_cid);
    let plan = plan.clone();
    stack.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &[ramfs]).map_err(SqlError::Kernel)?;
        let env = CrashEnv {
            inner: CubicleEnv::new(port),
            plan,
        };
        Database::open_with_cache(sys, Box::new(env), "/storm.db", 16)
    })
}

/// One storm's transaction mix, drawn from the seed.
#[derive(Clone, Debug)]
struct StormWorkload {
    /// Group-commit size.
    group: u32,
    /// Rows per transaction, in execution order.
    txns: Vec<u32>,
    /// `PRAGMA wal_checkpoint` runs after this (1-based) transaction.
    ckpt_after: usize,
}

fn draw_workload(rng: &mut Rng64) -> StormWorkload {
    let n = rng.range_usize(4, 7);
    StormWorkload {
        group: *rng.pick(&[1u32, 4, 8]),
        txns: (0..n).map(|_| rng.range_u64(1, 4) as u32).collect(),
        ckpt_after: rng.range_usize(2, 4),
    }
}

/// What the application observed before the crash. Transactions run in
/// order, so both sets are prefixes and two high-water marks suffice.
#[derive(Clone, Copy, Debug, Default)]
struct StormOutcome {
    /// Highest txn whose COMMIT returned Ok.
    acked_high: usize,
    /// Highest txn covered by a durable WAL sync (group flushed or
    /// checkpointed) at some point the app could observe.
    durable_high: usize,
    /// Highest txn that at least issued its BEGIN.
    attempted: usize,
    /// The schema setup's commit was covered by a sync.
    setup_durable: bool,
    /// A database call failed (the injected crash, in the armed run).
    crashed: bool,
}

fn run_storm_workload(
    sys: &mut System,
    app: CubicleId,
    db: &mut Database,
    w: &StormWorkload,
) -> StormOutcome {
    let mut out = StormOutcome::default();
    let w = w.clone();
    let crashed = sys.run_in_cubicle(app, |sys| {
        db.set_group_commit(w.group);
        if db.execute(sys, "CREATE TABLE t(v INTEGER)").is_err() {
            return true;
        }
        if db.pager_mut().pending_commits() == 0 {
            out.setup_durable = true;
        }
        for (i, rows) in w.txns.iter().enumerate() {
            let i = i + 1;
            out.attempted = i;
            if db.execute(sys, "BEGIN").is_err() {
                return true;
            }
            for j in 0..*rows {
                let stmt = format!("INSERT INTO t VALUES ({})", i as u32 * 1000 + j);
                if db.execute(sys, &stmt).is_err() {
                    return true;
                }
            }
            if db.execute(sys, "COMMIT").is_err() {
                return true;
            }
            out.acked_high = i;
            if db.pager_mut().pending_commits() == 0 {
                out.setup_durable = true;
                out.durable_high = i;
            }
            if i == w.ckpt_after && db.execute(sys, "PRAGMA wal_checkpoint").is_err() {
                return true;
            }
        }
        // Final flush: the observe run ends with everything durable.
        if db.flush(sys).is_err() {
            return true;
        }
        out.setup_durable = true;
        out.durable_high = out.acked_high;
        false
    });
    out.crashed = crashed;
    out
}

/// Picks the armed `(op, cut)` for `point` from the observe-run trace;
/// `None` when the trace offers no such phase (caller falls back).
fn pick_target(
    point: CrashPoint,
    trace: &[(FileKind, OpKind)],
    rng: &mut Rng64,
) -> Option<(u64, usize)> {
    let first_wal_sync = trace
        .iter()
        .position(|(k, op)| *k == FileKind::Wal && matches!(op, OpKind::Sync))?;
    let candidates: Vec<(u64, usize)> = match point {
        CrashPoint::PreWalSync => trace
            .iter()
            .enumerate()
            .filter(|(_, (k, op))| *k == FileKind::Wal && matches!(op, OpKind::Sync))
            .map(|(i, _)| (i as u64, 0))
            .collect(),
        CrashPoint::MidFrame => trace
            .iter()
            .enumerate()
            .filter_map(|(i, (k, op))| match (k, op) {
                (FileKind::Wal, OpKind::Write { len }) if *len > 1 => Some((i as u64, *len)),
                _ => None,
            })
            .map(|(i, len)| (i, 1 + rng.range_usize(0, len - 1)))
            .collect(),
        CrashPoint::PostCommitPreCheckpoint => trace
            .iter()
            .enumerate()
            .skip(first_wal_sync)
            .find(|(_, (k, op))| *k == FileKind::Db && matches!(op, OpKind::Write { .. }))
            .map(|(i, _)| (i as u64, 0))
            .into_iter()
            .collect(),
        CrashPoint::MidCheckpoint => {
            let db_writes: Vec<(u64, usize)> = trace
                .iter()
                .enumerate()
                .skip(first_wal_sync)
                .filter_map(|(i, (k, op))| match (k, op) {
                    (FileKind::Db, OpKind::Write { len }) => Some((i as u64, *len)),
                    (FileKind::Db | FileKind::Wal, OpKind::Truncate) => Some((i as u64, 0)),
                    _ => None,
                })
                .collect();
            // Skip the fold's first page so this phase is disjoint from
            // PostCommitPreCheckpoint.
            db_writes
                .into_iter()
                .skip(1)
                .map(|(i, len)| (i, if len > 1 { rng.range_usize(0, len) } else { 0 }))
                .collect()
        }
        CrashPoint::MidRamfsJournalAppend => Vec::new(), // armed via the journal hook
    };
    if candidates.is_empty() {
        None
    } else {
        Some(*rng.pick(&candidates))
    }
}

/// Outcome of one crash campaign run.
#[derive(Clone, Debug, Default)]
pub struct CrashReport {
    /// Seed the storm was drawn from.
    pub seed: u64,
    /// Crashes injected.
    pub injected: u64,
    /// Injections that recovered with every durability check green.
    pub recovered: u64,
    /// Durability violations (acknowledged data lost, torn transaction,
    /// phantom rows, failed integrity check). Must be zero.
    pub violations: u64,
    /// Kernel quarantines across all storms.
    pub quarantines: u64,
    /// Microreboots across all storms.
    pub restarts: u64,
    /// sqldb WAL replays observed during recovery.
    pub wal_replays: u64,
    /// RAMFS journal replays observed during recovery.
    pub ramfs_journal_replays: u64,
    /// FNV-1a digest over the semantic record (replay-determinism
    /// witness: same seed ⇒ same crashes ⇒ same recovered states).
    pub digest: u64,
    /// Human-readable notes for every violation.
    pub notes: Vec<String>,
}

impl CrashReport {
    fn violation(&mut self, step: usize, point: CrashPoint, why: &str) {
        self.violations += 1;
        self.notes.push(format!(
            "seed {:#x} step {step} {point:?}: {why}",
            self.seed
        ));
    }
}

/// Verifies the durability contract against the recovered database.
///
/// Rules (transactions run strictly in order, WAL replay is a prefix):
/// 1. every durable (synced) transaction is present in full;
/// 2. the present set is a gap-free prefix `1..=m` with
///    `durable_high <= m <= attempted` — acknowledged-but-unsynced tail
///    commits may be lost, but only from the end;
/// 3. no transaction is ever partially present (torn);
/// 4. `PRAGMA integrity_check` reports ok.
fn verify_recovery(
    sys: &mut System,
    app: CubicleId,
    db: &mut Database,
    w: &StormWorkload,
    seen: StormOutcome,
) -> std::result::Result<u64, String> {
    let w = w.clone();
    sys.run_in_cubicle(app, move |sys| {
        let rows = match db.query(sys, "SELECT v FROM t ORDER BY v") {
            Ok(rows) => rows,
            Err(e) => {
                if seen.setup_durable || seen.durable_high > 0 {
                    return Err(format!("durable schema lost: {e}"));
                }
                return Ok(0); // nothing was durable; an empty db is legal
            }
        };
        let present: Vec<i64> = rows
            .iter()
            .filter_map(|r| match r.first() {
                Some(SqlValue::Integer(v)) => Some(*v),
                _ => None,
            })
            .collect();
        let mut high = 0usize;
        for (i, rows_i) in w.txns.iter().enumerate() {
            let i = i + 1;
            let expect: Vec<i64> = (0..*rows_i)
                .map(|j| i64::from(i as u32 * 1000 + j))
                .collect();
            let got: Vec<i64> = present
                .iter()
                .copied()
                .filter(|v| (*v / 1000) as usize == i)
                .collect();
            if got == expect {
                if high != i - 1 {
                    return Err(format!("gap in replayed prefix before txn {i}"));
                }
                high = i;
            } else if !got.is_empty() {
                return Err(format!(
                    "torn txn {i}: {} of {} rows present",
                    got.len(),
                    expect.len()
                ));
            }
        }
        if high < seen.durable_high {
            return Err(format!(
                "durable txns lost: synced through {}, recovered through {high}",
                seen.durable_high
            ));
        }
        if high > seen.attempted {
            return Err(format!("phantom txn: recovered through {high}"));
        }
        match db.query(sys, "PRAGMA integrity_check") {
            Ok(check)
                if check.first().and_then(|r| r.first()) == Some(&SqlValue::Text("ok".into())) => {}
            Ok(check) => return Err(format!("integrity check failed: {check:?}")),
            Err(e) => return Err(format!("integrity check errored: {e}")),
        }
        Ok(high as u64)
    })
}

/// Runs one seeded storm of `injections` commit-path crashes, each
/// followed by microreboot + replay, and reports durability violations.
///
/// # Panics
///
/// Panics when the deployment itself fails to boot or a quarantined
/// cubicle refuses to restart — harness bugs, not durability violations.
pub fn run_crash_campaign(seed: u64, injections: usize) -> CrashReport {
    let mut rng = Rng64::new(seed);
    let mut report = CrashReport {
        seed,
        ..CrashReport::default()
    };
    let mut digest = 0xCBF2_9CE4_8422_2325u64;

    for step in 0..injections {
        let w = draw_workload(&mut rng);
        let point = CrashPoint::ALL[rng.range_usize(0, CrashPoint::ALL.len())];

        // Observe run: same stack, same workload, no crash — yields the
        // op trace the armed run's target is drawn from.
        let plan: SharedPlan = Rc::new(RefCell::new(CrashPlan::default()));
        let mut stack = boot_sql_stack();
        let mut db = open_storm_db(&mut stack, &plan).expect("observe open");
        let observed = run_storm_workload(&mut stack.sys, stack.app, &mut db, &w);
        assert!(!observed.crashed, "observe run must not crash");
        let journal_appends = stack
            .sys
            .with_component_mut::<Ramfs, _>(stack.ramfs_slot, |fs, _| {
                fs.journal().map_or(0, |j| j.appends)
            })
            .expect("ramfs slot");
        let trace = std::mem::take(&mut plan.borrow_mut().trace);
        drop(db);
        drop(stack);

        // Arm. A phase the trace does not offer falls back through the
        // mix so every injection still lands somewhere real.
        let mut point = point;
        let mut target = None;
        if point != CrashPoint::MidRamfsJournalAppend {
            for shift in 0..CrashPoint::ALL.len() {
                let p = CrashPoint::ALL[(CrashPoint::ALL
                    .iter()
                    .position(|q| *q == point)
                    .expect("in ALL")
                    + shift)
                    % CrashPoint::ALL.len()];
                if p == CrashPoint::MidRamfsJournalAppend {
                    point = p;
                    break;
                }
                if let Some(t) = pick_target(p, &trace, &mut rng) {
                    point = p;
                    target = Some(t);
                    break;
                }
            }
        }
        report.injected += 1;

        // Armed run: identical stack + workload, crash scheduled.
        let plan: SharedPlan = Rc::new(RefCell::new(CrashPlan {
            target,
            ..CrashPlan::default()
        }));
        let mut stack = boot_sql_stack();
        if point == CrashPoint::MidRamfsJournalAppend {
            let k = rng.range_u64(0, journal_appends.max(1));
            stack
                .sys
                .with_component_mut::<Ramfs, _>(stack.ramfs_slot, |fs, _| {
                    fs.set_journal_crash_after(Some(k));
                })
                .expect("ramfs slot");
        }
        let seen = match open_storm_db(&mut stack, &plan) {
            Ok(mut db) => {
                let seen = run_storm_workload(&mut stack.sys, stack.app, &mut db, &w);
                drop(db);
                seen
            }
            Err(_) => StormOutcome {
                crashed: true,
                ..StormOutcome::default()
            },
        };
        if !seen.crashed {
            report.violation(step, point, "armed crash never fired");
            continue;
        }

        // Blast radius: exactly the expected offender is quarantined.
        let offender = if point == CrashPoint::MidRamfsJournalAppend {
            stack.ramfs_cid
        } else {
            stack.app
        };
        if !stack.sys.cubicle(offender).is_quarantined() {
            report.violation(step, point, "crash did not quarantine the offender");
            continue;
        }
        for cid in [stack.app, stack.vfs_cid, stack.ramfs_cid] {
            if cid != offender && stack.sys.cubicle(cid).is_quarantined() {
                report.violation(step, point, &format!("fault cascaded into {cid:?}"));
            }
        }
        let audit = stack.sys.audit();
        if !audit.is_clean() {
            report.violation(step, point, &format!("audit dirty after crash: {audit}"));
        }

        // Microreboot + replay: RAMFS's restart hook redoes its inode
        // journal; reopening the database replays the WAL on top.
        stack.sys.restart(offender).expect("restart offender");
        let recovered_high = {
            let plan: SharedPlan = Rc::new(RefCell::new(CrashPlan::default()));
            match open_storm_db(&mut stack, &plan) {
                Ok(mut db) => {
                    let r = verify_recovery(&mut stack.sys, stack.app, &mut db, &w, seen);
                    drop(db);
                    r
                }
                Err(e) => Err(format!("reopen after recovery failed: {e}")),
            }
        };
        let recovered_high = match recovered_high {
            Ok(h) => h,
            Err(why) => {
                report.violation(step, point, &why);
                continue;
            }
        };
        let audit = stack.sys.audit();
        if !audit.is_clean() {
            report.violation(step, point, &format!("audit dirty after recovery: {audit}"));
            continue;
        }

        let stats = stack.sys.stats();
        report.quarantines += stats.quarantines;
        report.restarts += stats.restarts;
        report.wal_replays += stats.wal_replays;
        report.ramfs_journal_replays += stats.ramfs_journal_replays;
        report.recovered += 1;

        // Fold the semantic record: what crashed where, what came back.
        digest = fnv1a(
            digest,
            format!(
                "{step}:{point:?}:{target:?}:g{}:{:?}:a{}:d{}:t{}:r{recovered_high}:q{}:w{}:j{}",
                w.group,
                w.txns,
                seen.acked_high,
                seen.durable_high,
                seen.attempted,
                stats.quarantines,
                stats.wal_replays,
                stats.ramfs_journal_replays,
            )
            .as_bytes(),
        );
    }
    report.digest = digest;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_contains_everything_and_replays_identically() {
        let a = run_campaign(0x5EED, 24);
        assert_eq!(a.uncontained, 0, "escapes: {:?}", a.escapes);
        assert_eq!(a.injected, 24);
        let b = run_campaign(0x5EED, 24);
        assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
        let c = run_campaign(0x5EED + 1, 24);
        assert_ne!(a.digest, c.digest, "different seed must differ");
    }

    #[test]
    fn every_fault_kind_is_reachable() {
        // 48 draws over 6 kinds: overwhelmingly likely to hit them all;
        // the seed is fixed, so this is deterministic in practice.
        let r = run_campaign(0xF00D, 48);
        assert_eq!(r.uncontained, 0, "escapes: {:?}", r.escapes);
        assert!(r.quarantines > 0 && r.restarts > 0);
    }

    #[test]
    fn crash_campaign_preserves_durability_and_replays_identically() {
        let a = run_crash_campaign(0xC4A5, 12);
        assert_eq!(a.violations, 0, "durability violations: {:?}", a.notes);
        assert_eq!(a.recovered, a.injected);
        assert!(a.quarantines > 0 && a.restarts > 0);
        let b = run_crash_campaign(0xC4A5, 12);
        assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
        let c = run_crash_campaign(0xC4A5 + 1, 12);
        assert_ne!(a.digest, c.digest, "different seed must differ");
    }

    #[test]
    fn crash_campaign_exercises_wal_and_ramfs_recovery() {
        // Enough injections that both recovery paths (sqldb WAL replay
        // on reopen and the RAMFS journal replay in the restart hook)
        // are observed at least once under a fixed seed.
        let r = run_crash_campaign(0x0DDB, 16);
        assert_eq!(r.violations, 0, "durability violations: {:?}", r.notes);
        assert!(r.wal_replays > 0, "no WAL replay observed");
        assert!(
            r.ramfs_journal_replays > 0,
            "no RAMFS journal replay observed"
        );
    }
}

//! Deterministic fault injection for the containment campaign.
//!
//! A seeded [`Rng64`] drives a storm of faults — wild reads and writes,
//! premature window closes, out-of-window pointer passing, images
//! carrying forbidden instructions, heap exhaustion mid-call — against a
//! three-cubicle micro deployment, and checks after every injection that
//! the blast radius stayed inside the offender: the expected cubicle
//! (and only it) is quarantined, `System::audit()` is clean, and the
//! surviving cubicles still complete cross-calls. Every quarantined
//! offender is then microrebooted and the checks repeat.
//!
//! The same seed must reproduce the same storm bit-for-bit: the report
//! carries an FNV digest over the kernel trace so `faultstorm` can
//! assert replay determinism.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleError, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::{CodeImage, Insn};
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::VAddr;

/// An address far above anything the monitor maps in these runs.
const WILD: VAddr = VAddr::new(0x0FFF_0000);

/// Cubicles in the micro deployment.
const POP: usize = 3;
const NAMES: [&str; POP] = ["APP", "SVC", "STORE"];

/// One injected fault shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The target reads unmapped memory in its own frame.
    WildRead,
    /// The target writes unmapped memory in its own frame.
    WildWrite,
    /// The caller opens a window, closes it, then cross-calls an entry
    /// that dereferences the no-longer-shared buffer.
    PrematureClose,
    /// The caller passes a pointer to its memory without ever opening a
    /// window for it.
    BadPointer,
    /// A component image carrying a `wrpkru` reaches the loader.
    ForbiddenImage,
    /// A callee exhausts its heap quota mid-call.
    HeapExhaust,
}

impl FaultKind {
    /// All kinds, in storm-mix order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::WildRead,
        FaultKind::WildWrite,
        FaultKind::PrematureClose,
        FaultKind::BadPointer,
        FaultKind::ForbiddenImage,
        FaultKind::HeapExhaust,
    ];
}

struct Node;
impl_component!(Node);

/// Builds the image for micro-deployment cubicle `i`: a ping entry for
/// liveness probes plus entries the injector drives into each fault.
fn node_image(i: usize) -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new(NAMES[i], CodeImage::plain(256))
        .export(
            b.export(&format!("long ping{i}(void)")).unwrap(),
            |_sys, _this, _| Ok(Value::I64(1)),
        )
        .export(
            b.export(&format!("long deref{i}(const void *p)")).unwrap(),
            |sys, _this, args| {
                sys.read_vec(args[0].as_ptr(), 8)?;
                Ok(Value::I64(0))
            },
        )
        .export(
            b.export(&format!("long hog{i}(uint64_t bytes)")).unwrap(),
            |sys, _this, args| {
                sys.heap_alloc(args[0].as_u64() as usize, 8)?;
                Ok(Value::I64(0))
            },
        )
}

/// Outcome of one campaign run.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Seed the storm was drawn from.
    pub seed: u64,
    /// Faults injected.
    pub injected: u64,
    /// Faults whose blast radius stayed inside the offender.
    pub contained: u64,
    /// Faults that escaped (any failed check). Must be zero.
    pub uncontained: u64,
    /// Quarantines performed by the kernel during the storm.
    pub quarantines: u64,
    /// Microreboots performed to bring offenders back.
    pub restarts: u64,
    /// FNV-1a digest over the kernel trace (replay-determinism witness).
    pub digest: u64,
    /// Human-readable notes for every escaped fault.
    pub escapes: Vec<String>,
}

/// FNV-1a over a byte slice.
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs one seeded storm of `injections` faults and reports containment.
///
/// # Panics
///
/// Panics when the micro deployment itself fails to boot — that is a
/// harness bug, not a containment escape.
pub fn run_campaign(seed: u64, injections: usize) -> CampaignReport {
    let mut rng = Rng64::new(seed);
    let mut sys = System::new(IsolationMode::Full);
    sys.set_fault_containment(true);
    sys.enable_tracing(1 << 16);

    let mut ids: Vec<CubicleId> = Vec::new();
    for i in 0..POP {
        ids.push(sys.load(node_image(i), Box::new(Node)).unwrap().cid);
    }

    let mut report = CampaignReport {
        seed,
        ..CampaignReport::default()
    };

    for step in 0..injections {
        let kind = FaultKind::ALL[rng.range_usize(0, FaultKind::ALL.len())];
        let t = rng.range_usize(0, POP);
        let c = (t + 1 + rng.range_usize(0, POP - 1)) % POP; // c != t
        report.injected += 1;

        // Fire the fault. `offender` is who the kernel must quarantine;
        // `None` means the fault is contained without a quarantine
        // (resource exhaustion, loader rejection).
        let (offender, fired_ok) = match kind {
            FaultKind::WildRead => {
                let r = sys.run_in_cubicle(ids[t], |sys| sys.read_vec(WILD, 8));
                (Some(t), r.is_err())
            }
            FaultKind::WildWrite => {
                let r = sys.run_in_cubicle(ids[t], |sys| sys.write(WILD, b"stray"));
                (Some(t), r.is_err())
            }
            FaultKind::PrematureClose => {
                let peer = ids[c];
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    let buf = sys.heap_alloc(64, 8)?;
                    let wid = sys.window_init();
                    sys.window_add(wid, buf, 64)?;
                    sys.window_open(wid, peer)?;
                    sys.window_close(wid, peer)?; // revoked before use
                    sys.call(&format!("deref{c}"), &[Value::Ptr(buf)])
                });
                (Some(t), r.is_err())
            }
            FaultKind::BadPointer => {
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    let buf = sys.heap_alloc(64, 8)?;
                    sys.call(&format!("deref{c}"), &[Value::Ptr(buf)])
                });
                (Some(t), r.is_err())
            }
            FaultKind::ForbiddenImage => {
                let bad = CodeImage::from_insns(&[
                    Insn::Plain { len: 32 },
                    Insn::Wrpkru,
                    Insn::Plain { len: 8 },
                ]);
                let r = sys.load(ComponentImage::new("EVIL", bad), Box::new(Node));
                (
                    None,
                    matches!(r, Err(CubicleError::ForbiddenInstruction(_))),
                )
            }
            FaultKind::HeapExhaust => {
                sys.set_heap_limit(ids[c], Some(8)).unwrap();
                let r = sys.run_in_cubicle(ids[t], |sys| {
                    sys.call(&format!("hog{c}"), &[Value::U64(64 * 1024 * 1024)])
                });
                sys.set_heap_limit(ids[c], None).unwrap();
                // Contained as -ENOMEM at the healthy caller; no
                // quarantine — exhaustion is not an isolation breach.
                (None, matches!(r.map(|v| v.as_i64()), Ok(-12)))
            }
        };

        // Verify the blast radius.
        let escape = |why: String, report: &mut CampaignReport| {
            report.uncontained += 1;
            report
                .escapes
                .push(format!("seed {seed:#x} step {step} {kind:?}: {why}"));
        };
        let mut ok = true;
        if !fired_ok {
            escape("fault did not fire as expected".into(), &mut report);
            ok = false;
        }
        for (i, id) in ids.iter().enumerate() {
            let expect = offender == Some(i);
            if sys.cubicle(*id).is_quarantined() != expect {
                escape(
                    format!("{} quarantined={}, expected {expect}", NAMES[i], !expect),
                    &mut report,
                );
                ok = false;
            }
        }
        let audit = sys.audit();
        if !audit.is_clean() {
            escape(format!("audit dirty after fault: {audit}"), &mut report);
            ok = false;
        }
        // Survivors keep serving.
        let healthy: Vec<usize> = (0..POP)
            .filter(|&i| !sys.cubicle(ids[i]).is_quarantined())
            .collect();
        if healthy.len() >= 2 {
            let (a, b) = (healthy[0], healthy[healthy.len() - 1]);
            let r = sys.run_in_cubicle(ids[a], |sys| sys.call(&format!("ping{b}"), &[]));
            if r.map(|v| v.as_i64()) != Ok(1) {
                escape("healthy pair stopped serving".into(), &mut report);
                ok = false;
            }
        }

        // Bring the offender back and re-verify.
        if let Some(i) = offender {
            if sys.cubicle(ids[i]).is_quarantined() {
                sys.restart(ids[i]).unwrap();
                let audit = sys.audit();
                if !audit.is_clean() {
                    escape(format!("audit dirty after restart: {audit}"), &mut report);
                    ok = false;
                }
                let r = sys
                    .run_in_cubicle(ids[(i + 1) % POP], |sys| sys.call(&format!("ping{i}"), &[]));
                if r.map(|v| v.as_i64()) != Ok(1) {
                    escape("offender not serving after microreboot".into(), &mut report);
                    ok = false;
                }
            }
        }
        if ok {
            report.contained += 1;
        }
    }

    let stats = sys.stats();
    report.quarantines = stats.quarantines;
    report.restarts = stats.restarts;

    // Digest the whole trace: same seed ⇒ same storm ⇒ same digest.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    if let Some(trace) = sys.trace() {
        for rec in trace.records() {
            h = fnv1a(h, format!("{rec:?}").as_bytes());
        }
    }
    h = fnv1a(h, sys.export_fault_audit().as_bytes());
    report.digest = h;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_contains_everything_and_replays_identically() {
        let a = run_campaign(0x5EED, 24);
        assert_eq!(a.uncontained, 0, "escapes: {:?}", a.escapes);
        assert_eq!(a.injected, 24);
        let b = run_campaign(0x5EED, 24);
        assert_eq!(a.digest, b.digest, "same seed must replay bit-identically");
        let c = run_campaign(0x5EED + 1, 24);
        assert_ne!(a.digest, c.digest, "different seed must differ");
    }

    #[test]
    fn every_fault_kind_is_reachable() {
        // 48 draws over 6 kinds: overwhelmingly likely to hit them all;
        // the seed is fixed, so this is deterministic in practice.
        let r = run_campaign(0xF00D, 48);
        assert_eq!(r.uncontained, 0, "escapes: {:?}", r.escapes);
        assert!(r.quarantines > 0 && r.restarts > 0);
    }
}

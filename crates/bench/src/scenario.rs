//! Deployment builders for the SQLite experiments (Figures 6, 8, 9, 10).

use cubicle_core::{impl_component, ComponentImage, CubicleId, IsolationMode, Result, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::Ramfs;
use cubicle_sqldb::speedtest::{run_speedtest, SpeedtestConfig, TestResult};
use cubicle_sqldb::storage::CubicleEnv;
use cubicle_sqldb::{Database, JournalMode};
use cubicle_ukbase::alloc::{Alloc, AllocProxy};
use cubicle_ukbase::base::Libc;
use cubicle_ukbase::plat::Plat;
use cubicle_ukbase::time::Time;
use cubicle_vfs::{Vfs, VfsPort, VfsProxy};

/// Platform overhead per OS-boundary call of the user-level library OS,
/// relative to native Linux (calibrated once so that baseline Unikraft
/// lands at the paper's 2.8× of Linux on speedtest1; see EXPERIMENTS.md).
pub const UNIKRAFT_BOUNDARY_TAX: u64 = 16_200;

/// The paper's Figure 9 partitionings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Partitioning {
    /// 3 components: `SQLITE`, `CORE` (PLAT + VFSCORE + ALLOC + RAMFS),
    /// `TIMER` (Figure 9a).
    Merged,
    /// 4 components: `RAMFS` split out of `CORE` (Figure 9b).
    Split,
}

struct SqliteApp;
impl_component!(SqliteApp);

/// A booted SQLite deployment.
pub struct SqliteDeployment {
    /// The kernel.
    pub sys: System,
    /// The application cubicle.
    pub app: CubicleId,
    /// `VFSCORE` proxy.
    pub vfs: VfsProxy,
    /// The file-system backend's cubicle (== CORE when merged).
    pub ramfs_cid: CubicleId,
    /// CORE's cubicle.
    pub core_cid: CubicleId,
}

/// Builds the SQLite deployment.
///
/// `boundary_tax` models the user-level library OS platform overhead
/// (0 for the native-Linux and Genode baselines,
/// [`UNIKRAFT_BOUNDARY_TAX`] for every Unikraft-derived configuration).
///
/// # Errors
///
/// Loader errors.
pub fn build_sqlite(
    mode: IsolationMode,
    partitioning: Partitioning,
    boundary_tax: u64,
) -> Result<SqliteDeployment> {
    let mut sys = System::new(mode);
    sys.set_boundary_tax(boundary_tax);

    // On the Genode/microkernel baselines the C library's VFS plugin
    // runs *inside the application component* (that is how Genode's
    // libc works, and why the paper's Genode-3 is only 1.4× native
    // Linux): only a *separated* file-system server costs session RPCs.
    // On CubicleOS/Unikraft, VFSCORE is its own module in both
    // configurations.
    let ipc = matches!(mode, IsolationMode::Ipc(_));

    let app = sys.load(
        ComponentImage::new("SQLITE", CodeImage::plain(128 * 1024)).heap_pages(256),
        Box::new(SqliteApp),
    )?;

    // CORE: VFSCORE + PLAT + ALLOC (+ BOOT), per Figure 9's description
    // of the Genode-equivalent module.
    let vfs_loaded = if ipc {
        sys.load_into(cubicle_vfs::image(), Box::new(Vfs::default()), app.cid)?
    } else {
        sys.load(cubicle_vfs::image(), Box::new(Vfs::default()))?
    };
    let core_cid = vfs_loaded.cid;
    let alloc_loaded = sys.load_into(
        cubicle_ukbase::alloc::image(),
        Box::new(Alloc::default()),
        core_cid,
    )?;
    sys.load_into(
        cubicle_ukbase::plat::image(),
        Box::new(Plat::default()),
        core_cid,
    )?;
    // TIMER: its own component in both configurations.
    sys.load(cubicle_ukbase::time::image(), Box::new(Time::default()))?;
    // LIBC: shared cubicle.
    sys.load(
        ComponentImage::new("LIBC", CodeImage::plain(48 * 1024))
            .shared()
            .heap_pages(8),
        Box::new(Libc),
    )?;

    // RAMFS: merged into CORE or isolated, per the experiment.
    let ramfs_loaded = match partitioning {
        Partitioning::Merged => {
            sys.load_into(cubicle_ramfs::image(), Box::new(Ramfs::default()), core_cid)?
        }
        Partitioning::Split => sys.load(cubicle_ramfs::image(), Box::new(Ramfs::default()))?,
    };
    let alloc_proxy = AllocProxy::resolve(&alloc_loaded)?;
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(alloc_proxy))
        .expect("ramfs slot");
    cubicle_ramfs::mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/")?;

    sys.mark_boot_complete();
    Ok(SqliteDeployment {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded)?,
        ramfs_cid: ramfs_loaded.cid,
        core_cid,
    })
}

impl SqliteDeployment {
    /// Opens a database on the deployment's file system.
    ///
    /// # Errors
    ///
    /// Storage errors.
    pub fn open_db(&mut self, cache_pages: usize) -> Result<Database> {
        let (app, vfs, ramfs) = (self.app, self.vfs, self.ramfs_cid);
        self.sys.run_in_cubicle(app, move |sys| {
            let port = VfsPort::new(sys, vfs, &[ramfs])?;
            // speedtest1 runs in SQLite's default rollback-journal mode;
            // pinning it keeps the Figure 6/7/10 golden numbers stable.
            // WAL commit costs are measured by the sql_commit_* benches.
            Database::open_with_mode(
                sys,
                Box::new(CubicleEnv::new(port)),
                "/speedtest.db",
                cache_pages,
                JournalMode::Rollback,
            )
            .map_err(|e| cubicle_core::CubicleError::Component(e.to_string()))
        })
    }

    /// Runs the full speedtest1 suite and returns per-test results.
    ///
    /// # Errors
    ///
    /// SQL or kernel errors.
    pub fn run_speedtest(
        &mut self,
        db: &mut Database,
        cfg: &SpeedtestConfig,
    ) -> Result<Vec<TestResult>> {
        let app = self.app;
        self.sys.run_in_cubicle(app, |sys| {
            run_speedtest(sys, db, cfg)
                .map_err(|e| cubicle_core::CubicleError::Component(e.to_string()))
        })
    }
}

/// Convenience: build, run, and report total cycles for one configuration.
///
/// # Errors
///
/// Loader, SQL or kernel errors.
pub fn speedtest_total_cycles(
    mode: IsolationMode,
    partitioning: Partitioning,
    boundary_tax: u64,
    cfg: &SpeedtestConfig,
) -> Result<(u64, Vec<TestResult>)> {
    let mut dep = build_sqlite(mode, partitioning, boundary_tax)?;
    let mut db = dep.open_db(cubicle_sqldb::pager::DEFAULT_CACHE_PAGES)?;
    let results = dep.run_speedtest(&mut db, cfg)?;
    let kernel = match mode {
        IsolationMode::Ipc(k) => k.kernel.to_string(),
        m => format!("{m:?}"),
    };
    crate::report::audit_gate(&dep.sys, &format!("speedtest {kernel} {partitioning:?}"));
    let total = results.iter().map(|r| r.cycles).sum();
    Ok((total, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_sqldb::SqlValue;

    #[test]
    fn merged_and_split_deployments_boot() {
        for p in [Partitioning::Merged, Partitioning::Split] {
            let mut dep = build_sqlite(IsolationMode::Full, p, 0).unwrap();
            if p == Partitioning::Merged {
                assert_eq!(dep.ramfs_cid, dep.core_cid);
            } else {
                assert_ne!(dep.ramfs_cid, dep.core_cid);
            }
            let mut db = dep.open_db(64).unwrap();
            let app = dep.app;
            dep.sys.run_in_cubicle(app, |sys| {
                db.execute(sys, "CREATE TABLE t(v INTEGER)").unwrap();
                db.execute(sys, "INSERT INTO t VALUES (7)").unwrap();
                let rows = db.query(sys, "SELECT v FROM t").unwrap();
                assert_eq!(rows[0][0], SqlValue::Integer(7));
            });
        }
    }

    #[test]
    fn splitting_ramfs_costs_little_on_cubicleos() {
        // Figure 10b's headline: the extra compartment costs ~1.4× on
        // CubicleOS. At tiny scale we just require a modest factor.
        let cfg = SpeedtestConfig {
            scale: 2,
            ..Default::default()
        };
        let (merged, _) = speedtest_total_cycles(
            IsolationMode::Full,
            Partitioning::Merged,
            UNIKRAFT_BOUNDARY_TAX,
            &cfg,
        )
        .unwrap();
        let (split, _) = speedtest_total_cycles(
            IsolationMode::Full,
            Partitioning::Split,
            UNIKRAFT_BOUNDARY_TAX,
            &cfg,
        )
        .unwrap();
        let ratio = split as f64 / merged as f64;
        assert!(ratio > 1.0, "split must cost something: {ratio}");
        assert!(ratio < 3.0, "CubicleOS split must stay cheap: {ratio}");
    }

    #[test]
    fn splitting_ramfs_is_expensive_on_microkernels() {
        // A tiny page cache forces the OS-call density that drives
        // Figure 10's ratios without needing the full scale-100 run.
        let cfg = SpeedtestConfig {
            scale: 4,
            ..Default::default()
        };
        let run = |mode: IsolationMode, p: Partitioning, tax: u64| -> u64 {
            let mut dep = build_sqlite(mode, p, tax).unwrap();
            let mut db = dep.open_db(16).unwrap(); // 64 KiB cache
            let results = dep.run_speedtest(&mut db, &cfg).unwrap();
            results.iter().map(|r| r.cycles).sum()
        };
        let sel4 = cubicle_ipc::mode_for(cubicle_ipc::SEL4);
        let ipc_ratio =
            run(sel4, Partitioning::Split, 0) as f64 / run(sel4, Partitioning::Merged, 0) as f64;
        let cub_ratio = run(
            IsolationMode::Full,
            Partitioning::Split,
            UNIKRAFT_BOUNDARY_TAX,
        ) as f64
            / run(
                IsolationMode::Full,
                Partitioning::Merged,
                UNIKRAFT_BOUNDARY_TAX,
            ) as f64;
        assert!(
            ipc_ratio > 1.5 && ipc_ratio > 1.4 * cub_ratio,
            "message-passing split ({ipc_ratio:.2}x) must dwarf CubicleOS ({cub_ratio:.2}x)"
        );
        assert!(
            cub_ratio < 2.0,
            "CubicleOS split stays cheap ({cub_ratio:.2}x)"
        );
    }
}

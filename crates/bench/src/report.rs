//! Text reporting helpers shared by the figure harnesses, plus the
//! observability dump: any traced run can drop its Chrome trace JSON,
//! Prometheus snapshot and fault audit log next to the figure output.

use cubicle_core::System;
use cubicle_ukbase::time::cycles_to_ms;
use std::io::Write;
use std::path::{Path, PathBuf};

pub mod results;

/// Prints a figure/table banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("================================================================");
}

/// A simple ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

/// Formats cycles as milliseconds on the paper's 2.2 GHz testbed.
pub fn ms(cycles: u64) -> String {
    format!("{:.3} ms", cycles_to_ms(cycles))
}

/// Formats a slowdown factor.
pub fn factor(value: f64) -> String {
    format!("{value:.2}x")
}

/// Scenario-end gate: runs the kernel invariant auditor
/// ([`System::audit`]) and panics with the findings if the run left the
/// kernel in an inconsistent state. Prints the one-line summary so every
/// figure's output shows the check actually happened.
///
/// # Panics
///
/// When any isolation invariant (W^X, tag consistency, window ranges,
/// stack guards, key uniqueness) is violated.
pub fn audit_gate(sys: &System, label: &str) {
    let report = sys.audit();
    report.assert_clean(label);
    println!(
        "kernel audit ({label}): clean — {} pages, {} windows, {} cubicles",
        report.pages_checked, report.windows_checked, report.cubicles_checked
    );
}

/// Renders the per-edge and per-entry latency histograms as a
/// human-readable table (empty string when tracing is disabled).
pub fn metrics_summary(sys: &System) -> String {
    let Some(metrics) = sys.metrics() else {
        return String::new();
    };
    let mut out = String::new();
    out.push_str(
        "edge                           calls        p50        p95        p99        max\n",
    );
    for (&(from, to), h) in metrics.edges() {
        let edge = format!("{} -> {}", sys.cubicle_name(from), sys.cubicle_name(to));
        out.push_str(&format!(
            "{edge:<28} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            h.count(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max(),
        ));
    }
    out.push_str(
        "entry                          calls        p50        p95        p99        max\n",
    );
    for (&entry, h) in metrics.entries() {
        let name = sys.entry_name(entry).unwrap_or("?").to_string();
        out.push_str(&format!(
            "{name:<28} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
            h.count(),
            h.p50(),
            h.p95(),
            h.p99(),
            h.max(),
        ));
    }
    out
}

/// Writes the observability artifacts for a traced run into `dir`:
/// `<stem>.trace.json` (Chrome `trace_event` format, loadable in
/// Perfetto / `chrome://tracing`), `<stem>.prom` (Prometheus text
/// exposition), `<stem>.audit.txt` (the trap-and-map audit log) and —
/// when the span profiler recorded anything — `<stem>.folded`
/// (collapsed stacks for `inferno` / `flamegraph.pl`).
/// Returns the paths written.
///
/// # Errors
///
/// I/O errors creating `dir` or writing the files.
pub fn dump_observability(
    sys: &mut System,
    dir: &Path,
    stem: &str,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let dump = |suffix: &str, body: String| -> std::io::Result<PathBuf> {
        let path = dir.join(format!("{stem}{suffix}"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(body.as_bytes())?;
        Ok(path)
    };
    written.push(dump(".trace.json", sys.export_chrome_trace())?);
    written.push(dump(".prom", sys.export_prometheus())?);
    written.push(dump(".audit.txt", sys.export_fault_audit())?);
    let folded = sys.export_flamegraph();
    if !folded.is_empty() {
        written.push(dump(".folded", folded)?);
    }
    Ok(written)
}

/// The directory named by `CUBICLE_OBS_DIR`, if set: figure harnesses
/// use it as an opt-in switch — when present they enable tracing and
/// drop their observability artifacts (trace, flamegraph, Prometheus,
/// audit log) there.
pub fn obs_dir() -> Option<PathBuf> {
    std::env::var_os("CUBICLE_OBS_DIR").map(PathBuf::from)
}

/// Asserts the span profiler's core attribution invariant — per-cubicle
/// exclusive (self) cycles partition the attribution window exactly —
/// and returns that window. Harnesses call this before dumping so a
/// mis-attributed profile fails the run instead of producing a
/// plausible-looking flamegraph.
///
/// # Panics
///
/// When tracing is disabled or the self-cycle sum disagrees with the
/// window.
pub fn assert_spans_partition(sys: &mut System, label: &str) -> u64 {
    let window = sys
        .span_attribution_window()
        .unwrap_or_else(|| panic!("{label}: span check needs tracing enabled"));
    let self_sum: u64 = sys
        .span_cubicle_attribution()
        .iter()
        .map(|(_, a)| a.self_cycles)
        .sum();
    assert_eq!(
        self_sum, window,
        "{label}: per-cubicle self cycles must sum to the attribution window"
    );
    window
}

/// Renders the live per-cubicle resource ledger as a `top`-style table,
/// sorted by exclusive cycles (hottest first). Cycle columns are zero
/// when tracing is off; the resource columns are always live.
pub fn top_table(sys: &mut System) -> String {
    let window = sys.span_attribution_window().unwrap_or(0);
    let mut rows = sys.ledger();
    rows.sort_by(|a, b| {
        b.cycles_self
            .cmp(&a.cycles_self)
            .then(a.cubicle.cmp(&b.cubicle))
    });
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>5} {:>3} {:>5} {:>4} {:>6} {:>7} {:>7} {:>15} {:>9} {:>11} {:>11} {:>6}\n",
        "CUBICLE",
        "STATE",
        "GEN",
        "KEY",
        "CORE",
        "PAGES",
        "FOREIGN",
        "WIN",
        "HEAP_USED",
        "CALLS_IN",
        "CYC_SELF",
        "CYC_TOTAL",
        "%SELF"
    ));
    for r in &rows {
        let state = if r.quarantined() { "QUAR" } else { "run" };
        let key = if r.key_parked {
            format!("{}*", r.key)
        } else {
            r.key.to_string()
        };
        let pct = if window > 0 {
            format!("{:.1}", 100.0 * r.cycles_self as f64 / window as f64)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<12} {state:>5} {:>3} {key:>5} {:>4} {:>6} {:>7} {:>7} {:>15} {:>9} {:>11} {:>11} {pct:>6}\n",
            r.name,
            r.generation,
            r.last_core,
            r.pages_owned,
            r.pages_held_foreign,
            format!("{}/{}", r.windows_open, r.windows),
            format!("{}/{}", r.heap_used, r.heap_capacity),
            r.calls_in,
            r.cycles_self,
            r.cycles_total,
        ));
    }
    if window > 0 {
        out.push_str(&format!(
            "attributed window: {window} cycles ('*' marks a parked MPK key)\n"
        ));
    }
    // Monitor-lock counters (the re-entrant monitor's four spin-modelled
    // locks); silent only when the monitor took no lock at all.
    let locks = sys.monitor_lock_stats();
    if locks.iter().any(|l| l.acquisitions > 0) {
        out.push_str(&format!(
            "\n{:<12} {:>11} {:>11} {:>13}\n",
            "LOCK", "ACQ", "CONTENDED", "WAIT_CYC"
        ));
        for l in &locks {
            out.push_str(&format!(
                "{:<12} {:>11} {:>11} {:>13}\n",
                l.name, l.acquisitions, l.contended, l.wait_cycles
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn formatting() {
        assert_eq!(factor(1.5), "1.50x");
        assert!(ms(2_200_000).starts_with("1.000"));
    }
}

//! Text reporting helpers shared by the figure harnesses.

use cubicle_ukbase::time::cycles_to_ms;

/// Prints a figure/table banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref})");
    println!("================================================================");
}

/// A simple ASCII bar scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    "#".repeat(n.min(width))
}

/// Formats cycles as milliseconds on the paper's 2.2 GHz testbed.
pub fn ms(cycles: u64) -> String {
    format!("{:.3} ms", cycles_to_ms(cycles))
}

/// Formats a slowdown factor.
pub fn factor(value: f64) -> String {
    format!("{value:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn formatting() {
        assert_eq!(factor(1.5), "1.50x");
        assert!(ms(2_200_000).starts_with("1.000"));
    }
}

//! Deeper probe: call counts and cycle breakdown per configuration.
use cubicle_bench::scenario::{build_sqlite, Partitioning};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::SpeedtestConfig;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    for (label, mode, p) in [
        ("Linux-3", IsolationMode::Unikraft, Partitioning::Merged),
        ("Linux-4", IsolationMode::Unikraft, Partitioning::Split),
    ] {
        let mut dep = build_sqlite(mode, p, 0).unwrap();
        let mut db = dep.open_db(256).unwrap();
        let t0 = dep.sys.now();
        let _ = dep.run_speedtest(&mut db, &cfg).unwrap();
        let cycles = dep.sys.now() - t0;
        let (_, stats) = dep.sys.since_boot();
        let app_core = stats.edge(dep.app, dep.core_cid);
        let core_ramfs = stats.edge(dep.core_cid, dep.ramfs_cid);
        println!(
            "{label}: cycles={cycles} cross_calls={} app->core={} core->ramfs={} ipc_bytes={}",
            stats.cross_calls, app_core, core_ramfs, stats.ipc_bytes
        );
        let ps = db.pager_stats();
        println!(
            "   pager: hits={} misses={} evictions={} syncs={} commits={}",
            ps.hits, ps.misses, ps.evictions, ps.syncs, ps.commits
        );
    }
}

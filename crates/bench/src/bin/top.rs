//! `cubicle-top`: runs a traced scenario and prints the live
//! per-cubicle resource ledger as a `top`-style table — exclusive vs.
//! inclusive cycles, pages owned and held foreign, open windows, heap
//! and stack usage, generation and quarantine state — then drops the
//! full observability bundle (Chrome trace, collapsed-stack flamegraph,
//! Prometheus snapshot, fault audit log) for offline digging.
//!
//! ```text
//! cargo run --release --bin top -- [nginx|sqlite] [work] [out-dir]
//! ```
//!
//! `work` is requests for nginx (default 50) or the speedtest scale for
//! sqlite (default 5); artifacts go to `out-dir` (default `target/top`).
//! Exits non-zero if the profiler's attribution invariant breaks or the
//! run leaves the kernel audit dirty, so CI can use it as a smoke test.

use cubicle_bench::report::{assert_spans_partition, audit_gate, dump_observability, top_table};
use cubicle_bench::scenario::{build_sqlite, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::{IsolationMode, System};
use cubicle_httpd::boot_web;
use cubicle_mpk::rng::Rng64;
use cubicle_net::WireModel;
use cubicle_sqldb::speedtest::SpeedtestConfig;
use std::path::PathBuf;

const TRACE_CAPACITY: usize = 1 << 20;

fn usage() -> ! {
    eprintln!("usage: top [nginx|sqlite] [work] [out-dir]");
    std::process::exit(2);
}

fn run_nginx(requests: usize) -> System {
    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.sys.enable_tracing(TRACE_CAPACITY);
    let mut rng = Rng64::new(7);
    let sizes = [1 << 10, 8 << 10, 64 << 10, 256 << 10];
    for (i, &size) in sizes.iter().enumerate() {
        let content: Vec<u8> = (0..size).map(|j| ((i + j) % 251) as u8).collect();
        dep.put_file(&format!("/file{i}.bin"), &content).unwrap();
    }
    eprintln!("siege: {requests} requests over 4 file sizes…");
    for _ in 0..requests {
        let which = rng.range_usize(0, sizes.len());
        let (_lat, resp) = dep
            .fetch(&format!("/file{which}.bin"), WireModel::default())
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    dep.sys
}

fn run_sqlite(scale: u32) -> System {
    let mut dep = build_sqlite(
        IsolationMode::Full,
        Partitioning::Split,
        UNIKRAFT_BOUNDARY_TAX,
    )
    .unwrap();
    dep.sys.enable_tracing(TRACE_CAPACITY);
    let mut db = dep.open_db(64).unwrap();
    eprintln!("speedtest1 at scale {scale}…");
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    dep.run_speedtest(&mut db, &cfg).unwrap();
    dep.sys
}

fn main() {
    let scenario = std::env::args().nth(1).unwrap_or_else(|| "nginx".into());
    let work: u64 = match std::env::args().nth(2) {
        None => match scenario.as_str() {
            "nginx" => 50,
            _ => 5,
        },
        Some(arg) => match arg.parse() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: work must be a positive integer, got `{arg}`");
                usage();
            }
        },
    };
    let out_dir: PathBuf = std::env::args()
        .nth(3)
        .map_or_else(|| PathBuf::from("target/top"), PathBuf::from);

    let mut sys = match scenario.as_str() {
        "nginx" => run_nginx(work as usize),
        "sqlite" => run_sqlite(work as u32),
        _ => usage(),
    };

    // Gates first: attribution must partition the window and the run
    // must leave the kernel invariant-clean, or this exits non-zero.
    let window = assert_spans_partition(&mut sys, "cubicle-top");
    audit_gate(&sys, &format!("cubicle-top {scenario}"));

    println!();
    println!("cubicle-top — {scenario}, {window} attributed cycles");
    println!("{}", "-".repeat(110));
    print!("{}", top_table(&mut sys));

    let profiler = sys.span_profiler().expect("tracing enabled");
    println!(
        "spans: {} completed / {} dropped; trace ring: {} dropped",
        profiler.spans_completed(),
        profiler.spans_dropped(),
        sys.trace().expect("tracing enabled").dropped(),
    );
    match dump_observability(&mut sys, &out_dir, &format!("top_{scenario}")) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("error: cannot write to {}: {e}", out_dir.display());
            std::process::exit(1);
        }
    }
}

//! `faultstorm` — the seeded fault-injection campaign.
//!
//! Two legs:
//!
//! 1. **Micro storms**: N seeds (default 5) drive randomized faults —
//!    wild reads/writes, premature window closes, out-of-window pointer
//!    passing, forbidden-instruction images, heap exhaustion mid-call —
//!    against a 3-cubicle deployment. Every storm runs twice and the
//!    kernel-trace digests must match bit-for-bit (replay determinism).
//! 2. **Figure 5 NGINX**: the full 8-partition web deployment keeps
//!    serving after its RAMFS cubicle is quarantined and microrebooted.
//!
//! Exit status is non-zero unless every fault was contained. The CI
//! smoke job greps the literal `uncontained: 0` and `audit: clean`
//! lines from stdout.
//!
//! Usage: `faultstorm [seeds] [injections-per-seed]`

use cubicle_bench::inject::run_campaign;
use cubicle_core::IsolationMode;
use cubicle_httpd::boot_web;
use cubicle_mpk::VAddr;
use cubicle_net::WireModel;

/// Base seed of the campaign series.
const BASE_SEED: u64 = 0x57_0A11;

fn fast_wire() -> WireModel {
    WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 0,
    }
}

/// The Figure 5 leg: NGINX survives a RAMFS quarantine + microreboot.
/// Returns the number of uncontained faults (0 on success).
fn nginx_leg() -> u64 {
    println!("== nginx (fig. 5) leg ==");
    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    dep.sys.set_fault_containment(true);
    let body = b"<h1>cubicles</h1>".to_vec();
    dep.put_file("/index.html", &body).expect("put_file");
    let (_, resp) = dep.fetch("/index.html", fast_wire()).expect("warm fetch");
    assert_eq!(resp.status, 200, "warm fetch must serve");

    // RAMFS goes wild: the containment policy quarantines it.
    let ramfs = dep.ramfs_cid;
    let r = dep
        .sys
        .run_in_cubicle(ramfs, |sys| sys.read_vec(VAddr::new(0x0FFF_0000), 8));
    assert!(r.is_err(), "wild read must fault");
    let mut uncontained = 0;
    if !dep.sys.cubicle(ramfs).is_quarantined() {
        println!("ESCAPE: RAMFS not quarantined after wild read");
        uncontained += 1;
    }
    let audit = dep.sys.audit();
    if audit.is_clean() {
        println!("post-quarantine audit: clean");
    } else {
        println!("ESCAPE: post-quarantine audit dirty:\n{audit}");
        uncontained += 1;
    }

    // The server itself must survive the dead backend: a fetch now
    // degrades (error page or graceful failure), it does not cascade.
    let degraded = dep.fetch("/index.html", fast_wire());
    match degraded {
        Ok((_, resp)) if resp.status != 200 => {
            println!("degraded fetch: HTTP {} (served by NGINX)", resp.status);
        }
        Ok((_, resp)) => {
            println!("ESCAPE: fetch served {} from a dead backend", resp.status);
            uncontained += 1;
        }
        Err(e) => println!("degraded fetch: refused gracefully ({e})"),
    }
    for c in dep.sys.cubicles() {
        if c.is_quarantined() && c.id != ramfs {
            println!("ESCAPE: fault cascaded into {}", c.name);
            uncontained += 1;
        }
    }

    // Microreboot, repopulate, and the deployment serves again.
    dep.sys.restart(ramfs).expect("restart RAMFS");
    dep.put_file("/index.html", &body)
        .expect("re-put after reboot");
    let (_, resp) = dep
        .fetch("/index.html", fast_wire())
        .expect("fetch after reboot");
    if resp.status == 200 && resp.body == body {
        println!("post-reboot fetch: HTTP 200, body intact");
    } else {
        println!("ESCAPE: post-reboot fetch broken (HTTP {})", resp.status);
        uncontained += 1;
    }
    let audit = dep.sys.audit();
    if audit.is_clean() {
        println!("post-reboot audit: clean");
    } else {
        println!("ESCAPE: post-reboot audit dirty:\n{audit}");
        uncontained += 1;
    }
    let stats = dep.sys.stats();
    println!(
        "nginx leg: quarantines={} restarts={} contained-faults={}",
        stats.quarantines, stats.restarts, stats.contained_faults
    );
    uncontained
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let injections: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    println!("== micro storms: {seeds} seed(s) x {injections} injection(s) ==");
    let mut total_injected = 0;
    let mut total_uncontained = 0;
    let mut replays_ok = true;
    for i in 0..seeds {
        let seed = BASE_SEED + i;
        let a = run_campaign(seed, injections);
        let b = run_campaign(seed, injections);
        let identical = a.digest == b.digest;
        replays_ok &= identical;
        total_injected += a.injected;
        total_uncontained += a.uncontained;
        println!(
            "seed {seed:#x}: injected={} contained={} quarantines={} restarts={} \
             digest={:#018x} replay={}",
            a.injected,
            a.contained,
            a.quarantines,
            a.restarts,
            a.digest,
            if identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
        );
        for e in &a.escapes {
            println!("ESCAPE: {e}");
        }
    }

    total_uncontained += nginx_leg();

    println!("== summary ==");
    println!("injected: {total_injected}");
    println!("uncontained: {total_uncontained}");
    println!(
        "replay: {}",
        if replays_ok {
            "deterministic"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "audit: {}",
        if total_uncontained == 0 {
            "clean"
        } else {
            "dirty"
        }
    );
    if total_uncontained != 0 || !replays_ok {
        std::process::exit(1);
    }
}

//! Runs the SQLite scenario with tracing enabled and dumps the three
//! observability artifacts: a Chrome `trace_event` JSON timeline
//! (loadable in Perfetto / `chrome://tracing`), a Prometheus metrics
//! snapshot, and the trap-and-map fault audit log.
//!
//! ```text
//! cargo run --release --bin trace -- [scale] [out-dir]
//! ```
//!
//! Defaults: scale 5, `target/traces`. Exits non-zero if the exporter
//! counters disagree with the kernel's own statistics, so CI can use it
//! as a smoke test.

use cubicle_bench::report::{audit_gate, dump_observability, metrics_summary};
use cubicle_bench::scenario::{build_sqlite, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::SpeedtestConfig;
use std::path::PathBuf;

const TRACE_CAPACITY: usize = 1 << 20;

fn main() {
    let scale: u32 = match std::env::args().nth(1) {
        None => 5,
        Some(arg) => match arg.parse() {
            Ok(s) if s >= 1 => s,
            _ => {
                eprintln!("error: scale must be a positive integer, got `{arg}`");
                eprintln!("usage: trace [scale] [out-dir]");
                std::process::exit(2);
            }
        },
    };
    let out_dir: PathBuf = std::env::args()
        .nth(2)
        .map_or_else(|| PathBuf::from("target/traces"), PathBuf::from);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };

    let mut dep = build_sqlite(
        IsolationMode::Full,
        Partitioning::Split,
        UNIKRAFT_BOUNDARY_TAX,
    )
    .unwrap();
    dep.sys.enable_tracing(TRACE_CAPACITY);
    let mut db = dep.open_db(64).unwrap();
    let t0 = dep.sys.now();
    dep.run_speedtest(&mut db, &cfg).unwrap();
    let cycles = dep.sys.now() - t0;

    // The tracer's histograms must agree with the kernel counters —
    // this is the acceptance criterion the exporters are held to.
    let cross_calls = dep.sys.stats().cross_calls;
    let traced_calls = dep.sys.metrics().expect("tracing enabled").total_calls();
    assert_eq!(
        traced_calls, cross_calls,
        "histogram counts must equal SysStats::cross_calls"
    );
    audit_gate(&dep.sys, "trace SQLite split");

    let stem = format!("sqlite_split_scale{scale}");
    let paths = match dump_observability(&mut dep.sys, &out_dir, &stem) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!("error: cannot write to {}: {e}", out_dir.display());
            std::process::exit(1);
        }
    };

    println!("speedtest1 scale {scale}: {cycles} cycles, {cross_calls} cross-calls");
    println!("{}", metrics_summary(&dep.sys));
    let trace = dep.sys.trace().expect("tracing enabled");
    println!(
        "trace ring: {} records held / {} recorded / {} dropped",
        trace.len(),
        trace.total_recorded(),
        trace.dropped()
    );
    for p in paths {
        println!("wrote {}", p.display());
    }
}

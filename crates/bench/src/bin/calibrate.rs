//! Calibration probe: prints the raw numbers behind the Figure 10
//! ratios so the cost constants can be fixed once, globally.

use cubicle_bench::scenario::{speedtest_total_cycles, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::SpeedtestConfig;
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    println!("scale = {scale} ({} rows)", cfg.rows());

    let run = |label: &str, mode: IsolationMode, p: Partitioning, tax: u64| -> u64 {
        let t = Instant::now();
        let (cycles, _) = speedtest_total_cycles(mode, p, tax, &cfg).unwrap();
        println!(
            "{label:<28} {cycles:>16} cycles   ({:.2} sim-s)   [host {:.1?}]",
            cycles as f64 / 2.2e9,
            t.elapsed()
        );
        cycles
    };

    let linux = run(
        "Linux (native)",
        IsolationMode::Unikraft,
        Partitioning::Merged,
        0,
    );
    let unikraft = run(
        "Unikraft",
        IsolationMode::Unikraft,
        Partitioning::Merged,
        UNIKRAFT_BOUNDARY_TAX,
    );
    let cub3 = run(
        "CubicleOS-3",
        IsolationMode::Full,
        Partitioning::Merged,
        UNIKRAFT_BOUNDARY_TAX,
    );
    let cub4 = run(
        "CubicleOS-4",
        IsolationMode::Full,
        Partitioning::Split,
        UNIKRAFT_BOUNDARY_TAX,
    );
    let gen3 = run(
        "Genode-3 (Linux)",
        cubicle_ipc::mode_for(cubicle_ipc::GENODE_LINUX),
        Partitioning::Merged,
        0,
    );
    let gen4 = run(
        "Genode-4 (Linux)",
        cubicle_ipc::mode_for(cubicle_ipc::GENODE_LINUX),
        Partitioning::Split,
        0,
    );
    println!();
    println!("--- Fig 10a (slowdown vs Linux; paper: 2.8 / 1.4 / 29 / 4.1 / 5.4) ---");
    for (label, v) in [
        ("Unikraft", unikraft),
        ("Genode-3", gen3),
        ("Genode-4", gen4),
        ("CubicleOS-3", cub3),
        ("CubicleOS-4", cub4),
    ] {
        println!("{label:<14} {:.2}x", v as f64 / linux as f64);
    }
    println!();
    println!("--- Fig 10b (4-comp vs 3-comp; paper: 7.5 / 4.5 / 4.7 / ~20 / 1.4) ---");
    for k in cubicle_ipc::KERNELS {
        let m3 = run(
            &format!("{}-3", k.kernel),
            cubicle_ipc::mode_for(k),
            Partitioning::Merged,
            0,
        );
        let m4 = run(
            &format!("{}-4", k.kernel),
            cubicle_ipc::mode_for(k),
            Partitioning::Split,
            0,
        );
        println!("{:<14} {:.2}x", k.kernel, m4 as f64 / m3 as f64);
    }
    println!(
        "{:<14} {:.2}x  (CubicleOS)",
        "CubicleOS",
        cub4 as f64 / cub3 as f64
    );
}

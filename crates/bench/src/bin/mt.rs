//! `mt` — the multi-core smoke gate.
//!
//! Exercises the interleaved fig-5 siege at N cores and checks the
//! tentpole's hard guarantees:
//!
//! 1. **Replay determinism**: two sieges with the same scheduler seed
//!    produce bit-identical digests, makespans and per-core clocks.
//! 2. **Audit**: the kernel invariant auditor — including the
//!    concurrency/lock-discipline class — is clean after the siege.
//! 3. **Containment**: a faultstorm leg (wild RAMFS access from a
//!    non-zero core mid-siege) is fully contained and the deployment
//!    serves again after a microreboot.
//! 4. **Sanitizer**: a CubicleSan leg re-runs the siege with race
//!    detection on — the digest must match the detection-off run (the
//!    detector is a pure observer), the run must be race-free with an
//!    acyclic lock order, and a *seeded* lock elision must be caught
//!    with exactly the planted access pair attributed.
//!
//! Exit status is non-zero unless all four hold. The CI `mt-smoke` job
//! greps the literal `audit: clean`, `replay: deterministic`,
//! `uncontained: 0`, `races: 0` and `lockorder: acyclic` lines from
//! stdout.
//!
//! Usage: `mt [cores] [requests]`

use cubicle_bench::mt::{boot_and_siege, faultstorm_leg, MtConfig};
use cubicle_core::{IsolationMode, System};

/// Seed of the smoke siege (the run is a pure function of it).
const SEED: u64 = 0xC0DE_CAFE;

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let requests: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    println!("== mt smoke: {cores} cores x {requests} requests, seed {SEED:#x} ==");
    let cfg = MtConfig::new(cores, requests, SEED);
    let (a, sys) = boot_and_siege(IsolationMode::Full, &cfg).expect("siege A");
    let (b, _) = boot_and_siege(IsolationMode::Full, &cfg).expect("siege B");
    println!(
        "siege: {}/{} requests, makespan {} cycles, {} switches, digest {:#018x}",
        a.requests_done, requests, a.makespan_cycles, a.switches, a.digest
    );
    for (i, c) in a.core_cycles.iter().enumerate() {
        println!("  core {i}: {c} cycles");
    }
    let replay_ok = a == b;
    if !replay_ok {
        println!(
            "DIVERGED: digests {:#018x} vs {:#018x}, makespans {} vs {}",
            a.digest, b.digest, a.makespan_cycles, b.makespan_cycles
        );
    }

    let audit = sys.audit();
    let audit_ok = audit.is_clean();
    if !audit_ok {
        println!("audit findings:\n{audit}");
    }

    println!("== cubiclesan leg ({cores} cores) ==");
    let mut san_cfg = cfg.clone();
    san_cfg.race_detection = true;
    let (s, san_sys) =
        boot_and_siege(IsolationMode::Full, &san_cfg).expect("siege with CubicleSan");
    let san_observer_ok = s == a;
    if !san_observer_ok {
        println!(
            "DIVERGED: detection-on digest {:#018x} vs off {:#018x}",
            s.digest, a.digest
        );
    }
    // The verdict block of the fault-audit export, verbatim — CI greps
    // `^races: 0$` and `^lockorder: acyclic$` from these lines.
    for line in san_sys.export_fault_audit().lines() {
        if line.starts_with("sanitizer:")
            || line.starts_with("races:")
            || line.starts_with("lockorder:")
            || line.starts_with("lockset-violations:")
        {
            println!("{line}");
        }
    }
    let san_clean = san_sys.race_reports().is_empty()
        && san_sys.lockorder_cycle().is_none()
        && san_sys.lockset_violations().is_empty();

    // Seeded lock elision: plant the classic bug and require CubicleSan
    // to report exactly that access pair — a silent detector must fail
    // the gate just as loudly as a false positive.
    let mut seeded = System::new(IsolationMode::Full);
    seeded.set_race_detection(true);
    seeded.set_num_cores(2);
    seeded.switch_to_core(0);
    seeded.san_probe_locked_for_test();
    seeded.switch_to_core(1);
    seeded.san_probe_elided_for_test();
    let seeded_caught = seeded.race_reports().len() == 1
        && seeded.race_reports()[0]
            .to_string()
            .contains("san_probe:page_meta.elided_write");
    if !seeded_caught {
        println!(
            "MISSED: seeded lock elision not attributed: {:?}",
            seeded.race_reports()
        );
    }

    println!("== faultstorm leg ({cores} cores) ==");
    let uncontained = faultstorm_leg(cores, SEED ^ 0xF00D);

    println!("== summary ==");
    println!("requests: {}", a.requests_done);
    println!("uncontained: {uncontained}");
    println!(
        "replay: {}",
        if replay_ok {
            "deterministic"
        } else {
            "DIVERGED"
        }
    );
    println!("audit: {}", if audit_ok { "clean" } else { "dirty" });
    println!(
        "sanitizer: {}",
        if san_observer_ok && san_clean && seeded_caught {
            "clean"
        } else {
            "FAILED"
        }
    );
    if !replay_ok
        || !audit_ok
        || uncontained != 0
        || a.requests_done != requests
        || !san_observer_ok
        || !san_clean
        || !seeded_caught
    {
        std::process::exit(1);
    }
}

//! `mt` — the multi-core smoke gate.
//!
//! Exercises the interleaved fig-5 siege at N cores and checks the
//! tentpole's hard guarantees:
//!
//! 1. **Replay determinism**: two sieges with the same scheduler seed
//!    produce bit-identical digests, makespans and per-core clocks.
//! 2. **Audit**: the kernel invariant auditor — including the
//!    concurrency/lock-discipline class — is clean after the siege.
//! 3. **Containment**: a faultstorm leg (wild RAMFS access from a
//!    non-zero core mid-siege) is fully contained and the deployment
//!    serves again after a microreboot.
//!
//! Exit status is non-zero unless all three hold. The CI `mt-smoke`
//! job greps the literal `audit: clean`, `replay: deterministic` and
//! `uncontained: 0` lines from stdout.
//!
//! Usage: `mt [cores] [requests]`

use cubicle_bench::mt::{boot_and_siege, faultstorm_leg, MtConfig};
use cubicle_core::IsolationMode;

/// Seed of the smoke siege (the run is a pure function of it).
const SEED: u64 = 0xC0DE_CAFE;

fn main() {
    let cores: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let requests: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    println!("== mt smoke: {cores} cores x {requests} requests, seed {SEED:#x} ==");
    let cfg = MtConfig::new(cores, requests, SEED);
    let (a, sys) = boot_and_siege(IsolationMode::Full, &cfg).expect("siege A");
    let (b, _) = boot_and_siege(IsolationMode::Full, &cfg).expect("siege B");
    println!(
        "siege: {}/{} requests, makespan {} cycles, {} switches, digest {:#018x}",
        a.requests_done, requests, a.makespan_cycles, a.switches, a.digest
    );
    for (i, c) in a.core_cycles.iter().enumerate() {
        println!("  core {i}: {c} cycles");
    }
    let replay_ok = a == b;
    if !replay_ok {
        println!(
            "DIVERGED: digests {:#018x} vs {:#018x}, makespans {} vs {}",
            a.digest, b.digest, a.makespan_cycles, b.makespan_cycles
        );
    }

    let audit = sys.audit();
    let audit_ok = audit.is_clean();
    if !audit_ok {
        println!("audit findings:\n{audit}");
    }

    println!("== faultstorm leg ({cores} cores) ==");
    let uncontained = faultstorm_leg(cores, SEED ^ 0xF00D);

    println!("== summary ==");
    println!("requests: {}", a.requests_done);
    println!("uncontained: {uncontained}");
    println!(
        "replay: {}",
        if replay_ok {
            "deterministic"
        } else {
            "DIVERGED"
        }
    );
    println!("audit: {}", if audit_ok { "clean" } else { "dirty" });
    if !replay_ok || !audit_ok || uncontained != 0 || a.requests_done != requests {
        std::process::exit(1);
    }
}

//! `crashstorm` — the seeded crash-consistency campaign.
//!
//! Two legs:
//!
//! 1. **Commit-path storms**: N seeds (default 5) drive quarantines into
//!    the sqldb durability path — before the WAL sync, mid-frame, between
//!    commit and checkpoint, mid-checkpoint, and inside a RAMFS journal
//!    append. After every crash the offender is microrebooted, the
//!    database reopened, and the durability contract checked: every
//!    synced transaction present in full, the recovered set a gap-free
//!    prefix, nothing torn, nothing phantom, `integrity_check` ok.
//!    Every storm runs twice; the semantic digests must match
//!    bit-for-bit (replay determinism).
//! 2. **Figure 5 NGINX, without re-population**: with the RAMFS inode
//!    journal enabled, the web deployment keeps serving the *same bytes*
//!    after its file-system cubicle is quarantined and microrebooted —
//!    no `put_file` after the crash, unlike `faultstorm`'s leg.
//!
//! Exit status is non-zero unless every injection recovered cleanly.
//! The CI smoke job greps the literal `durability: 0 violations`,
//! `replay: deterministic` and `audit: clean` lines from stdout.
//!
//! Usage: `crashstorm [seeds] [injections-per-seed]`

use cubicle_bench::inject::run_crash_campaign;
use cubicle_core::IsolationMode;
use cubicle_httpd::boot_web;
use cubicle_mpk::VAddr;
use cubicle_net::WireModel;

/// Base seed of the campaign series (disjoint from `faultstorm`'s).
const BASE_SEED: u64 = 0xD1_5C_CA;

/// Journal region for the NGINX leg: 64 pages = 256 KiB.
const NGINX_JOURNAL_PAGES: usize = 64;

fn fast_wire() -> WireModel {
    WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 0,
    }
}

/// The no-repopulation leg: NGINX serves identical bytes across a RAMFS
/// quarantine + microreboot, courtesy of the inode journal. Returns the
/// number of violations (0 on success).
fn nginx_leg() -> u64 {
    println!("== nginx (fig. 5, journal recovery) leg ==");
    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    dep.sys.set_fault_containment(true);
    dep.enable_ramfs_journal(NGINX_JOURNAL_PAGES)
        .expect("enable journal");
    let body: Vec<u8> = (0..8_192u32).map(|i| (i % 253) as u8).collect();
    dep.put_file("/index.html", &body).expect("put_file");
    dep.put_file("/app.js", b"console.log('cubicles')")
        .expect("put_file");
    let (_, warm) = dep.fetch("/index.html", fast_wire()).expect("warm fetch");
    assert_eq!(warm.status, 200, "warm fetch must serve");
    assert_eq!(warm.body, body, "warm fetch must serve the payload");

    // RAMFS goes wild mid-flight and is quarantined on the spot.
    let ramfs = dep.ramfs_cid;
    let r = dep
        .sys
        .run_in_cubicle(ramfs, |sys| sys.read_vec(VAddr::new(0x0FFF_0000), 8));
    assert!(r.is_err(), "wild read must fault");
    let mut violations = 0;
    if !dep.sys.cubicle(ramfs).is_quarantined() {
        println!("VIOLATION: RAMFS not quarantined after wild read");
        violations += 1;
    }

    // Microreboot. No put_file from here on: the restart hook's journal
    // replay is the only thing standing between NGINX and a 404.
    dep.sys.restart(ramfs).expect("restart RAMFS");
    let stats = dep.sys.stats();
    if stats.ramfs_journal_replays == 0 {
        println!("VIOLATION: microreboot did not replay the inode journal");
        violations += 1;
    }
    match dep.fetch("/index.html", fast_wire()) {
        Ok((_, resp)) if resp.status == 200 && resp.body == body => {
            println!("post-reboot fetch: HTTP 200, body identical (no re-put)");
        }
        Ok((_, resp)) => {
            println!(
                "VIOLATION: post-reboot fetch lost the file (HTTP {}, {} bytes)",
                resp.status,
                resp.body.len()
            );
            violations += 1;
        }
        Err(e) => {
            println!("VIOLATION: post-reboot fetch failed ({e})");
            violations += 1;
        }
    }
    match dep.fetch("/app.js", fast_wire()) {
        Ok((_, resp)) if resp.status == 200 => {
            println!("post-reboot fetch: second file served too");
        }
        _ => {
            println!("VIOLATION: second file lost across the reboot");
            violations += 1;
        }
    }
    let audit = dep.sys.audit();
    if audit.is_clean() {
        println!("post-reboot audit: clean");
    } else {
        println!("VIOLATION: post-reboot audit dirty:\n{audit}");
        violations += 1;
    }
    let stats = dep.sys.stats();
    println!(
        "nginx leg: quarantines={} restarts={} journal-replays={}",
        stats.quarantines, stats.restarts, stats.ramfs_journal_replays
    );
    violations
}

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let injections: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);

    println!("== crash storms: {seeds} seed(s) x {injections} injection(s) ==");
    let mut total_injected = 0;
    let mut total_violations = 0;
    let mut wal_replays = 0;
    let mut journal_replays = 0;
    let mut replays_ok = true;
    for i in 0..seeds {
        let seed = BASE_SEED + i;
        let a = run_crash_campaign(seed, injections);
        let b = run_crash_campaign(seed, injections);
        let identical = a.digest == b.digest;
        replays_ok &= identical;
        total_injected += a.injected;
        total_violations += a.violations;
        wal_replays += a.wal_replays;
        journal_replays += a.ramfs_journal_replays;
        println!(
            "seed {seed:#x}: injected={} recovered={} quarantines={} restarts={} \
             wal-replays={} journal-replays={} digest={:#018x} replay={}",
            a.injected,
            a.recovered,
            a.quarantines,
            a.restarts,
            a.wal_replays,
            a.ramfs_journal_replays,
            a.digest,
            if identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
        );
        for n in &a.notes {
            println!("VIOLATION: {n}");
        }
    }

    total_violations += nginx_leg();

    println!("== summary ==");
    println!("injected: {total_injected}");
    println!("recovery: wal-replays={wal_replays} journal-replays={journal_replays}");
    println!("durability: {total_violations} violations");
    println!(
        "replay: {}",
        if replays_ok {
            "deterministic"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "audit: {}",
        if total_violations == 0 {
            "clean"
        } else {
            "dirty"
        }
    );
    if total_violations != 0 || !replays_ok {
        std::process::exit(1);
    }
}

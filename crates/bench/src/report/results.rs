//! Machine-readable benchmark results (`BENCH_results.json`).
//!
//! Every harness that measures something appends its entries here, so the
//! perf trajectory of the *simulator itself* (host wall-clock) can be
//! tracked across PRs next to the simulated cycle counts (which the cost
//! model fixes). The file is JSON:
//!
//! ```json
//! {
//!   "schema": "cubicle-bench/v1",
//!   "entries": [
//!     {"name": "checked_4k_read", "wall_ns": 77, "samples": 8663,
//!      "sim_cycles": 73, "seed_wall_ns": 77}
//!   ]
//! }
//! ```
//!
//! `seed_wall_ns` is optional: micro-benches carry the wall-clock numbers
//! recorded at the seed commit (before the simulator hot-path overhaul)
//! so before/after speedups are visible in the file itself.
//!
//! Different harnesses merge into one file: [`BenchResults::save`] loads
//! whatever is already there and replaces entries by name.

use std::path::{Path, PathBuf};

/// One measured benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchEntry {
    /// Stable benchmark identifier.
    pub name: String,
    /// Best (minimum) host wall-clock time per iteration, in nanoseconds.
    pub wall_ns: u64,
    /// Number of timing samples behind the minimum.
    pub samples: u64,
    /// Simulated cycles per iteration (cost-model time; must not change
    /// when the host-side simulator is optimised).
    pub sim_cycles: u64,
    /// Wall-clock ns/iter recorded at the seed commit, when known.
    pub seed_wall_ns: Option<u64>,
}

impl BenchEntry {
    /// Speedup of the current wall-clock over the recorded seed baseline.
    pub fn speedup_vs_seed(&self) -> Option<f64> {
        self.seed_wall_ns
            .filter(|_| self.wall_ns > 0)
            .map(|seed| seed as f64 / self.wall_ns as f64)
    }
}

/// A set of results, merged into `BENCH_results.json` on save.
#[derive(Default, Debug)]
pub struct BenchResults {
    entries: Vec<BenchEntry>,
}

impl BenchResults {
    /// Creates an empty result set.
    pub fn new() -> BenchResults {
        BenchResults::default()
    }

    /// The default output path: `$CUBICLE_BENCH_OUT` if set, otherwise
    /// `BENCH_results.json` at the workspace root.
    pub fn default_path() -> PathBuf {
        match std::env::var_os("CUBICLE_BENCH_OUT") {
            Some(p) => PathBuf::from(p),
            None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_results.json"),
        }
    }

    /// Records one benchmark.
    pub fn push(
        &mut self,
        name: &str,
        wall_ns: u64,
        samples: u64,
        sim_cycles: u64,
        seed_wall_ns: Option<u64>,
    ) {
        self.entries.push(BenchEntry {
            name: name.to_string(),
            wall_ns,
            samples,
            sim_cycles,
            seed_wall_ns,
        });
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[BenchEntry] {
        &self.entries
    }

    /// Serialises to the JSON document format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"cubicle-bench/v1\",\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ns\": {}, \"samples\": {}, \"sim_cycles\": {}",
                escape(&e.name),
                e.wall_ns,
                e.samples,
                e.sim_cycles,
            ));
            if let Some(seed) = e.seed_wall_ns {
                out.push_str(&format!(", \"seed_wall_ns\": {seed}"));
                if let Some(f) = e.speedup_vs_seed() {
                    out.push_str(&format!(", \"speedup_vs_seed\": {f:.2}"));
                }
            }
            out.push('}');
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document produced by [`BenchResults::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<BenchResults, String> {
        let root = json::parse(text)?;
        let entries = root
            .get("entries")
            .and_then(json::Value::as_array)
            .ok_or("missing \"entries\" array")?;
        let mut out = BenchResults::new();
        for e in entries {
            let num = |k: &str| e.get(k).and_then(json::Value::as_u64);
            out.entries.push(BenchEntry {
                name: e
                    .get("name")
                    .and_then(json::Value::as_str)
                    .ok_or("entry without \"name\"")?
                    .to_string(),
                wall_ns: num("wall_ns").ok_or("entry without \"wall_ns\"")?,
                samples: num("samples").unwrap_or(0),
                sim_cycles: num("sim_cycles").unwrap_or(0),
                seed_wall_ns: num("seed_wall_ns"),
            });
        }
        Ok(out)
    }

    /// Merges these entries into the results file at `path` (replacing
    /// same-name entries, keeping the rest) and writes it back. A missing
    /// or unparsable file is treated as empty.
    ///
    /// # Errors
    ///
    /// I/O errors writing the file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut merged = std::fs::read_to_string(path)
            .ok()
            .and_then(|text| BenchResults::from_json(&text).ok())
            .unwrap_or_default();
        merged
            .entries
            .retain(|e| !self.entries.iter().any(|n| n.name == e.name));
        merged.entries.extend(self.entries.iter().cloned());
        std::fs::write(path, merged.to_json())
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A minimal JSON parser (objects, arrays, strings, numbers, booleans,
/// null) — just enough to read our own results file and validate it in
/// tests/CI without external dependencies.
pub mod json {
    use std::collections::HashMap;

    /// A parsed JSON value.
    #[derive(Clone, PartialEq, Debug)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number (kept as f64).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object.
        Obj(HashMap<String, Value>),
    }

    impl Value {
        /// Looks up a key of an object.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.get(key),
                _ => None,
            }
        }

        /// The elements of an array.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The contents of a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A non-negative integral number as u64.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
                _ => None,
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b.get(*pos..*pos + len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf-8")?);
                    *pos += len;
                }
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut out = HashMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}"));
            }
            let key = string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}"));
            }
            *pos += 1;
            out.insert(key, value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchResults {
        let mut r = BenchResults::new();
        r.push("a", 100, 10, 1_000, Some(200));
        r.push("b", 50, 4, 0, None);
        r
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = BenchResults::from_json(&r.to_json()).unwrap();
        assert_eq!(back.entries(), r.entries());
    }

    #[test]
    fn speedup_reported() {
        let r = sample();
        assert_eq!(r.entries()[0].speedup_vs_seed(), Some(2.0));
        assert_eq!(r.entries()[1].speedup_vs_seed(), None);
        assert!(r.to_json().contains("\"speedup_vs_seed\": 2.00"));
    }

    #[test]
    fn save_merges_by_name() {
        let dir = std::env::temp_dir().join(format!("bench_results_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        sample().save(&path).unwrap();
        let mut update = BenchResults::new();
        update.push("b", 25, 8, 7, None);
        update.push("c", 1, 1, 1, None);
        update.save(&path).unwrap();
        let merged = BenchResults::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let names: Vec<_> = merged.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(merged.entries()[1].wall_ns, 25, "entry b was replaced");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parser_handles_general_json() {
        let v = json::parse(r#"{"x": [1, -2.5, "s\n", true, null], "y": {}}"#).unwrap();
        let arr = v.get("x").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], json::Value::Num(-2.5));
        assert_eq!(arr[2].as_str(), Some("s\n"));
        assert_eq!(arr[3], json::Value::Bool(true));
        assert_eq!(arr[4], json::Value::Null);
        assert!(v.get("y").is_some());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("{} extra").is_err());
        assert!(json::parse("\"unterminated").is_err());
    }
}

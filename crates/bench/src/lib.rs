//! # cubicle-bench — harnesses that regenerate every table and figure
//!
//! Each `benches/figNN_*.rs` target (plain `harness = false` binaries run
//! by `cargo bench`) prints the rows/series of one paper table or figure.
//! This library holds the shared deployment builders and reporting
//! helpers, most importantly [`scenario::SqliteDeployment`]: the SQLite
//! stack in the paper's 3- and 4-component partitionings (Figure 9) under
//! any isolation mode or IPC kernel model.

pub mod inject;
pub mod mt;
pub mod report;
pub mod scenario;

//! Multi-core NGINX siege: the fig-5/fig-7 deployment serving many
//! interleaved connections across N simulated cores.
//!
//! Host execution stays sequential — exactly one simulated core runs at
//! a time — but simulated time is concurrent: every core owns a private
//! cycle counter, PKRU and software TLB, and the seeded
//! [`CoreScheduler`] decides which core executes the next top-level
//! step. Each core drives its own external [`SimClient`] (one in-flight
//! HTTP connection per core, a fresh connection per request), so a
//! 4-core siege has four connections interleaving through the shared
//! NGINX/LWIP/VFS/RAMFS cubicles, each cross-call chain running on a
//! pooled per-core stack.
//!
//! The headline number is the **makespan**: the maximum per-core cycle
//! delta over the siege. Total simulated work is conserved as cores are
//! added, so makespan shrinks roughly linearly — the
//! throughput-vs-cores curve recorded in `BENCH_results.json`.
//!
//! Everything is a pure function of the scheduler seed: replaying a
//! siege with the same seed reproduces every core switch, cycle count
//! and response byte, folded into [`MtOutcome::digest`] for
//! bit-identical comparison.

use cubicle_core::{CubicleError, IsolationMode, Result, System};
use cubicle_httpd::{boot_web, HttpResponse, WebDeployment, HTTP_PORT};
use cubicle_mpk::CoreScheduler;
use cubicle_net::{SimClient, WireModel};

/// Client ports used by the multi-core siege (distinct from the
/// single-core `fetch` path's 40 000 range, so the two can mix).
const MT_PORT_BASE: u16 = 41_000;

/// Idle pump/poll rounds before a connection is declared stalled. More
/// generous than `fetch`'s 64: another core's poll can progress our
/// connection, so several quiet rounds in a row are normal.
const STALL_ROUNDS: u32 = 512;

/// The client-side per-request overhead is charged in chunks of this
/// many cycles, one per scheduler step, instead of one lump. Chunking
/// bounds the clock skew between cores to roughly quantum × chunk: a
/// core that jumped a whole request-overhead (11M cycles) ahead would
/// turn every monitor-lock acquisition by a lagging core into a
/// skew-sized spin-wait, serializing the siege for no physical reason —
/// the real client work is spread over those milliseconds.
const OVERHEAD_CHUNK: u64 = 256_000;

/// Configuration of one multi-core siege run.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Simulated cores (= concurrent connections).
    pub cores: usize,
    /// Total requests, distributed round-robin over the cores.
    pub requests: usize,
    /// Scheduler seed: the full interleaving is a pure function of it.
    pub seed: u64,
    /// Network cost model charged on the issuing core's clock.
    pub wire: WireModel,
    /// First client port. Sieges sharing one deployment must use
    /// disjoint ranges — LWIP keeps per-4-tuple connection state, so a
    /// reused port looks like a retransmission of a dead connection.
    pub port_base: u16,
    /// Paths to request, cycled per request (must exist; see
    /// [`prepare_web_files`]).
    pub paths: Vec<String>,
    /// Run the siege with CubicleSan enabled
    /// ([`System::set_race_detection`]). The detector is a pure
    /// observer, so the outcome (digest included) is bit-identical
    /// either way; only host wall time changes. Default off.
    pub race_detection: bool,
}

impl MtConfig {
    /// A siege at `cores` cores with the standard file set, `requests`
    /// requests and the default wire model.
    pub fn new(cores: usize, requests: usize, seed: u64) -> MtConfig {
        MtConfig {
            cores,
            requests,
            seed,
            wire: WireModel::default(),
            port_base: MT_PORT_BASE,
            paths: STANDARD_FILES
                .iter()
                .map(|(p, _)| (*p).to_string())
                .collect(),
            race_detection: false,
        }
    }
}

/// The standard document set: one small file (request-overhead bound,
/// the paper's fig-7 latency floor) and one bulk file (streaming bound).
pub const STANDARD_FILES: &[(&str, usize)] = &[("/1k.html", 1024), ("/16k.html", 16 * 1024)];

/// Populates the deployment's document root with [`STANDARD_FILES`]
/// (deterministic byte patterns, no host randomness).
///
/// # Errors
///
/// File-system errors from the VFS path.
pub fn prepare_web_files(dep: &mut WebDeployment) -> Result<()> {
    for &(path, len) in STANDARD_FILES {
        let body: Vec<u8> = (0..len).map(|i| b'a' + (i % 23) as u8).collect();
        dep.put_file(path, &body)?;
    }
    Ok(())
}

/// What one siege run produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MtOutcome {
    /// Cores the siege ran on.
    pub cores: usize,
    /// Requests completed (HTTP 200 each; anything else is an error).
    pub requests_done: usize,
    /// Response-body bytes received across all connections.
    pub bytes: u64,
    /// Maximum per-core cycle delta over the siege — the simulated
    /// wall-clock of the whole run.
    pub makespan_cycles: u64,
    /// Cycle delta of each core individually.
    pub core_cycles: Vec<u64>,
    /// Scheduler decisions taken.
    pub steps: u64,
    /// Core switches performed.
    pub switches: u64,
    /// Order-sensitive fold of every completed request (core, latency,
    /// status, body bytes) and the final per-core clocks: two runs are
    /// bit-identical iff their digests match.
    pub digest: u64,
}

impl MtOutcome {
    /// Aggregate throughput in requests per million simulated cycles.
    pub fn requests_per_mcycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.requests_done as f64 * 1e6 / self.makespan_cycles as f64
    }
}

/// One core's private siege state: its request budget and the
/// connection currently in flight.
struct Lane {
    remaining: usize,
    inflight: Option<Inflight>,
    done: usize,
    bytes: u64,
    digest: u64,
}

struct Inflight {
    client: SimClient,
    t0: u64,
    /// Client-side request overhead still to charge (in chunks) before
    /// the connection starts pumping.
    overhead_left: u64,
    idle_rounds: u32,
}

/// SplitMix64-style mixing for the replay digest.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs one multi-core siege against an already-booted deployment
/// (files must be in place; see [`prepare_web_files`]). Grows the
/// machine to `cfg.cores` cores, then loops: ask the scheduler which
/// core goes next, switch the machine onto it, and advance that core's
/// connection by one step — start a request, or one client-pump /
/// server-poll round.
///
/// # Errors
///
/// A stalled connection, a non-200 response, or any kernel error.
///
/// # Panics
///
/// Panics if `cfg.cores` is zero.
pub fn run_siege(dep: &mut WebDeployment, cfg: &MtConfig) -> Result<MtOutcome> {
    assert!(cfg.cores >= 1, "a siege needs at least one core");
    // Enable-only: a caller that already armed CubicleSan on the System
    // (e.g. the faultstorm leg, which watches across two sieges) keeps
    // its accumulated history.
    if cfg.race_detection && !dep.sys.race_detection_enabled() {
        dep.sys.set_race_detection(true);
    }
    dep.sys.set_num_cores(cfg.cores);
    let start: Vec<u64> = (0..cfg.cores).map(|i| dep.sys.core_cycles(i)).collect();
    let mut sched = CoreScheduler::new(cfg.seed, cfg.cores);
    let mut lanes: Vec<Lane> = (0..cfg.cores)
        .map(|i| Lane {
            // round-robin request distribution
            remaining: cfg.requests / cfg.cores + usize::from(i < cfg.requests % cfg.cores),
            inflight: None,
            done: 0,
            bytes: 0,
            digest: 0,
        })
        .collect();
    let mut next_port = cfg.port_base;
    let mut next_path = 0usize;

    loop {
        let clocks: Vec<u64> = (0..cfg.cores).map(|i| dep.sys.core_cycles(i)).collect();
        let runnable: Vec<bool> = lanes
            .iter()
            .map(|l| l.remaining > 0 || l.inflight.is_some())
            .collect();
        let Some(core) = sched.next_core(&clocks, &runnable) else {
            break;
        };
        dep.sys.switch_to_core(core);
        let lane = &mut lanes[core];
        match lane.inflight.take() {
            None => {
                // Open the next connection: queue the request; the
                // client-side per-request cost is charged chunk-wise on
                // this core's clock by the following steps.
                let path = &cfg.paths[next_path % cfg.paths.len()];
                next_path += 1;
                let mut client =
                    SimClient::new(dep.net.netdev_slot, next_port, HTTP_PORT, cfg.wire);
                next_port = next_port.wrapping_add(1);
                client.send(format!("GET {path} HTTP/1.0\r\nHost: cubicle\r\n\r\n").as_bytes());
                lane.remaining -= 1;
                lane.inflight = Some(Inflight {
                    client,
                    t0: dep.sys.now(),
                    overhead_left: cfg.wire.request_overhead_cycles,
                    idle_rounds: 0,
                });
            }
            Some(mut f) if f.overhead_left > 0 => {
                let chunk = f.overhead_left.min(OVERHEAD_CHUNK);
                dep.sys.charge(chunk);
                f.overhead_left -= chunk;
                lane.inflight = Some(f);
            }
            Some(mut f) => {
                let processed = f.client.pump(&mut dep.sys);
                if f.client.fin_seen() {
                    let latency = dep.sys.now() - f.t0;
                    let resp = HttpResponse::parse(&f.client.received)
                        .ok_or_else(|| CubicleError::Component("malformed HTTP response".into()))?;
                    if resp.status != 200 {
                        return Err(CubicleError::Component(format!(
                            "siege request on core {core} got HTTP {}",
                            resp.status
                        )));
                    }
                    lane.done += 1;
                    lane.bytes += resp.body.len() as u64;
                    lane.digest = mix(lane.digest, core as u64);
                    lane.digest = mix(lane.digest, latency);
                    lane.digest = mix(lane.digest, u64::from(resp.status));
                    lane.digest = mix(lane.digest, resp.body.len() as u64);
                } else {
                    let progressed = dep.httpd.poll(&mut dep.sys)?;
                    if processed == 0 && progressed == 0 {
                        f.idle_rounds += 1;
                        if f.idle_rounds > STALL_ROUNDS {
                            return Err(CubicleError::Component(format!(
                                "siege connection on core {core} stalled after {} bytes",
                                f.client.received.len()
                            )));
                        }
                    } else {
                        f.idle_rounds = 0;
                    }
                    lane.inflight = Some(f);
                }
            }
        }
    }

    let core_cycles: Vec<u64> = (0..cfg.cores)
        .map(|i| dep.sys.core_cycles(i) - start[i])
        .collect();
    let mut digest = 0u64;
    for lane in &lanes {
        digest = mix(digest, lane.digest);
    }
    for &c in &core_cycles {
        digest = mix(digest, c);
    }
    Ok(MtOutcome {
        cores: cfg.cores,
        requests_done: lanes.iter().map(|l| l.done).sum(),
        bytes: lanes.iter().map(|l| l.bytes).sum(),
        makespan_cycles: core_cycles.iter().copied().max().unwrap_or(0),
        core_cycles,
        steps: sched.steps(),
        switches: sched.switches(),
        digest,
    })
}

/// Boots a fresh deployment, populates the standard files and runs one
/// siege — the one-call entry used by the benches, the determinism
/// tests and the CI gate.
///
/// # Errors
///
/// Boot or siege failures.
pub fn boot_and_siege(mode: IsolationMode, cfg: &MtConfig) -> Result<(MtOutcome, System)> {
    let mut dep = boot_web(mode)?;
    prepare_web_files(&mut dep)?;
    let outcome = run_siege(&mut dep, cfg)?;
    Ok((outcome, dep.sys))
}

/// The multi-core faultstorm leg: a siege is interrupted by a wild
/// access inside RAMFS issued from a non-zero core; the cubicle must be
/// quarantined, the fault must not cascade, the audit (including the
/// concurrency/lock-discipline class) must stay clean, and after a
/// microreboot a second siege must complete. CubicleSan stays armed
/// across the whole leg — both sieges plus the fault handling in
/// between — and any race report, lock-order cycle or lockset violation
/// counts as an escape. Returns the number of uncontained faults (0 on
/// success), printing `ESCAPE:` lines for each.
///
/// # Panics
///
/// Panics on boot/setup failures (not containment escapes).
pub fn faultstorm_leg(cores: usize, seed: u64) -> u64 {
    use cubicle_mpk::VAddr;

    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    dep.sys.set_fault_containment(true);
    dep.sys.set_race_detection(true);
    prepare_web_files(&mut dep).expect("prepare files");
    let mut cfg = MtConfig::new(cores, 2 * cores, seed);
    cfg.wire = WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 0,
    };
    run_siege(&mut dep, &cfg).expect("warm siege");

    let mut uncontained = 0;
    // RAMFS goes wild on the last core, mid-deployment.
    dep.sys.switch_to_core(cores - 1);
    let ramfs = dep.ramfs_cid;
    let r = dep
        .sys
        .run_in_cubicle(ramfs, |sys| sys.read_vec(VAddr::new(0x0FFF_0000), 8));
    if r.is_ok() {
        println!("ESCAPE: wild read from core {} did not fault", cores - 1);
        uncontained += 1;
    }
    if !dep.sys.cubicle(ramfs).is_quarantined() {
        println!("ESCAPE: RAMFS not quarantined after wild read");
        uncontained += 1;
    }
    for c in dep.sys.cubicles() {
        if c.is_quarantined() && c.id != ramfs {
            println!("ESCAPE: fault cascaded into {}", c.name);
            uncontained += 1;
        }
    }
    let audit = dep.sys.audit();
    if !audit.is_clean() {
        println!("ESCAPE: post-quarantine audit dirty:\n{audit}");
        uncontained += 1;
    }

    // Microreboot on core 0, repopulate, and siege again.
    dep.sys.switch_to_core(0);
    dep.sys.restart(ramfs).expect("restart RAMFS");
    prepare_web_files(&mut dep).expect("re-put after reboot");
    cfg.port_base += 2_000; // fresh 4-tuples for the second siege
    match run_siege(&mut dep, &cfg) {
        Ok(o) if o.requests_done == cfg.requests => {}
        Ok(o) => {
            println!(
                "ESCAPE: post-reboot siege finished only {}/{} requests",
                o.requests_done, cfg.requests
            );
            uncontained += 1;
        }
        Err(e) => {
            println!("ESCAPE: post-reboot siege failed: {e}");
            uncontained += 1;
        }
    }
    let audit = dep.sys.audit();
    if !audit.is_clean() {
        println!("ESCAPE: post-reboot audit dirty:\n{audit}");
        uncontained += 1;
    }
    for r in dep.sys.race_reports() {
        println!("ESCAPE: sanitizer race report: {r}");
        uncontained += 1;
    }
    if let Some(cycle) = dep.sys.lockorder_cycle() {
        println!("ESCAPE: sanitizer lock-order cycle: {cycle}");
        uncontained += 1;
    }
    for v in dep.sys.lockset_violations() {
        println!("ESCAPE: sanitizer lockset violation: {v}");
        uncontained += 1;
    }
    uncontained
}

//! Figure 7: NGINX download latency vs file size — baseline Unikraft
//! against CubicleOS with 8 partitions, over the simulated wire.

use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{
    assert_spans_partition, audit_gate, banner, dump_observability, factor, obs_dir,
};
use cubicle_core::IsolationMode;
use cubicle_httpd::boot_web;
use cubicle_net::WireModel;
use cubicle_ukbase::time::cycles_to_ms;

const SIZES: [(&str, usize); 15] = [
    ("1K", 1 << 10),
    ("2K", 2 << 10),
    ("4K", 4 << 10),
    ("8K", 8 << 10),
    ("16K", 16 << 10),
    ("32K", 32 << 10),
    ("64K", 64 << 10),
    ("128K", 128 << 10),
    ("256K", 256 << 10),
    ("512K", 512 << 10),
    ("1M", 1 << 20),
    ("2M", 2 << 20),
    ("4M", 4 << 20),
    ("6M", 6 << 20),
    ("8M", 8 << 20),
];

fn series(mode: IsolationMode) -> Vec<u64> {
    let mut dep = boot_web(mode).unwrap();
    // Profile the CubicleOS run only: the baseline has no cross-calls
    // worth a flamegraph.
    let obs = if matches!(mode, IsolationMode::Full) {
        obs_dir()
    } else {
        None
    };
    if obs.is_some() {
        dep.sys.enable_tracing(1 << 20);
    }
    for (name, size) in SIZES {
        let content: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        dep.put_file(&format!("/{name}.bin"), &content).unwrap();
    }
    let mut out = Vec::new();
    for (name, size) in SIZES {
        let (latency, resp) = dep
            .fetch(&format!("/{name}.bin"), WireModel::default())
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), size);
        out.push(latency);
    }
    audit_gate(&dep.sys, &format!("fig07 {mode:?}"));
    if let Some(dir) = obs {
        assert_spans_partition(&mut dep.sys, "fig07");
        for p in dump_observability(&mut dep.sys, &dir, "fig07").unwrap() {
            println!("wrote {}", p.display());
        }
    }
    out
}

fn main() {
    banner(
        "Figure 7: NGINX download latencies for different file sizes",
        "Sartakov et al., ASPLOS'21, Fig. 7 + §6.3 (siege-like driver, 8 partitions)",
    );
    eprintln!("running baseline (Unikraft)…");
    let t0 = std::time::Instant::now();
    let base = series(IsolationMode::Unikraft);
    eprintln!("running CubicleOS…");
    let cubicle = series(IsolationMode::Full);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let sim_cycles = base.iter().chain(&cubicle).sum();
    let mut recorded = BenchResults::new();
    recorded.push("fig07_latency_sweep", wall_ns, 1, sim_cycles, None);
    recorded.save(&BenchResults::default_path()).unwrap();

    println!(
        "{:>6} | {:>14} {:>14} | {:>9}",
        "size", "Baseline (ms)", "CubicleOS (ms)", "overhead"
    );
    println!("{}", "-".repeat(54));
    for (i, (name, _)) in SIZES.iter().enumerate() {
        println!(
            "{name:>6} | {:>14.3} {:>14.3} | {:>9}",
            cycles_to_ms(base[i]),
            cycles_to_ms(cubicle[i]),
            factor(cubicle[i] as f64 / base[i] as f64),
        );
    }

    // shape checks the paper calls out
    let small_overhead = cubicle[..6]
        .iter()
        .zip(&base[..6])
        .map(|(c, b)| *c as f64 / *b as f64)
        .fold(0.0f64, f64::max);
    let large_overhead = cubicle[SIZES.len() - 1] as f64 / base[SIZES.len() - 1] as f64;
    println!("\nshape summary:");
    println!(
        "  small files (≤32K): latency ≈ constant, overhead ≤ {} (paper: ~15%)",
        factor(small_overhead)
    );
    println!(
        "  large files (8M): overhead {} (paper: ~2x — \"partitioning NGINX into\n\
         \x20 eight components that exchange a high volume of data halves the throughput\")",
        factor(large_overhead)
    );
    println!("  slope grows once transfers exceed the 64 KiB LWIP send buffer (paper §6.3)");
}

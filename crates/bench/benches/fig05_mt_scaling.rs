//! Figure 5 (multi-core): NGINX siege throughput as simulated cores are
//! added — the headline curve of the multi-core simulator.
//!
//! Runs the same interleaved siege at 1, 2, 4 and 8 cores, each with one
//! concurrent connection per core, and reports the **makespan** (maximum
//! per-core cycle delta): with the work conserved, more cores means a
//! shorter makespan, i.e. higher aggregate throughput. Each run's
//! makespan lands in `BENCH_results.json` as `fig5_mt_scaling_<n>c`.

use cubicle_bench::mt::{boot_and_siege, MtConfig};
use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{audit_gate, banner, factor, ms};
use cubicle_core::IsolationMode;
use std::time::Instant;

/// Scheduler seed for the recorded curve (any seed reproduces its own
/// interleaving bit-identically; this one is the canonical record).
const SEED: u64 = 0x5CA1_AB1E;

fn main() {
    banner(
        "Figure 5 (multi-core): NGINX siege throughput vs simulated cores",
        "Sartakov et al., ASPLOS'21, Fig. 5/7 deployment, multi-core extension",
    );
    let requests: usize = std::env::var("CUBICLE_MT_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    let mut results = BenchResults::new();
    let mut baseline = None;
    println!("issuing {requests} requests per configuration…\n");
    println!(
        "{:>5} {:>9} {:>16} {:>12} {:>12} {:>10} {:>9}",
        "cores", "requests", "makespan", "sim time", "req/Mcycle", "speedup", "switches"
    );
    println!("{}", "-".repeat(79));
    for cores in [1usize, 2, 4, 8] {
        let cfg = MtConfig::new(cores, requests, SEED);
        let t0 = Instant::now();
        let (outcome, sys) = boot_and_siege(IsolationMode::Full, &cfg).unwrap();
        let wall_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(outcome.requests_done, requests, "every request must land");
        audit_gate(&sys, &format!("fig5 mt siege, {cores} cores"));

        let speedup = match baseline {
            None => {
                baseline = Some(outcome.makespan_cycles);
                1.0
            }
            Some(one_core) => one_core as f64 / outcome.makespan_cycles as f64,
        };
        println!(
            "{:>5} {:>9} {:>16} {:>12} {:>12.3} {:>10} {:>9}",
            cores,
            outcome.requests_done,
            outcome.makespan_cycles,
            ms(outcome.makespan_cycles),
            outcome.requests_per_mcycle(),
            factor(speedup),
            outcome.switches,
        );
        if cores == 4 {
            assert!(
                speedup >= 2.0,
                "acceptance: >=2x aggregate throughput at 4 cores, got {speedup:.2}x"
            );
        }
        results.push(
            &format!("fig5_mt_scaling_{cores}c"),
            wall_ns,
            1,
            outcome.makespan_cycles,
            None,
        );
    }
    // CubicleSan overhead A/B: the same 4-core siege with the race
    // detector off and on. The detector is a pure observer, so the
    // simulated cycle counts must be EQUAL — only the host wall clock
    // pays for the vector clocks and locksets.
    println!("\nCubicleSan A/B (4 cores, detection off vs on):");
    let mut off_cfg = MtConfig::new(4, requests, SEED);
    let t0 = Instant::now();
    let (off, sys_off) = boot_and_siege(IsolationMode::Full, &off_cfg).unwrap();
    let off_wall = t0.elapsed().as_nanos() as u64;
    audit_gate(&sys_off, "fig5 mt siege, racedetect off");
    off_cfg.race_detection = true;
    let t0 = Instant::now();
    let (on, sys_on) = boot_and_siege(IsolationMode::Full, &off_cfg).unwrap();
    let on_wall = t0.elapsed().as_nanos() as u64;
    audit_gate(&sys_on, "fig5 mt siege, racedetect on");
    assert_eq!(
        off.makespan_cycles, on.makespan_cycles,
        "the detector must be a pure observer: simulated cycles identical"
    );
    assert_eq!(off.digest, on.digest, "bit-identical replay either way");
    assert!(
        sys_on.race_reports().is_empty() && sys_on.lockorder_cycle().is_none(),
        "the recorded curve must be race-free with an acyclic lock order"
    );
    println!(
        "  off: {:.1} ms host ({} sim cycles)   on: {:.1} ms host ({} sim cycles)   \
         host overhead {}",
        off_wall as f64 / 1e6,
        off.makespan_cycles,
        on_wall as f64 / 1e6,
        on.makespan_cycles,
        factor(on_wall as f64 / off_wall.max(1) as f64),
    );
    results.push(
        "fig5_mt_racedetect_off",
        off_wall,
        1,
        off.makespan_cycles,
        None,
    );
    results.push(
        "fig5_mt_racedetect_on",
        on_wall,
        1,
        on.makespan_cycles,
        None,
    );

    results.save(&BenchResults::default_path()).unwrap();
    println!(
        "\nmakespan = max per-core cycle delta; work is conserved as cores are\n\
         added, so the curve is the aggregate throughput scaling of the\n\
         re-entrant monitor (stack pools + per-core PKRU/TLB)."
    );
}

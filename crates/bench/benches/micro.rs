//! Micro-benchmarks of the isolation primitives (host wall-clock of the
//! simulator — useful to keep the simulator itself fast; the *simulated*
//! cycle costs are fixed by the cost model).
//!
//! Self-timed with a small min-of-samples harness so the suite runs
//! with no external dependencies (the build must work fully offline).
//! The *minimum* over batched samples is reported: under a noisy shared
//! host it is the only stable estimator of the code's intrinsic speed
//! (every source of interference only ever adds time).
//! Besides the console table, results land in `BENCH_results.json`
//! (see `cubicle_bench::report::results`) together with the wall-clock
//! numbers recorded at the seed commit, so the speedup trajectory of the
//! simulator hot path is tracked across PRs.

use cubicle_bench::report::results::BenchResults;
use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, IsolationMode, System, Value,
};
use cubicle_httpd::boot_web;
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::rng::Rng64;
use cubicle_mpk::PAGE_SIZE;
use cubicle_net::WireModel;
use std::hint::black_box;
use std::time::Instant;

struct Dummy;
impl_component!(Dummy);

/// Wall-clock ns/iter recorded at the seed commit (`e242bd9`, before the
/// simulator hot-path overhaul: HashMap page table, two-pass check+copy,
/// no TLB) on the reference dev container. Entries keep these forever so
/// `BENCH_results.json` shows before/after numbers side by side.
const SEED_WALL_NS: &[(&str, u64)] = &[
    ("cross_cubicle_call_with_window_fault", 310),
    ("window_init_add_open_close_destroy", 77),
    ("checked_4k_read", 67),
    ("bulk_256k_write", 7_970),
    ("bulk_256k_read", 7_915),
    ("bulk_256k_read_vec", 13_332),
    ("scattered_64b_reads_x256", 8_978),
    ("fig7_http_fetch_1m", 2_505_821),
    ("sql_point_query", 8_242),
    ("sql_aggregate_scan", 381_130),
];

fn seed_ns(name: &str) -> Option<u64> {
    SEED_WALL_NS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, ns)| ns)
}

/// Runs `f` in batches until the sampling budget is exhausted and
/// returns the minimum ns/iter plus the sample count. The batch size
/// adapts so slow benches still collect several samples.
fn measure(mut f: impl FnMut()) -> (u64, u64) {
    // warm-up, also yields a batch-size estimate
    let t0 = Instant::now();
    for _ in 0..4 {
        f();
    }
    let est_ns = (t0.elapsed().as_nanos() as u64 / 4).max(1);
    let batch = (2_000_000 / est_ns).clamp(1, 256) as u32;
    let mut best = u64::MAX;
    let mut samples = 0u64;
    let deadline = Instant::now() + std::time::Duration::from_millis(60);
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as u64 / u64::from(batch));
        samples += 1;
        if Instant::now() >= deadline && samples >= 5 {
            break;
        }
    }
    (best, samples)
}

/// Measures `f`, prints a row, and records it (with the simulated cycles
/// of one iteration, taken from `sim_cycles`) in the result set.
fn bench_function(results: &mut BenchResults, name: &str, sim_cycles: u64, f: impl FnMut()) {
    let (best, samples) = measure(f);
    println!("{name:<44} {best:>10} ns/iter   ({samples} samples)");
    results.push(name, best, samples, sim_cycles, seed_ns(name));
}

fn setup(mode: IsolationMode) -> (System, CubicleId, CubicleId) {
    let builder = Builder::new();
    let mut sys = System::new(mode);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Dummy),
        )
        .unwrap();
    let b = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(4096))
                .heap_pages(32)
                .export(
                    builder
                        .export("long b_read(const void *buf, size_t n)")
                        .unwrap(),
                    |sys, _this, args| {
                        let (addr, len) = args[0].as_buf();
                        let v = sys.read_vec(addr, len)?;
                        Ok(Value::I64(i64::from(v[0])))
                    },
                ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, b.cid)
}

fn bench_cross_call(results: &mut BenchResults) {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    let entry = sys.entry("b_read").unwrap();
    let iter = |sys: &mut System| {
        sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, &[1]).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
            sys.window_destroy(wid).unwrap();
            sys.heap_free(buf).unwrap();
            black_box(r);
        });
    };
    let c0 = sys.now();
    iter(&mut sys);
    let cycles = sys.now() - c0;
    bench_function(
        results,
        "cross_cubicle_call_with_window_fault",
        cycles,
        || iter(&mut sys),
    );
}

fn bench_window_ops(results: &mut BenchResults) {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    let iter = |sys: &mut System| {
        sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            sys.window_close(wid, b).unwrap();
            sys.window_destroy(wid).unwrap();
            sys.heap_free(buf).unwrap();
        });
    };
    let c0 = sys.now();
    iter(&mut sys);
    let cycles = sys.now() - c0;
    bench_function(
        results,
        "window_init_add_open_close_destroy",
        cycles,
        || iter(&mut sys),
    );
}

fn bench_memory_access(results: &mut BenchResults) {
    let (mut sys, a, _b) = setup(IsolationMode::Full);
    let buf = sys.run_in_cubicle(a, |sys| sys.heap_alloc(4096, 4096).unwrap());
    let mut scratch = vec![0u8; 4096];
    let c0 = sys.now();
    sys.run_in_cubicle(a, |sys| sys.read(buf, &mut scratch).unwrap());
    let cycles = sys.now() - c0;
    bench_function(results, "checked_4k_read", cycles, || {
        sys.run_in_cubicle(a, |sys| sys.read(buf, black_box(&mut scratch)).unwrap());
    });
}

/// Bulk multi-page reads and writes: the page-table walk + copy path with
/// no faults — the purest measure of the simulated memory system's host
/// overhead per page.
fn bench_bulk(results: &mut BenchResults) {
    const LEN: usize = 64 * PAGE_SIZE; // 256 KiB = 64 pages
    let (mut sys, a, _b) = setup(IsolationMode::Full);
    let buf = sys.run_in_cubicle(a, |sys| sys.heap_alloc(LEN, 4096).unwrap());
    let mut host = vec![0xa5u8; LEN];

    let c0 = sys.now();
    sys.run_in_cubicle(a, |sys| sys.write(buf, &host).unwrap());
    let cycles = sys.now() - c0;
    bench_function(results, "bulk_256k_write", cycles, || {
        sys.run_in_cubicle(a, |sys| sys.write(buf, black_box(&host)).unwrap());
    });

    let c0 = sys.now();
    sys.run_in_cubicle(a, |sys| sys.read(buf, &mut host).unwrap());
    let cycles = sys.now() - c0;
    bench_function(results, "bulk_256k_read", cycles, || {
        sys.run_in_cubicle(a, |sys| sys.read(buf, black_box(&mut host)).unwrap());
    });

    let iter = |sys: &mut System| {
        let v = sys.run_in_cubicle(a, |sys| sys.read_vec(buf, LEN).unwrap());
        black_box(v);
    };
    let c0 = sys.now();
    iter(&mut sys);
    let cycles = sys.now() - c0;
    bench_function(results, "bulk_256k_read_vec", cycles, || iter(&mut sys));
}

/// Scattered small checked reads over a 128-page working set: unlike the
/// bulk benches (which sit at the host's memory-bandwidth floor), this is
/// *translation*-bound — per-access page lookup and permission checks
/// dominate, which is exactly what the flat page table + software TLB
/// accelerate over the seed's per-page HashMap probes.
fn bench_scattered(results: &mut BenchResults) {
    const PAGES: usize = 128;
    const READS: usize = 256;
    let (mut sys, a, _b) = setup(IsolationMode::Full);
    let region = sys.run_in_cubicle(a, |sys| sys.heap_alloc(PAGES * PAGE_SIZE, 4096).unwrap());
    let mut rng = Rng64::new(0x5CA7_7E4D);
    let offs: Vec<usize> = (0..READS)
        .map(|_| rng.range_usize(0, PAGES * PAGE_SIZE - 64))
        .collect();
    let mut buf = [0u8; 64];
    let c0 = sys.now();
    sys.run_in_cubicle(a, |sys| {
        for &o in &offs {
            sys.read(region + o, &mut buf).unwrap();
        }
    });
    let cycles = sys.now() - c0;
    bench_function(results, "scattered_64b_reads_x256", cycles, || {
        sys.run_in_cubicle(a, |sys| {
            for &o in &offs {
                sys.read(region + o, black_box(&mut buf)).unwrap();
            }
        });
    });
}

/// 16 invocations of the same entry: sequentially vs under one batched
/// dispatch (`System::cross_call_batch`). The window stays open across
/// iterations so the pair isolates the dispatch overhead the batch
/// amortises — boundary tax, trampoline, PKRU round-trip.
fn bench_batching(results: &mut BenchResults) {
    const N: usize = 16;
    let persistent_buf = |sys: &mut System, a: CubicleId, b: CubicleId| {
        sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, &[1]).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            buf
        })
    };

    let (mut sys, a, b) = setup(IsolationMode::Full);
    let entry = sys.entry("b_read").unwrap();
    let buf = persistent_buf(&mut sys, a, b);
    let iter = |sys: &mut System| {
        sys.run_in_cubicle(a, |sys| {
            for _ in 0..N {
                let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
                black_box(r);
            }
        });
    };
    iter(&mut sys); // warm: first iteration pays the window fault
    let c0 = sys.now();
    iter(&mut sys);
    let cycles = sys.now() - c0;
    bench_function(results, "unbatched_call_x16", cycles, || iter(&mut sys));

    let (mut sys, a, b) = setup(IsolationMode::Full);
    sys.set_cross_call_batching(true);
    let entry = sys.entry("b_read").unwrap();
    let buf = persistent_buf(&mut sys, a, b);
    let iter = |sys: &mut System| {
        sys.run_in_cubicle(a, |sys| {
            let elems: Vec<[Value; 1]> = (0..N).map(|_| [Value::buf_in(buf, 64)]).collect();
            let refs: Vec<&[Value]> = elems.iter().map(|e| e.as_slice()).collect();
            let rs = sys.cross_call_batch(entry, &refs).unwrap();
            black_box(rs);
        });
    };
    iter(&mut sys);
    let c0 = sys.now();
    iter(&mut sys);
    let cycles = sys.now() - c0;
    bench_function(results, "batched_call_x16", cycles, || iter(&mut sys));
}

/// The trap-and-map ping-pong the grant cache accelerates: the owner
/// writes its buffer (implicit-window reclaim retags the page), then the
/// callee reads it through a window (a fresh protection fault every
/// time). Decoy windows ahead of the authorising one lengthen the linear
/// ACL search that a cache hit skips.
fn bench_grant_cache(results: &mut BenchResults) {
    const DECOYS: usize = 16;
    for (name, cache_on) in [
        ("grant_cache_off_pingpong", false),
        ("grant_cache_on_pingpong", true),
    ] {
        let (mut sys, a, b) = setup(IsolationMode::Full);
        sys.set_grant_cache(cache_on);
        let entry = sys.entry("b_read").unwrap();
        let buf = sys.run_in_cubicle(a, |sys| {
            let decoy = sys.heap_alloc(4096, 4096).unwrap();
            for _ in 0..DECOYS {
                let wid = sys.window_init();
                sys.window_add(wid, decoy, 4096).unwrap();
                sys.window_open(wid, b).unwrap();
            }
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            buf
        });
        let iter = |sys: &mut System| {
            sys.run_in_cubicle(a, |sys| {
                sys.write(buf, &[7]).unwrap();
                let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
                black_box(r);
            });
        };
        iter(&mut sys); // warm: populate the cache (miss) before timing
        let c0 = sys.now();
        iter(&mut sys);
        let cycles = sys.now() - c0;
        bench_function(results, name, cycles, || iter(&mut sys));
        if cache_on {
            assert!(
                sys.stats().grant_cache_hits > 0,
                "pingpong bench must exercise the grant cache"
            );
        }
    }
}

/// The Figure 7 large-file path: a full HTTP fetch of a 1 MiB file
/// through the 8-component CubicleOS web stack (VFS reads, LWIP segment
/// copies, window faults — the memory-heaviest end-to-end scenario).
///
/// Measured twice: the legacy configuration (`_base`, every PR-7 feature
/// off — the bit-identical golden path) and the tracked entry with
/// cross-call batching, the window-grant cache, and the sendfile path
/// enabled, which is how the deployment is meant to run.
fn bench_fig7_large_file(results: &mut BenchResults) {
    const LEN: usize = 1 << 20;
    let content: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();

    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.put_file("/large.bin", &content).unwrap();
    let iter = |dep: &mut cubicle_httpd::WebDeployment| {
        let (latency, resp) = dep.fetch("/large.bin", WireModel::default()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), LEN);
        black_box(latency);
    };
    let c0 = dep.sys.now();
    iter(&mut dep);
    let cycles = dep.sys.now() - c0;
    bench_function(results, "fig7_http_fetch_1m_base", cycles, || {
        iter(&mut dep)
    });

    let mut dep = boot_web(IsolationMode::Full).unwrap();
    dep.sys.set_cross_call_batching(true);
    dep.sys.set_grant_cache(true);
    let slot = dep.httpd_slot;
    dep.sys
        .with_component_mut::<cubicle_httpd::Httpd, _>(slot, |h, _| h.set_sendfile(true))
        .unwrap();
    dep.put_file("/large.bin", &content).unwrap();
    let c0 = dep.sys.now();
    iter(&mut dep);
    let cycles = dep.sys.now() - c0;
    bench_function(results, "fig7_http_fetch_1m", cycles, || iter(&mut dep));
    let hits = dep.sys.stats().grant_cache_hits;
    println!("fig7 grant_cache_hits={hits}");
    assert!(
        hits > 0,
        "the fig-7 feature run must produce grant-cache hits"
    );
}

fn bench_speedtest_statement(results: &mut BenchResults) {
    use cubicle_sqldb::storage::HostEnv;
    use cubicle_sqldb::Database;
    let mut sys = System::new(IsolationMode::Unikraft);
    let mut db = Database::open(&mut sys, Box::new(HostEnv::new()), "/bench.db").unwrap();
    db.execute(
        &mut sys,
        "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)",
    )
    .unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..1000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO t VALUES ({i}, {})", i * 7 % 100),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();

    let c0 = sys.now();
    black_box(
        db.query(&mut sys, "SELECT v FROM t WHERE id = 500")
            .unwrap(),
    );
    let cycles = sys.now() - c0;
    bench_function(results, "sql_point_query", cycles, || {
        black_box(
            db.query(&mut sys, "SELECT v FROM t WHERE id = 500")
                .unwrap(),
        );
    });

    let c0 = sys.now();
    black_box(
        db.query(&mut sys, "SELECT count(*), sum(v) FROM t")
            .unwrap(),
    );
    let cycles = sys.now() - c0;
    bench_function(results, "sql_aggregate_scan", cycles, || {
        black_box(
            db.query(&mut sys, "SELECT count(*), sum(v) FROM t")
                .unwrap(),
        );
    });
}

/// Commit-path A/B: the PR-1 rollback journal against the WAL at group
/// sizes 1/8/32, over the real cubicle stack (SQL → VFSCORE → RAMFS),
/// where every page write and sync is a cross-cubicle call with a
/// simulated cost. One iteration commits 8 single-row transactions and
/// flushes; the recorded `sim_cycles` cover only that burst (the
/// bounded-state cleanup between iterations is excluded), exposing the
/// sync coalescing: group 8 pays one WAL sync where group 1 pays eight
/// and the rollback journal pays journal + db write-back per txn.
fn bench_sql_commit(results: &mut BenchResults) {
    use cubicle_ramfs::{mount_at, Ramfs};
    use cubicle_sqldb::storage::CubicleEnv;
    use cubicle_sqldb::{Database, JournalMode};
    use cubicle_ukbase::boot_base;
    use cubicle_vfs::{Vfs, VfsPort, VfsProxy};

    let variants: [(&str, JournalMode, u32); 4] = [
        ("sql_commit_rollback_journal", JournalMode::Rollback, 1),
        ("sql_commit_wal_group1", JournalMode::Wal, 1),
        ("sql_commit_wal_group8", JournalMode::Wal, 8),
        ("sql_commit_wal_group32", JournalMode::Wal, 32),
    ];
    for (name, mode, group) in variants {
        let mut sys = System::new(IsolationMode::Full);
        let base = boot_base(&mut sys).unwrap();
        let vfs_loaded = sys
            .load(cubicle_vfs::image(), Box::new(Vfs::default()))
            .unwrap();
        let ramfs_loaded = sys
            .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
            .unwrap();
        sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
            .unwrap();
        mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
        let app = sys
            .load(
                ComponentImage::new("SQL", CodeImage::plain(4096)).heap_pages(128),
                Box::new(Dummy),
            )
            .unwrap();
        sys.mark_boot_complete();
        let vfs = VfsProxy::resolve(&vfs_loaded).unwrap();
        let (app, ramfs_cid) = (app.cid, ramfs_loaded.cid);
        let mut db = sys.run_in_cubicle(app, |sys| {
            let port = VfsPort::new(sys, vfs, &[ramfs_cid]).unwrap();
            let mut db = Database::open_with_mode(
                sys,
                Box::new(CubicleEnv::new(port)),
                "/bench.db",
                64,
                mode,
            )
            .unwrap();
            db.execute(sys, "CREATE TABLE t(v INTEGER)").unwrap();
            db
        });
        db.set_group_commit(group);

        let burst = |sys: &mut System, db: &mut Database| {
            for _ in 0..8 {
                db.execute(sys, "BEGIN").unwrap();
                db.execute(sys, "INSERT INTO t VALUES (42)").unwrap();
                db.execute(sys, "COMMIT").unwrap();
            }
            db.flush(sys).unwrap();
        };
        // Keeps the data set and the WAL bounded across wall-clock
        // iterations (checkpoint is a no-op under the rollback journal).
        let cleanup = |sys: &mut System, db: &mut Database| {
            db.execute(sys, "DELETE FROM t").unwrap();
            db.flush(sys).unwrap();
            db.query(sys, "PRAGMA wal_checkpoint").unwrap();
        };

        let c0 = sys.now();
        sys.run_in_cubicle(app, |sys| burst(sys, &mut db));
        let cycles = sys.now() - c0;
        sys.run_in_cubicle(app, |sys| cleanup(sys, &mut db));
        bench_function(results, name, cycles, || {
            sys.run_in_cubicle(app, |sys| {
                burst(sys, &mut db);
                cleanup(sys, &mut db);
            });
        });
    }
}

fn main() {
    let mut results = BenchResults::new();
    bench_cross_call(&mut results);
    bench_window_ops(&mut results);
    bench_memory_access(&mut results);
    bench_bulk(&mut results);
    bench_scattered(&mut results);
    bench_batching(&mut results);
    bench_grant_cache(&mut results);
    bench_fig7_large_file(&mut results);
    bench_speedtest_statement(&mut results);
    bench_sql_commit(&mut results);
    let path = BenchResults::default_path();
    results.save(&path).unwrap();
    println!("\nresults written to {}", path.display());
    for e in results.entries() {
        if let Some(f) = e.speedup_vs_seed() {
            println!("  {:<44} {f:>6.2}x vs seed", e.name);
        }
    }
}

//! Micro-benchmarks of the isolation primitives (host wall-clock of the
//! simulator — useful to keep the simulator itself fast; the *simulated*
//! cycle costs are fixed by the cost model).
//!
//! Self-timed with a small median-of-samples harness so the suite runs
//! with no external dependencies (the build must work fully offline).

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, IsolationMode, System, Value,
};
use cubicle_mpk::insn::CodeImage;
use std::hint::black_box;
use std::time::Instant;

struct Dummy;
impl_component!(Dummy);

/// Runs `f` in batches until ~50 ms of samples exist and reports the
/// median ns/iter (trimmed of warm-up effects).
fn bench_function(name: &str, mut f: impl FnMut()) {
    // warm-up
    for _ in 0..16 {
        f();
    }
    let mut samples = Vec::new();
    let deadline = Instant::now() + std::time::Duration::from_millis(50);
    while Instant::now() < deadline {
        const BATCH: u32 = 64;
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as u64 / u64::from(BATCH));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{name:<44} {median:>10} ns/iter   ({} samples)",
        samples.len()
    );
}

fn setup(mode: IsolationMode) -> (System, CubicleId, CubicleId) {
    let builder = Builder::new();
    let mut sys = System::new(mode);
    let a = sys
        .load(
            ComponentImage::new("A", CodeImage::plain(4096)).heap_pages(32),
            Box::new(Dummy),
        )
        .unwrap();
    let b = sys
        .load(
            ComponentImage::new("B", CodeImage::plain(4096))
                .heap_pages(32)
                .export(
                    builder
                        .export("long b_read(const void *buf, size_t n)")
                        .unwrap(),
                    |sys, _this, args| {
                        let (addr, len) = args[0].as_buf();
                        let v = sys.read_vec(addr, len)?;
                        Ok(Value::I64(i64::from(v[0])))
                    },
                ),
            Box::new(Dummy),
        )
        .unwrap();
    (sys, a.cid, b.cid)
}

fn bench_cross_call() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    let entry = sys.entry("b_read").unwrap();
    bench_function("cross_cubicle_call_with_window_fault", || {
        sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(buf, &[1]).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            let r = sys.cross_call(entry, &[Value::buf_in(buf, 64)]).unwrap();
            sys.window_destroy(wid).unwrap();
            sys.heap_free(buf).unwrap();
            black_box(r);
        });
    });
}

fn bench_window_ops() {
    let (mut sys, a, b) = setup(IsolationMode::Full);
    bench_function("window_init_add_open_close_destroy", || {
        sys.run_in_cubicle(a, |sys| {
            let buf = sys.heap_alloc(4096, 4096).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, buf, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
            sys.window_close(wid, b).unwrap();
            sys.window_destroy(wid).unwrap();
            sys.heap_free(buf).unwrap();
        });
    });
}

fn bench_memory_access() {
    let (mut sys, a, _b) = setup(IsolationMode::Full);
    let buf = sys.run_in_cubicle(a, |sys| sys.heap_alloc(4096, 4096).unwrap());
    let mut scratch = vec![0u8; 4096];
    bench_function("checked_4k_read", || {
        sys.run_in_cubicle(a, |sys| sys.read(buf, black_box(&mut scratch)).unwrap());
    });
}

fn bench_speedtest_statement() {
    use cubicle_sqldb::storage::HostEnv;
    use cubicle_sqldb::Database;
    let mut sys = System::new(IsolationMode::Unikraft);
    let mut db = Database::open(&mut sys, Box::new(HostEnv::new()), "/bench.db").unwrap();
    db.execute(
        &mut sys,
        "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)",
    )
    .unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..1000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO t VALUES ({i}, {})", i * 7 % 100),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();
    bench_function("sql_point_query", || {
        black_box(
            db.query(&mut sys, "SELECT v FROM t WHERE id = 500")
                .unwrap(),
        );
    });
    bench_function("sql_aggregate_scan", || {
        black_box(
            db.query(&mut sys, "SELECT count(*), sum(v) FROM t")
                .unwrap(),
        );
    });
}

fn main() {
    bench_cross_call();
    bench_window_ops();
    bench_memory_access();
    bench_speedtest_statement();
}

//! Table 2: sizes of CubicleOS components — the paper reports the SLOC
//! of its trusted runtime, builder, window support and application
//! ports. This harness counts the equivalent sizes of this
//! reproduction's modules (non-blank, non-comment lines, tests
//! excluded), next to the paper's numbers.

use cubicle_bench::report::banner;
use std::fs;
use std::path::Path;

/// Counts non-blank, non-comment source lines, stopping at the unit-test
/// module (the original C components have their tests out of tree).
fn sloc_file(path: &Path) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    let mut n = 0;
    for line in text.lines() {
        let t = line.trim();
        if t == "#[cfg(test)]" {
            break;
        }
        if t.is_empty() || t.starts_with("//") || t.starts_with("//!") || t.starts_with("///") {
            continue;
        }
        n += 1;
    }
    n
}

fn sloc_dir(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                total += sloc_dir(&p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                total += sloc_file(&p);
            }
        }
    }
    total
}

fn main() {
    banner(
        "Table 2: sizes of CubicleOS components",
        "Sartakov et al., ASPLOS'21, Table 2",
    );
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let crates = root.join("crates");

    let rows: [(&str, &str, Vec<std::path::PathBuf>, &str); 6] = [
        (
            "Monitor (all components)",
            "3,000 C + 110 ASM",
            vec![crates.join("core/src"), crates.join("mpk/src")],
            "kernel + simulated MPK machine",
        ),
        (
            "Builder",
            "640 Python",
            vec![crates.join("core/src/builder.rs")],
            "trampoline generation + signing",
        ),
        (
            "Unikraft window support",
            "600 C",
            vec![crates.join("vfs/src/port.rs")],
            "window management port layer",
        ),
        (
            "SQLite port",
            "620 C",
            vec![crates.join("sqldb/src/storage.rs")],
            "storage env routing through windows",
        ),
        (
            "NGINX port",
            "390 C",
            vec![crates.join("httpd/src/driver.rs")],
            "deployment wiring + windowed I/O",
        ),
        (
            "(whole library OS + apps)",
            "n/a (third-party)",
            vec![
                crates.join("ukbase/src"),
                crates.join("vfs/src"),
                crates.join("ramfs/src"),
                crates.join("net/src"),
                crates.join("httpd/src"),
                crates.join("sqldb/src"),
            ],
            "substrates rebuilt from scratch here",
        ),
    ];

    println!(
        "\n{:<28} {:>18} {:>12}   notes",
        "component", "paper (SLOC)", "this repo"
    );
    println!("{}", "-".repeat(96));
    for (name, paper, paths, note) in rows {
        let sloc: usize = paths
            .iter()
            .map(|p| {
                if p.is_dir() {
                    sloc_dir(p)
                } else {
                    sloc_file(p)
                }
            })
            .sum();
        println!("{name:<28} {paper:>18} {sloc:>12}   {note}");
    }
    println!(
        "\nnote: the paper ports existing third-party code (Unikraft, SQLite, NGINX);\n\
         this reproduction implements those substrates from scratch, so its 'port'\n\
         rows count only the window-management layers, which are the paper's\n\
         developer-effort claim."
    );
}

//! Figure 10: CubicleOS vs component frameworks on other kernels.
//!
//! * 10a — slowdown of each system against native Linux;
//! * 10b — the cost of adding the RAMFS compartment (4- vs 3-component
//!   partitioning of Figure 9) per kernel.
//!
//! Scale with `CUBICLE_SCALE` (default 100).

use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{banner, bar, factor};
use cubicle_bench::scenario::{speedtest_total_cycles, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::SpeedtestConfig;

fn main() {
    let scale: u32 = std::env::var("CUBICLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    banner(
        "Figure 10: CubicleOS overhead compared to different kernels",
        "Sartakov et al., ASPLOS'21, Fig. 9 + Fig. 10 (speedtest1)",
    );
    println!("scale = {scale} ({} rows per main table)\n", cfg.rows());

    let total = |label: &str, mode: IsolationMode, p: Partitioning, tax: u64| -> u64 {
        let (cycles, _) = speedtest_total_cycles(mode, p, tax, &cfg).unwrap();
        eprintln!("  [measured {label}: {cycles} cycles]");
        cycles
    };

    let t0 = std::time::Instant::now();
    let linux = total("Linux", IsolationMode::Unikraft, Partitioning::Merged, 0);
    let unikraft = total(
        "Unikraft",
        IsolationMode::Unikraft,
        Partitioning::Merged,
        UNIKRAFT_BOUNDARY_TAX,
    );
    let cub3 = total(
        "CubicleOS-3",
        IsolationMode::Full,
        Partitioning::Merged,
        UNIKRAFT_BOUNDARY_TAX,
    );
    let cub4 = total(
        "CubicleOS-4",
        IsolationMode::Full,
        Partitioning::Split,
        UNIKRAFT_BOUNDARY_TAX,
    );

    let mut k3 = Vec::new();
    let mut k4 = Vec::new();
    for k in cubicle_ipc::KERNELS {
        k3.push(total(
            &format!("{}-3", k.kernel),
            cubicle_ipc::mode_for(k),
            Partitioning::Merged,
            0,
        ));
        k4.push(total(
            &format!("{}-4", k.kernel),
            cubicle_ipc::mode_for(k),
            Partitioning::Split,
            0,
        ));
    }
    let genode3 = k3[3]; // Genode/Linux
    let genode4 = k4[3];

    let sim_cycles =
        linux + unikraft + cub3 + cub4 + k3.iter().sum::<u64>() + k4.iter().sum::<u64>();
    let mut recorded = BenchResults::new();
    recorded.push(
        "fig10_kernel_matrix",
        t0.elapsed().as_nanos() as u64,
        1,
        sim_cycles,
        None,
    );
    recorded.save(&BenchResults::default_path()).unwrap();

    println!("\n--- Figure 10a: slowdown compared to Linux ---");
    println!("{:>14} {:>9}  {:>9}  ", "system", "measured", "paper");
    let rows_a = [
        ("Linux", linux, 1.0),
        ("Unikraft", unikraft, 2.8),
        ("Genode-3", genode3, 1.4),
        ("Genode-4", genode4, 29.0),
        ("CubicleOS-3", cub3, 4.1),
        ("CubicleOS-4", cub4, 5.4),
    ];
    for (label, cycles, paper) in rows_a {
        let slow = cycles as f64 / linux as f64;
        println!(
            "{label:>14} {:>9}  {:>9}  {}",
            factor(slow),
            factor(paper),
            bar(slow.min(40.0), 40.0, 30)
        );
    }

    println!("\n--- Figure 10b: slowdown of adding the RAMFS compartment (4 vs 3) ---");
    println!("{:>14} {:>9}  {:>9}", "kernel", "measured", "paper");
    let paper_b = [7.5, 4.5, 4.7, 20.7];
    for (i, k) in cubicle_ipc::KERNELS.iter().enumerate() {
        let ratio = k4[i] as f64 / k3[i] as f64;
        println!(
            "{:>14} {:>9}  {:>9}  {}",
            k.kernel,
            factor(ratio),
            factor(paper_b[i]),
            bar(ratio, 25.0, 30)
        );
    }
    let cub_ratio = cub4 as f64 / cub3 as f64;
    println!(
        "{:>14} {:>9}  {:>9}  {}",
        "CubicleOS",
        factor(cub_ratio),
        factor(1.4),
        bar(cub_ratio, 25.0, 30)
    );
    println!(
        "\nheadline (paper §6.5 / A.8): the RAMFS compartment costs >4x on every\n\
         microkernel but only ~1.4x on CubicleOS — window-based crossings beat\n\
         message-based interfaces."
    );
}

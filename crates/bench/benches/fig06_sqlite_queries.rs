//! Figure 6: per-query SQLite execution time under the four
//! configurations (Unikraft, CubicleOS w/o MPK, CubicleOS w/o ACLs,
//! full CubicleOS), plus the §6.4 ablation analysis.
//!
//! Scale with `CUBICLE_SCALE` (default 100 = the paper's `--stat 100`).

use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{audit_gate, banner, bar, factor};
use cubicle_bench::scenario::{build_sqlite, Partitioning, UNIKRAFT_BOUNDARY_TAX};
use cubicle_core::IsolationMode;
use cubicle_sqldb::speedtest::{query_group, QueryGroup, SpeedtestConfig, TestResult};
use cubicle_ukbase::time::cycles_to_ms;

fn run(mode: IsolationMode, cfg: &SpeedtestConfig) -> Vec<TestResult> {
    // The Unikraft baseline is the monolithic image (no partitioning);
    // the CubicleOS configurations run the full 7-cubicle split.
    let partitioning = match mode {
        IsolationMode::Unikraft => Partitioning::Merged,
        _ => Partitioning::Split,
    };
    let mut dep = build_sqlite(mode, partitioning, UNIKRAFT_BOUNDARY_TAX).unwrap();
    let mut db = dep
        .open_db(cubicle_sqldb::pager::DEFAULT_CACHE_PAGES)
        .unwrap();
    let results = dep.run_speedtest(&mut db, cfg).unwrap();
    audit_gate(&dep.sys, &format!("fig06 {mode:?}"));
    results
}

fn main() {
    let scale: u32 = std::env::var("CUBICLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    banner(
        "Figure 6: query execution times for SQLite under CubicleOS",
        "Sartakov et al., ASPLOS'21, Fig. 6 + §6.4 (speedtest1, local execution)",
    );
    println!("scale = {scale} ({} rows per main table)\n", cfg.rows());

    let modes = [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ];
    let t0 = std::time::Instant::now();
    let results: Vec<Vec<TestResult>> = modes.iter().map(|&m| run(m, &cfg)).collect();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let sim_cycles: u64 = results.iter().flatten().map(|r| r.cycles).sum();
    let mut recorded = BenchResults::new();
    recorded.push("fig06_speedtest_4modes", wall_ns, 1, sim_cycles, None);
    recorded.save(&BenchResults::default_path()).unwrap();

    println!(
        "{:>5} {:>5} | {:>12} {:>12} {:>12} {:>12} | {:>8}  (ms, simulated)",
        "query", "group", "Unikraft", "w/o MPK", "w/o ACLs", "CubicleOS", "slowdown"
    );
    println!("{}", "-".repeat(104));
    let max_ms = results[3]
        .iter()
        .map(|r| cycles_to_ms(r.cycles))
        .fold(0.0, f64::max);
    for (i, base) in results[0].iter().enumerate() {
        let id = base.id;
        let group = match query_group(id) {
            QueryGroup::A => "A",
            QueryGroup::B => "B",
        };
        let slow = results[3][i].cycles as f64 / base.cycles as f64;
        println!(
            "{:>5} {:>5} | {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>9.3} ms | {:>8} {}",
            id,
            group,
            cycles_to_ms(base.cycles),
            cycles_to_ms(results[1][i].cycles),
            cycles_to_ms(results[2][i].cycles),
            cycles_to_ms(results[3][i].cycles),
            factor(slow),
            bar(cycles_to_ms(results[3][i].cycles), max_ms, 24),
        );
    }

    // §6.4 analysis: group means and mechanism deltas
    println!("\n--- §6.4 analysis (per-group geometric-mean slowdowns) ---");
    for (gname, g) in [
        ("A (cache-friendly)", QueryGroup::A),
        ("B (OS-heavy)", QueryGroup::B),
    ] {
        let mut deltas = [0.0f64; 4]; // ln-sums per mode vs baseline
        let mut n = 0u32;
        for (i, base) in results[0].iter().enumerate() {
            if query_group(base.id) != g {
                continue;
            }
            n += 1;
            for m in 0..4 {
                deltas[m] += (results[m][i].cycles as f64 / results[0][i].cycles as f64).ln();
            }
        }
        let gm = |x: f64| (x / f64::from(n)).exp();
        let (tramp, mpk, win) = (gm(deltas[1]), gm(deltas[2]), gm(deltas[3]));
        println!(
            "group {gname:<20} split+trampolines: {}  +MPK: {}  +windows: {}  (total {})",
            factor(tramp),
            factor(mpk / tramp),
            factor(win / mpk),
            factor(win),
        );
    }
    println!("\npaper: group A ≈ 1.8x total (trampolines +2%, MPK +50%, windows +20%);");
    println!("       group B ≈ 8x total (trampolines +17%, MPK 4x, windows 1.2x)");
    println!(
        "note: the first delta here also contains the 7-way partitioning cost\n\
         (the baseline is the monolithic Unikraft image, as in the paper)."
    );
}

//! Figure 5: the NGINX component graph with per-edge cross-cubicle call
//! counts, collected during a siege-like measurement run.

use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{
    assert_spans_partition, audit_gate, banner, dump_observability, obs_dir,
};
use cubicle_core::IsolationMode;
use cubicle_httpd::boot_web;
use cubicle_mpk::rng::Rng64;
use cubicle_net::WireModel;
use std::time::Instant;

fn main() {
    banner(
        "Figure 5: NGINX with cubicles (call counts during measurement)",
        "Sartakov et al., ASPLOS'21, Fig. 5",
    );
    let requests: usize = std::env::var("CUBICLE_REQUESTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);

    let mut dep = boot_web(IsolationMode::Full).unwrap();
    let obs = obs_dir();
    if obs.is_some() {
        dep.sys.enable_tracing(1 << 20);
    }
    // random static files, as in the paper's siege setup
    let mut rng = Rng64::new(7);
    let sizes = [1 << 10, 8 << 10, 64 << 10, 256 << 10];
    for (i, &size) in sizes.iter().enumerate() {
        let content: Vec<u8> = (0..size).map(|j| ((i + j) % 251) as u8).collect();
        dep.put_file(&format!("/file{i}.bin"), &content).unwrap();
    }
    dep.sys.mark_boot_complete(); // Fig. 5 counts measurement time only
    eprintln!("issuing {requests} requests…");
    let t0 = Instant::now();
    for _ in 0..requests {
        let which = rng.range_usize(0, sizes.len());
        let (_lat, resp) = dep
            .fetch(&format!("/file{which}.bin"), WireModel::default())
            .unwrap();
        assert_eq!(resp.status, 200);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let sys = &dep.sys;
    let (cycles, stats) = sys.since_boot();
    let mut results = BenchResults::new();
    results.push("fig05_siege_requests", wall_ns, 1, cycles, None);
    results.save(&BenchResults::default_path()).unwrap();
    let name = |n: &str| sys.find_cubicle(n).unwrap();
    let edges = [
        ("NGINX", "LWIP"),
        ("NGINX", "VFSCORE"),
        ("NGINX", "TIME"),
        ("LWIP", "NETDEV"),
        ("LWIP", "ALLOC"),
        ("VFSCORE", "RAMFS"),
        ("RAMFS", "ALLOC"),
        ("NGINX", "PLAT"),
    ];
    println!("\nedge (caller -> callee)        calls");
    println!("{}", "-".repeat(42));
    for (from, to) in edges {
        let n = stats.edge(name(from), name(to));
        println!("{from:>8} -> {to:<10} {n:>12}");
    }
    println!("\ntotal cross-cubicle calls: {}", stats.cross_calls);
    println!("trap-and-map faults resolved: {}", stats.faults_resolved);
    println!(
        "\npaper's shape: LWIP→NETDEV is the hottest edge (segmentation fan-out),\n\
         NGINX↔LWIP and VFSCORE→RAMFS carry the request/file traffic, ALLOC and\n\
         TIME edges are sparse; the application never touches NETDEV or RAMFS\n\
         directly. Direct-edge check: NGINX→NETDEV = {}, NGINX→RAMFS = {}.",
        stats.edge(name("NGINX"), name("NETDEV")),
        stats.edge(name("NGINX"), name("RAMFS")),
    );
    println!();
    audit_gate(sys, "fig05 NGINX siege");

    if let Some(dir) = obs {
        assert_spans_partition(&mut dep.sys, "fig05");
        for p in dump_observability(&mut dep.sys, &dir, "fig05").unwrap() {
            println!("wrote {}", p.display());
        }
    }
}

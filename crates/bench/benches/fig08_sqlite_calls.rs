//! Figure 8: the SQLite component graph with per-edge call counts
//! (including boot, as the paper's caption notes). Uses the full
//! 7-isolated-cubicle deployment: SQLITE, VFSCORE, RAMFS, ALLOC, TIME,
//! PLAT (+ shared LIBC).

use cubicle_bench::report::results::BenchResults;
use cubicle_bench::report::{
    assert_spans_partition, audit_gate, banner, dump_observability, obs_dir,
};
use cubicle_core::{impl_component, ComponentImage, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_sqldb::speedtest::{run_speedtest, SpeedtestConfig};
use cubicle_sqldb::storage::CubicleEnv;
use cubicle_sqldb::Database;
use cubicle_ukbase::boot_base;
use cubicle_vfs::{Vfs, VfsPort, VfsProxy};

struct SqliteApp;
impl_component!(SqliteApp);

fn main() {
    banner(
        "Figure 8: SQLite with cubicles (call counts include boot time)",
        "Sartakov et al., ASPLOS'21, Fig. 8",
    );
    let scale: u32 = std::env::var("CUBICLE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let cfg = SpeedtestConfig {
        scale,
        ..Default::default()
    };
    eprintln!("running speedtest1 at scale {scale}…");

    let mut sys = System::new(IsolationMode::Full);
    let obs = obs_dir();
    if obs.is_some() {
        // Fig. 8 counts include boot, so tracing starts before it too.
        sys.enable_tracing(1 << 20);
    }
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    let app = sys
        .load(
            ComponentImage::new("SQLITE", CodeImage::plain(128 * 1024)).heap_pages(256),
            Box::new(SqliteApp),
        )
        .unwrap();
    let vfs_proxy = VfsProxy::resolve(&vfs_loaded).unwrap();
    let ramfs_cid = ramfs_loaded.cid;
    let time = base.time;
    let c0 = sys.now();
    let t0 = std::time::Instant::now();
    sys.run_in_cubicle(app.cid, move |sys| {
        let port = VfsPort::new(sys, vfs_proxy, &[ramfs_cid]).unwrap();
        let mut db = Database::open(sys, Box::new(CubicleEnv::new(port)), "/speedtest.db").unwrap();
        // the application stamps start/end times, like speedtest1 does
        time.now_ns(sys).unwrap();
        run_speedtest(sys, &mut db, &cfg).unwrap();
        time.now_ns(sys).unwrap();
    });
    let mut recorded = BenchResults::new();
    recorded.push(
        "fig08_speedtest_split",
        t0.elapsed().as_nanos() as u64,
        1,
        sys.now() - c0,
        None,
    );
    recorded.save(&BenchResults::default_path()).unwrap();

    let stats = sys.stats(); // includes boot, per the figure's caption
    let name = |n: &str| sys.find_cubicle(n).unwrap();
    println!("\nedge (caller -> callee)        calls     (paper)");
    println!("{}", "-".repeat(52));
    for (from, to, paper) in [
        ("SQLITE", "VFSCORE", "967,366"),
        ("SQLITE", "TIME", "2"),
        ("VFSCORE", "RAMFS", "1,948,187"),
        ("RAMFS", "ALLOC", "31"),
        ("SQLITE", "PLAT", "10"),
    ] {
        let n = stats.edge(name(from), name(to));
        println!("{from:>8} -> {to:<10} {n:>10}   ({paper})");
    }
    println!("\ntotal cross-cubicle calls: {}", stats.cross_calls);
    println!("trap-and-map faults resolved: {}", stats.faults_resolved);
    println!(
        "faults denied (isolation violations): {}",
        stats.faults_denied
    );
    println!(
        "\npaper's shape, reproduced: the hot path is SQLITE→VFSCORE→RAMFS with\n\
         VFSCORE→RAMFS the hotter edge; RAMFS→ALLOC carries only coarse pool\n\
         refills; TIME is touched a handful of times; no direct SQLITE→RAMFS\n\
         edge exists (measured: {}). Absolute counts differ with workload scale.",
        stats.edge(name("SQLITE"), name("RAMFS"))
    );
    println!();
    audit_gate(&sys, "fig08 SQLite split");

    if let Some(dir) = obs {
        assert_spans_partition(&mut sys, "fig08");
        for p in dump_observability(&mut sys, &dir, "fig08").unwrap() {
            println!("wrote {}", p.display());
        }
    }
}

//! Determinism under concurrency (ISSUE 8, satellite 3).
//!
//! A multi-core siege is a pure function of its scheduler seed: two
//! replays must produce bit-identical merged traces (every record,
//! including its core stamp), per-core cycle totals and fault ordering.
//! And the 1-core scheduled path must collapse to exactly today's
//! single-hart run — same total cycles, same call and fault counts as a
//! plain sequential `fetch` loop that never heard of the scheduler.

use cubicle_bench::mt::{prepare_web_files, run_siege, MtConfig, MtOutcome, STANDARD_FILES};
use cubicle_core::IsolationMode;
use cubicle_httpd::boot_web;
use cubicle_net::WireModel;

/// A cheap wire so the (host-slow) debug-mode runs stay quick without
/// changing what is being tested: interleaving, locking, trap-and-map.
fn fast_wire() -> WireModel {
    WireModel {
        hop_cycles: 2_000,
        per_byte_cycles: 1,
        request_overhead_cycles: 50_000,
    }
}

/// Everything observable about one traced siege, bitwise-comparable.
#[derive(PartialEq, Debug)]
struct RunRecord {
    outcome: MtOutcome,
    /// Merged trace: (timestamp, core, event) of every record.
    trace: Vec<String>,
    faults_resolved: u64,
    cross_calls: u64,
}

fn traced_siege(seed: u64, cores: usize, requests: usize) -> RunRecord {
    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    dep.sys.enable_tracing(1 << 16);
    prepare_web_files(&mut dep).expect("files");
    let mut cfg = MtConfig::new(cores, requests, seed);
    cfg.wire = fast_wire();
    let outcome = run_siege(&mut dep, &cfg).expect("siege");
    let report = dep.sys.audit();
    report.assert_clean("mt determinism siege");
    let trace = dep
        .sys
        .trace()
        .expect("tracing on")
        .records()
        .map(|r| format!("{r:?}"))
        .collect();
    let stats = dep.sys.stats();
    RunRecord {
        outcome,
        trace,
        faults_resolved: stats.faults_resolved,
        cross_calls: stats.cross_calls,
    }
}

#[test]
fn multi_core_sieges_replay_bit_identically_across_seeds() {
    for seed in 0..16u64 {
        let a = traced_siege(seed, 4, 6);
        let b = traced_siege(seed, 4, 6);
        assert!(!a.trace.is_empty(), "seed {seed}: trace must record");
        assert_eq!(a, b, "seed {seed}: replay must be bit-identical");
    }
}

/// ISSUE 9 acceptance: the unmutated fig-5 siege, swept over the full
/// core matrix and 16 scheduler seeds with CubicleSan armed, must be
/// race-free with an acyclic lock order — and the detector must stay a
/// pure observer (same digest as the detection-off run).
#[test]
fn cubiclesan_sweep_is_race_free_and_a_pure_observer() {
    for cores in [1usize, 2, 4, 8] {
        for seed in 0..16u64 {
            let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
            prepare_web_files(&mut dep).expect("files");
            let mut cfg = MtConfig::new(cores, 6, seed);
            cfg.wire = fast_wire();
            cfg.race_detection = true;
            let on = run_siege(&mut dep, &cfg).expect("siege");
            assert_eq!(
                dep.sys.race_reports(),
                &[],
                "{cores} cores, seed {seed}: siege must be race-free"
            );
            assert_eq!(
                dep.sys.lockorder_cycle(),
                None,
                "{cores} cores, seed {seed}: lock order must stay acyclic"
            );
            assert!(
                dep.sys.lockset_violations().is_empty(),
                "{cores} cores, seed {seed}: {:?}",
                dep.sys.lockset_violations()
            );
            dep.sys.audit().assert_clean("cubiclesan sweep");

            // Observer check once per core count: detection off must
            // produce the identical outcome, per-core clocks included.
            if seed == 0 {
                let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
                prepare_web_files(&mut dep).expect("files");
                cfg.race_detection = false;
                let off = run_siege(&mut dep, &cfg).expect("siege");
                assert_eq!(off, on, "{cores} cores: detector charged cycles");
            }
        }
    }
}

#[test]
fn different_seeds_interleave_differently() {
    // Not a correctness requirement per se, but if every seed produced
    // the same interleaving the property test above would be vacuous.
    let a = traced_siege(1, 4, 6);
    let b = traced_siege(2, 4, 6);
    assert_ne!(
        (a.outcome.switches, a.outcome.digest),
        (b.outcome.switches, b.outcome.digest),
        "seeds 1 and 2 should schedule differently"
    );
}

#[test]
fn one_core_schedule_matches_the_single_hart_run() {
    // Scheduled 1-core siege.
    let requests = 6usize;
    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    prepare_web_files(&mut dep).expect("files");
    let t0 = dep.sys.now();
    let mut cfg = MtConfig::new(1, requests, 7);
    cfg.wire = fast_wire();
    let outcome = run_siege(&mut dep, &cfg).expect("siege");
    let scheduled_cycles = dep.sys.now() - t0;
    let scheduled_stats = dep.sys.stats().clone();
    assert_eq!(outcome.switches, 0, "one core never switches");
    assert_eq!(outcome.makespan_cycles, scheduled_cycles);

    // The same requests through the plain sequential fetch loop on a
    // fresh deployment (the pre-PR single-hart path).
    let mut dep = boot_web(IsolationMode::Full).expect("boot_web");
    prepare_web_files(&mut dep).expect("files");
    let t0 = dep.sys.now();
    for i in 0..requests {
        let path = STANDARD_FILES[i % STANDARD_FILES.len()].0;
        let (_lat, resp) = dep.fetch(path, fast_wire()).expect("fetch");
        assert_eq!(resp.status, 200);
    }
    let sequential_cycles = dep.sys.now() - t0;
    let sequential_stats = dep.sys.stats().clone();

    assert_eq!(
        scheduled_cycles, sequential_cycles,
        "a 1-core schedule must be cycle-identical to the single-hart run"
    );
    assert_eq!(scheduled_stats.cross_calls, sequential_stats.cross_calls);
    assert_eq!(
        scheduled_stats.faults_resolved,
        sequential_stats.faults_resolved
    );
}

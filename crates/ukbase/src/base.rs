//! Boot helper: loads the Unikraft base components.

use crate::alloc::{self, Alloc, AllocProxy};
use crate::plat::{self, Plat, PlatProxy};
use crate::time::{self, Time, TimeProxy};
use cubicle_core::{impl_component, ComponentImage, CubicleId, Result, System};
use cubicle_mpk::insn::CodeImage;

/// Marker state for the shared `LIBC` cubicle (its routines are free
/// functions in [`crate::libc`]; the cubicle exists so its static data
/// pages have an owner and a shared key).
#[derive(Debug, Default)]
pub struct Libc;

impl_component!(Libc);

/// Handles to the booted base system.
#[derive(Clone, Copy, Debug)]
pub struct BaseSystem {
    /// System-wide coarse allocator.
    pub alloc: AllocProxy,
    /// Monotonic clock.
    pub time: TimeProxy,
    /// Platform services.
    pub plat: PlatProxy,
    /// Registry slot of `PLAT` (for console inspection).
    pub plat_slot: usize,
    /// The shared `LIBC` cubicle.
    pub libc_cid: CubicleId,
}

/// Loads `ALLOC`, `TIME`, `PLAT` and the shared `LIBC` cubicle — the
/// common substrate under both application deployments (Figures 5 & 8).
///
/// # Errors
///
/// Loader errors from [`System::load`].
pub fn boot_base(sys: &mut System) -> Result<BaseSystem> {
    let alloc = sys.load(alloc::image(), Box::new(Alloc::default()))?;
    let time = sys.load(time::image(), Box::new(Time::default()))?;
    let plat = sys.load(plat::image(), Box::new(Plat::default()))?;
    let libc = sys.load(
        ComponentImage::new("LIBC", CodeImage::plain(48 * 1024))
            .shared()
            .heap_pages(8),
        Box::new(Libc),
    )?;
    Ok(BaseSystem {
        alloc: AllocProxy::resolve(&alloc)?,
        time: TimeProxy::resolve(&time)?,
        plat: PlatProxy::resolve(&plat)?,
        plat_slot: plat.slot,
        libc_cid: libc.cid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::IsolationMode;

    #[test]
    fn boots_all_base_components() {
        let mut sys = System::new(IsolationMode::Full);
        let base = boot_base(&mut sys).unwrap();
        assert_eq!(sys.cubicle_name(base.alloc.cid()), "ALLOC");
        assert_eq!(sys.cubicle_name(base.time.cid()), "TIME");
        assert_eq!(sys.cubicle_name(base.plat.cid()), "PLAT");
        assert_eq!(sys.cubicle_name(base.libc_cid), "LIBC");
        assert!(sys.find_cubicle("LIBC").is_some());
    }

    #[test]
    fn boots_in_every_isolation_mode() {
        for mode in [
            IsolationMode::Unikraft,
            IsolationMode::NoMpk,
            IsolationMode::NoAcl,
            IsolationMode::Full,
        ] {
            let mut sys = System::new(mode);
            boot_base(&mut sys).unwrap();
        }
    }
}

//! The `ALLOC` cubicle: system-wide coarse-grained allocator.
//!
//! Figure 5 shows `ALLOC` as "a system-wide memory allocator"; in the
//! SQLite deployment (Figure 8) "each cubicle uses only its own memory
//! allocation library, and ALLOC is used only for coarse-grained
//! allocations". `ALLOC` owns an arena of pages and *transfers page
//! ownership* to the requesting cubicle, because "pages are strictly
//! assigned an owner and type at allocation time" (paper §5.3).

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, EntryId, LoadedComponent, Result, System,
    Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::{VAddr, PAGE_SIZE};

/// State of the `ALLOC` component: a free list of reclaimed page runs.
#[derive(Debug, Default)]
pub struct Alloc {
    /// Reclaimed (addr, pages) runs available for reuse.
    free_runs: Vec<(VAddr, usize)>,
    /// Pages ever granted (statistics).
    pub pages_granted: u64,
}

impl_component!(Alloc, restart = reboot_reset);

impl Alloc {
    /// Microreboot hook: recorded free runs pointed into pages that were
    /// reclaimed with the cubicle, so the free list starts empty.
    fn reboot_reset(&mut self) {
        self.free_runs.clear();
    }
}

/// Synthetic code size of the component (bytes) — mirrors a small
/// allocator's text segment.
const CODE_SIZE: usize = 6 * 1024;

/// Builds the loadable `ALLOC` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("ALLOC", CodeImage::plain(CODE_SIZE))
        .heap_pages(4)
        .export(
            b.export("void *uk_palloc(size_t pages)").unwrap(),
            entry_palloc,
        )
        .export(
            b.export("void uk_pfree(void *addr, size_t pages)").unwrap(),
            entry_pfree,
        )
}

fn entry_palloc(
    sys: &mut System,
    this: &mut dyn cubicle_core::Component,
    args: &[Value],
) -> Result<Value> {
    let pages = args[0].as_u64() as usize;
    if pages == 0 {
        return Ok(Value::I64(cubicle_core::Errno::Einval.neg()));
    }
    let state = cubicle_core::component_mut::<Alloc>(this);
    // Reuse a reclaimed run when one fits, else carve fresh pages.
    let base = match state.free_runs.iter().position(|&(_, n)| n >= pages) {
        Some(i) => {
            let (addr, n) = state.free_runs[i];
            if n == pages {
                state.free_runs.remove(i);
            } else {
                state.free_runs[i] = (addr + pages * PAGE_SIZE, n - pages);
            }
            addr
        }
        None => sys.alloc_pages(pages),
    };
    state.pages_granted += pages as u64;
    let caller = sys.caller_cubicle();
    sys.grant_pages_to(base, pages * PAGE_SIZE, caller)?;
    Ok(Value::Ptr(base))
}

fn entry_pfree(
    sys: &mut System,
    this: &mut dyn cubicle_core::Component,
    args: &[Value],
) -> Result<Value> {
    let addr = args[0].as_ptr();
    let pages = args[1].as_u64() as usize;
    // The pages come back to ALLOC's ownership. The *caller* transferred
    // them implicitly by calling pfree; from ALLOC's context we adopt
    // them by recording the run. (Ownership metadata was flipped by the
    // caller-side proxy before the call — see `AllocProxy::pfree`.)
    let state = cubicle_core::component_mut::<Alloc>(this);
    state.free_runs.push((addr, pages));
    let _ = sys; // no memory touched: bookkeeping only
    Ok(Value::Unit)
}

/// Typed caller-side proxy for the `ALLOC` entries.
#[derive(Clone, Copy, Debug)]
pub struct AllocProxy {
    cid: CubicleId,
    palloc: EntryId,
    pfree: EntryId,
}

impl AllocProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<AllocProxy> {
        Ok(AllocProxy {
            cid: loaded.cid,
            palloc: loaded.entry("uk_palloc")?,
            pfree: loaded.entry("uk_pfree")?,
        })
    }

    /// The `ALLOC` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// Allocates `pages` pages owned by the calling cubicle.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn palloc(&self, sys: &mut System, pages: usize) -> Result<VAddr> {
        match sys.cross_call(self.palloc, &[Value::U64(pages as u64)])? {
            Value::Ptr(p) => Ok(p),
            Value::I64(e) => Err(cubicle_core::CubicleError::Component(format!(
                "uk_palloc failed: {e}"
            ))),
            other => Err(cubicle_core::CubicleError::Component(format!(
                "uk_palloc returned {other:?}"
            ))),
        }
    }

    /// Returns `pages` pages starting at `addr` to the allocator.
    ///
    /// The calling cubicle must own them; ownership is transferred back
    /// to `ALLOC` before the call (the grant direction mirrors
    /// `uk_palloc`).
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NotOwner`] when the caller does not
    /// own the pages.
    pub fn pfree(&self, sys: &mut System, addr: VAddr, pages: usize) -> Result<()> {
        sys.grant_pages_to(addr, pages * PAGE_SIZE, self.cid)?;
        sys.cross_call(self.pfree, &[Value::Ptr(addr), Value::U64(pages as u64)])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::{CubicleError, IsolationMode};

    struct Dummy;
    impl_component!(Dummy);

    fn setup() -> (System, AllocProxy, CubicleId) {
        let mut sys = System::new(IsolationMode::Full);
        let alloc = sys.load(image(), Box::new(Alloc::default())).unwrap();
        let proxy = AllocProxy::resolve(&alloc).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        (sys, proxy, app.cid)
    }

    #[test]
    fn palloc_grants_caller_owned_pages() {
        let (mut sys, proxy, app) = setup();
        let base = sys.run_in_cubicle(app, |sys| proxy.palloc(sys, 4).unwrap());
        assert_eq!(sys.page_owner(base), Some(app));
        sys.run_in_cubicle(app, |sys| {
            sys.write(base, b"coarse allocation").unwrap();
            assert_eq!(sys.read_vec(base, 6).unwrap(), b"coarse");
        });
    }

    #[test]
    fn pfree_reclaims_and_reuses() {
        let (mut sys, proxy, app) = setup();
        let (b1, b2) = sys.run_in_cubicle(app, |sys| {
            let b1 = proxy.palloc(sys, 2).unwrap();
            proxy.pfree(sys, b1, 2).unwrap();
            let b2 = proxy.palloc(sys, 2).unwrap();
            (b1, b2)
        });
        assert_eq!(b1, b2, "freed run is reused");
        // After pfree + re-palloc, the app owns it again.
        assert_eq!(sys.page_owner(b2), Some(app));
    }

    #[test]
    fn freed_pages_are_protected_from_old_owner() {
        let (mut sys, proxy, app) = setup();
        let base = sys.run_in_cubicle(app, |sys| {
            let base = proxy.palloc(sys, 1).unwrap();
            proxy.pfree(sys, base, 1).unwrap();
            base
        });
        // Ownership went back to ALLOC: the app cannot touch it anymore.
        let denied = sys.run_in_cubicle(app, |sys| sys.read_vec(base, 8));
        assert!(matches!(denied, Err(CubicleError::WindowDenied { .. })));
    }

    #[test]
    fn pfree_of_unowned_pages_rejected() {
        let (mut sys, proxy, app) = setup();
        let other = sys
            .load(
                ComponentImage::new("OTHER", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        let theirs = sys.run_in_cubicle(other.cid, |sys| proxy.palloc(sys, 1).unwrap());
        let err = sys.run_in_cubicle(app, |sys| proxy.pfree(sys, theirs, 1));
        assert!(matches!(err, Err(CubicleError::NotOwner { .. })));
    }

    #[test]
    fn zero_page_request_is_einval() {
        let (mut sys, proxy, app) = setup();
        let err = sys.run_in_cubicle(app, |sys| proxy.palloc(sys, 0));
        assert!(err.is_err());
    }

    #[test]
    fn calls_counted_on_alloc_edge() {
        let (mut sys, proxy, app) = setup();
        sys.run_in_cubicle(app, |sys| {
            for _ in 0..3 {
                let p = proxy.palloc(sys, 1).unwrap();
                proxy.pfree(sys, p, 1).unwrap();
            }
        });
        assert_eq!(sys.stats().edge(app, proxy.cid()), 6);
    }
}

//! The `TIME` cubicle: monotonic clock.
//!
//! Both application deployments include a `TIME` component (Figures 5
//! and 8); SQLite stamps journal headers and the HTTP server dates its
//! responses. The clock derives nanoseconds from the simulated cycle
//! counter at the paper's testbed frequency (2.20 GHz Xeon Silver 4210).

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, EntryId, LoadedComponent, Result, System,
    Value,
};
use cubicle_mpk::insn::CodeImage;

/// Testbed clock frequency in kHz (2.20 GHz).
pub const CPU_KHZ: u64 = 2_200_000;

/// Converts simulated cycles to nanoseconds at the testbed frequency.
pub fn cycles_to_ns(cycles: u64) -> u64 {
    // ns = cycles / 2.2 = cycles * 10 / 22
    cycles * 10 / 22
}

/// Converts simulated cycles to milliseconds.
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles_to_ns(cycles) as f64 / 1e6
}

/// State of the `TIME` component.
#[derive(Debug, Default)]
pub struct Time {
    /// Number of clock reads served (statistics).
    pub reads: u64,
}

impl_component!(Time);

/// Builds the loadable `TIME` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("TIME", CodeImage::plain(2 * 1024))
        .heap_pages(1)
        .export(
            b.export("uint64_t uk_time_now_ns(void)").unwrap(),
            entry_now,
        )
}

fn entry_now(
    sys: &mut System,
    this: &mut dyn cubicle_core::Component,
    _args: &[Value],
) -> Result<Value> {
    cubicle_core::component_mut::<Time>(this).reads += 1;
    sys.charge(30); // rdtsc + scaling
    Ok(Value::U64(cycles_to_ns(sys.now())))
}

/// Typed caller-side proxy for `TIME`.
#[derive(Clone, Copy, Debug)]
pub struct TimeProxy {
    cid: CubicleId,
    now: EntryId,
}

impl TimeProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbol.
    pub fn resolve(loaded: &LoadedComponent) -> Result<TimeProxy> {
        Ok(TimeProxy {
            cid: loaded.cid,
            now: loaded.entry("uk_time_now_ns")?,
        })
    }

    /// The `TIME` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// Monotonic nanoseconds.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn now_ns(&self, sys: &mut System) -> Result<u64> {
        Ok(sys.cross_call(self.now, &[])?.as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::{ComponentImage, IsolationMode};

    struct Dummy;
    impl_component!(Dummy);

    #[test]
    fn conversion_matches_frequency() {
        assert_eq!(cycles_to_ns(2_200), 1_000);
        assert_eq!(cycles_to_ns(0), 0);
        assert!((cycles_to_ms(2_200_000_000) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn clock_is_monotonic_across_calls() {
        let mut sys = System::new(IsolationMode::Full);
        let time = sys.load(image(), Box::new(Time::default())).unwrap();
        let proxy = TimeProxy::resolve(&time).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        let (t1, t2) = sys.run_in_cubicle(app.cid, |sys| {
            let t1 = proxy.now_ns(sys).unwrap();
            sys.charge(1_000_000);
            let t2 = proxy.now_ns(sys).unwrap();
            (t1, t2)
        });
        assert!(t2 > t1);
        assert_eq!(sys.stats().edge(app.cid, proxy.cid()), 2);
    }
}

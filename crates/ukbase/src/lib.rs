//! # cubicle-ukbase — Unikraft base components
//!
//! The library OS underneath the paper's applications is Unikraft, whose
//! base services appear as cubicles in Figures 5 and 8:
//!
//! * [`alloc`] — `ALLOC`, the system-wide coarse-grained page allocator
//!   (isolated cubicle);
//! * [`time`] — `TIME`, the monotonic clock (isolated cubicle);
//! * [`plat`] — `PLAT`, platform services: console output and boot/halt
//!   bookkeeping (isolated cubicle);
//! * [`libc`] — the shared `LIBC` cubicle: `memcpy`-style helpers that
//!   execute *with the caller's privileges and stack* (paper §3, step ❹),
//!   so their stray accesses are subject to the caller's windows;
//! * [`base`] — a boot helper that loads all of the above and returns
//!   typed proxies.
//!
//! Every isolated component is accessed exclusively through builder-signed
//! cross-cubicle entry points; the proxies in this crate are thin typed
//! wrappers around [`cubicle_core::System::cross_call`].

pub mod alloc;
pub mod base;
pub mod libc;
pub mod plat;
pub mod time;

pub use alloc::{Alloc, AllocProxy};
pub use base::{boot_base, BaseSystem};
pub use plat::{Plat, PlatProxy};
pub use time::{Time, TimeProxy};

//! The shared `LIBC` cubicle.
//!
//! "Shared cubicles such as LIBC are used in cases in which components
//! contain little state and are frequently used by other components. …
//! Calls to a shared cubicle never involve CubicleOS' runtime TCB,
//! effectively executing with the privileges, stack and heap of their
//! calling cubicle." (paper §3, step ❹)
//!
//! The helpers below are therefore plain functions, not entry points: no
//! trampoline, no PKRU switch. Every memory access they make runs under
//! the *current* cubicle's permission set, so a `memcpy` from another
//! cubicle's buffer faults into trap-and-map exactly as in Figure 4.

use cubicle_core::{CubicleError, Result, System};
use cubicle_mpk::VAddr;

/// Cycles of compute per 64-byte chunk a `memcpy` loop spends beyond the
/// memory traffic itself (loop control, addressing).
const MEMCPY_LOOP_OVERHEAD: u64 = 1;

/// `memcpy(dst, src, n)` — copies `n` bytes with the caller's privileges.
///
/// # Errors
///
/// [`CubicleError::WindowDenied`] when either side is not accessible to
/// the current cubicle; [`CubicleError::MachineFault`] for invalid memory.
pub fn memcpy(sys: &mut System, dst: VAddr, src: VAddr, n: usize) -> Result<()> {
    sys.charge(MEMCPY_LOOP_OVERHEAD * (n as u64 / 64 + 1));
    sys.copy(dst, src, n)
}

/// `memset(dst, byte, n)`.
///
/// # Errors
///
/// As [`memcpy`].
pub fn memset(sys: &mut System, dst: VAddr, byte: u8, n: usize) -> Result<()> {
    sys.charge(MEMCPY_LOOP_OVERHEAD * (n as u64 / 64 + 1));
    sys.fill(dst, byte, n)
}

/// `memcmp(a, b, n)` — returns the sign of the first differing byte.
///
/// # Errors
///
/// As [`memcpy`].
pub fn memcmp(sys: &mut System, a: VAddr, b: VAddr, n: usize) -> Result<i32> {
    sys.charge(MEMCPY_LOOP_OVERHEAD * (n as u64 / 64 + 1));
    // Nested pooled reads: each nesting level borrows its own buffer.
    sys.with_read(a, n, |sys, va| {
        sys.with_read(b, n, |_sys, vb| {
            for i in 0..n {
                if va[i] != vb[i] {
                    return Ok(if va[i] < vb[i] { -1 } else { 1 });
                }
            }
            Ok(0)
        })
    })
}

/// `strlen(s)` — length of a NUL-terminated string, bounded by `max`.
///
/// # Errors
///
/// [`CubicleError::InvalidArgument`] when no NUL appears within `max`
/// bytes; memory errors as [`memcpy`].
pub fn strlen(sys: &mut System, s: VAddr, max: usize) -> Result<usize> {
    let mut len = 0;
    let mut addr = s;
    let mut buf = [0u8; 64];
    while len < max {
        let chunk = (max - len).min(64);
        sys.read(addr, &mut buf[..chunk])?;
        if let Some(pos) = buf[..chunk].iter().position(|&b| b == 0) {
            return Ok(len + pos);
        }
        len += chunk;
        addr += chunk;
    }
    Err(CubicleError::InvalidArgument("strlen: unterminated string"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::{impl_component, ComponentImage, IsolationMode, System};
    use cubicle_mpk::insn::CodeImage;

    struct Dummy;
    impl_component!(Dummy);

    fn two_cubicles() -> (System, cubicle_core::CubicleId, cubicle_core::CubicleId) {
        let mut sys = System::new(IsolationMode::Full);
        let a = sys
            .load(
                ComponentImage::new("A", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        let b = sys
            .load(
                ComponentImage::new("B", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        (sys, a.cid, b.cid)
    }

    #[test]
    fn memcpy_within_cubicle() {
        let (mut sys, a, _) = two_cubicles();
        sys.run_in_cubicle(a, |sys| {
            let src = sys.heap_alloc(128, 8).unwrap();
            let dst = sys.heap_alloc(128, 8).unwrap();
            sys.write(src, b"unikraft").unwrap();
            memcpy(sys, dst, src, 8).unwrap();
            assert_eq!(sys.read_vec(dst, 8).unwrap(), b"unikraft");
        });
    }

    #[test]
    fn memcpy_across_cubicles_respects_windows() {
        // The Figure 4 scenario: LIBC's memcpy runs with RAMFS privileges
        // and touches VFS's buffer — allowed only through a window.
        let (mut sys, a, b) = two_cubicles();
        let src = sys.run_in_cubicle(a, |sys| {
            let src = sys.heap_alloc(4096, 4096).unwrap();
            sys.write(src, b"BUF contents").unwrap();
            src
        });
        // Without a window: denied.
        let denied = sys.run_in_cubicle(b, |sys| {
            let dst = sys.heap_alloc(64, 8).unwrap();
            memcpy(sys, dst, src, 12)
        });
        assert!(matches!(denied, Err(CubicleError::WindowDenied { .. })));
        // With a window: zero-copy grant, then the copy succeeds.
        sys.run_in_cubicle(a, |sys| {
            let wid = sys.window_init();
            sys.window_add(wid, src, 4096).unwrap();
            sys.window_open(wid, b).unwrap();
        });
        sys.run_in_cubicle(b, |sys| {
            let dst = sys.heap_alloc(64, 8).unwrap();
            memcpy(sys, dst, src, 12).unwrap();
            assert_eq!(sys.read_vec(dst, 12).unwrap(), b"BUF contents");
        });
    }

    #[test]
    fn memset_and_memcmp() {
        let (mut sys, a, _) = two_cubicles();
        sys.run_in_cubicle(a, |sys| {
            let p = sys.heap_alloc(256, 8).unwrap();
            let q = sys.heap_alloc(256, 8).unwrap();
            memset(sys, p, 0x5A, 256).unwrap();
            memset(sys, q, 0x5A, 256).unwrap();
            assert_eq!(memcmp(sys, p, q, 256).unwrap(), 0);
            sys.write(q + 100, &[0x5B]).unwrap();
            assert_eq!(memcmp(sys, p, q, 256).unwrap(), -1);
            assert_eq!(memcmp(sys, q, p, 256).unwrap(), 1);
        });
    }

    #[test]
    fn strlen_finds_nul() {
        let (mut sys, a, _) = two_cubicles();
        sys.run_in_cubicle(a, |sys| {
            let p = sys.heap_alloc(128, 8).unwrap();
            sys.write(p, b"hello\0world").unwrap();
            assert_eq!(strlen(sys, p, 128).unwrap(), 5);
            let q = sys.heap_alloc(700, 8).unwrap();
            sys.fill(q, b'x', 130).unwrap();
            sys.write(q + 130, &[0]).unwrap();
            assert_eq!(strlen(sys, q, 700).unwrap(), 130);
        });
    }

    #[test]
    fn strlen_unterminated_errors() {
        let (mut sys, a, _) = two_cubicles();
        sys.run_in_cubicle(a, |sys| {
            let p = sys.heap_alloc(16, 8).unwrap();
            sys.fill(p, b'x', 16).unwrap();
            assert!(strlen(sys, p, 16).is_err());
        });
    }
}

//! The `PLAT` cubicle: platform services (console, halt).
//!
//! `PLAT` is "the platform code" in Figure 5 — on real Unikraft it wraps
//! the host (Linux or KVM) for console output, memory discovery and
//! shutdown. Here it offers console output (accumulated into a log the
//! harness can read back) and a halt flag.

use cubicle_core::{
    impl_component, Builder, ComponentImage, CubicleId, EntryId, LoadedComponent, Result, System,
    Value,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::VAddr;

/// State of the `PLAT` component.
#[derive(Debug, Default)]
pub struct Plat {
    /// Everything written to the console.
    pub console: Vec<u8>,
    /// Set by `uk_plat_halt`.
    pub halted: bool,
}

impl_component!(Plat);

/// Builds the loadable `PLAT` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("PLAT", CodeImage::plain(8 * 1024))
        .heap_pages(4)
        .export(
            b.export("long uk_console_out(const char *buf, size_t n)")
                .unwrap(),
            entry_out,
        )
        .export(b.export("void uk_plat_halt(void)").unwrap(), entry_halt)
}

fn entry_out(
    sys: &mut System,
    this: &mut dyn cubicle_core::Component,
    args: &[Value],
) -> Result<Value> {
    let (addr, len) = args[0].as_buf();
    // PLAT reads the caller's buffer — subject to the caller's windows.
    let appended = sys.with_read(addr, len, |sys, bytes| {
        sys.charge(200); // host write syscall amortisation
        cubicle_core::component_mut::<Plat>(this)
            .console
            .extend_from_slice(bytes);
        Ok(())
    });
    match appended {
        Ok(()) => Ok(Value::I64(len as i64)),
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            Ok(Value::I64(cubicle_core::Errno::Eacces.neg()))
        }
        Err(e) => Err(e),
    }
}

fn entry_halt(
    _sys: &mut System,
    this: &mut dyn cubicle_core::Component,
    _args: &[Value],
) -> Result<Value> {
    cubicle_core::component_mut::<Plat>(this).halted = true;
    Ok(Value::Unit)
}

/// Typed caller-side proxy for `PLAT`.
#[derive(Clone, Copy, Debug)]
pub struct PlatProxy {
    cid: CubicleId,
    out: EntryId,
    halt: EntryId,
}

impl PlatProxy {
    /// Resolves the proxy from the loaded component.
    ///
    /// # Errors
    ///
    /// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does
    /// not export the expected symbols.
    pub fn resolve(loaded: &LoadedComponent) -> Result<PlatProxy> {
        Ok(PlatProxy {
            cid: loaded.cid,
            out: loaded.entry("uk_console_out")?,
            halt: loaded.entry("uk_plat_halt")?,
        })
    }

    /// The `PLAT` cubicle's ID.
    pub fn cid(&self) -> CubicleId {
        self.cid
    }

    /// Writes `[buf, buf+len)` to the console. Returns bytes written or
    /// `-errno` (POSIX style).
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn console_out(&self, sys: &mut System, buf: VAddr, len: usize) -> Result<i64> {
        Ok(sys
            .cross_call(self.out, &[Value::buf_in(buf, len)])?
            .as_i64())
    }

    /// Requests a platform halt.
    ///
    /// # Errors
    ///
    /// Kernel errors from the cross-cubicle call.
    pub fn halt(&self, sys: &mut System) -> Result<()> {
        sys.cross_call(self.halt, &[])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::IsolationMode;

    struct Dummy;
    impl_component!(Dummy);

    fn setup() -> (System, PlatProxy, usize, CubicleId) {
        let mut sys = System::new(IsolationMode::Full);
        let plat = sys.load(image(), Box::new(Plat::default())).unwrap();
        let proxy = PlatProxy::resolve(&plat).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(Dummy),
            )
            .unwrap();
        (sys, proxy, plat.slot, app.cid)
    }

    #[test]
    fn console_requires_window() {
        let (mut sys, proxy, _slot, app) = setup();
        let plat_cid = proxy.cid();
        let res = sys.run_in_cubicle(app, |sys| {
            let msg = sys.heap_alloc(64, 8).unwrap();
            sys.write(msg, b"boot ok").unwrap();
            // No window: PLAT cannot read the buffer → -EACCES.
            proxy.console_out(sys, msg, 7).unwrap()
        });
        assert_eq!(res, cubicle_core::Errno::Eacces.neg());
        let res = sys.run_in_cubicle(app, |sys| {
            let msg = sys.heap_alloc(64, 8).unwrap();
            sys.write(msg, b"boot ok").unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, msg, 64).unwrap();
            sys.window_open(wid, plat_cid).unwrap();
            proxy.console_out(sys, msg, 7).unwrap()
        });
        assert_eq!(res, 7);
    }

    #[test]
    fn console_log_accumulates() {
        let (mut sys, proxy, slot, app) = setup();
        let plat_cid = proxy.cid();
        sys.run_in_cubicle(app, |sys| {
            let msg = sys.heap_alloc(64, 8).unwrap();
            let wid = sys.window_init();
            sys.window_add(wid, msg, 64).unwrap();
            sys.window_open(wid, plat_cid).unwrap();
            sys.write(msg, b"one ").unwrap();
            proxy.console_out(sys, msg, 4).unwrap();
            sys.write(msg, b"two").unwrap();
            proxy.console_out(sys, msg, 3).unwrap();
        });
        let log = sys
            .with_component_mut::<Plat, _>(slot, |p, _| String::from_utf8(p.console.clone()))
            .unwrap()
            .unwrap();
        assert_eq!(log, "one two");
    }

    #[test]
    fn halt_sets_flag() {
        let (mut sys, proxy, slot, app) = setup();
        sys.run_in_cubicle(app, |sys| proxy.halt(sys).unwrap());
        let halted = sys
            .with_component_mut::<Plat, _>(slot, |p, _| p.halted)
            .unwrap();
        assert!(halted);
    }
}

//! # cubicle-ipc — message-passing baselines
//!
//! The paper's §6.5 compares CubicleOS against component frameworks with
//! *message-based interfaces*: Genode running on Linux, seL4, Fiasco.OC
//! and NOVA (Figure 10). Architecturally the difference is that a
//! message-based crossing must (a) enter the kernel and switch protection
//! contexts, and (b) **copy** every buffer argument through the message
//! channel — there are no windows and no zero-copy grants.
//!
//! This crate provides the per-kernel cost models
//! ([`IsolationMode::Ipc`]) and marshalling helpers. The same component
//! graph (VFSCORE, RAMFS, …) runs unchanged under these baselines: the
//! kernel's `cross_call` charges the message costs according to the
//! transfer direction of each [`cubicle_core::Value::Buf`] argument.
//!
//! ## Calibration
//!
//! The `fixed` constants model one synchronous call/reply pair, including
//! the Genode RPC layer on top of the raw kernel IPC path (session
//! routing, capability translation, dispatcher). The `per_byte` constants
//! model the copy in + copy out through a dataspace/packet stream.
//! Values are chosen once to land the published Figure 10b ratios and are
//! documented in `EXPERIMENTS.md`; the raw-kernel ordering (seL4's fast
//! IPC < Fiasco.OC ≈ NOVA < Linux's heavyweight transport) follows the
//! literature.

use cubicle_core::{IpcCostModel, IsolationMode};

/// Genode on **seL4**: fast kernel IPC, but strict capability transfer
/// rules make the Genode layer do extra work per crossing; bulk data
/// moves through packet-stream dataspaces.
pub const SEL4: IpcCostModel = IpcCostModel {
    kernel: "SeL4",
    fixed: 33_000,
    per_byte: 6,
    packet_bytes: 4096,
};

/// Genode on **Fiasco.OC**: L4-family IPC with a mature Genode backend.
pub const FIASCO_OC: IpcCostModel = IpcCostModel {
    kernel: "Fiasco.OC",
    fixed: 14_700,
    per_byte: 4,
    packet_bytes: 4096,
};

/// Genode on **NOVA**: microhypervisor IPC, close to Fiasco.OC in
/// Genode's published numbers.
pub const NOVA: IpcCostModel = IpcCostModel {
    kernel: "NOVA",
    fixed: 16_500,
    per_byte: 4,
    packet_bytes: 4096,
};

/// Genode on **Linux**: crossings are SysV-IPC + socket round trips
/// between full processes — by far the most expensive transport (the
/// paper's Genode-4 is 29× slower than native Linux).
pub const GENODE_LINUX: IpcCostModel = IpcCostModel {
    kernel: "Genode/Linux",
    fixed: 168_000,
    per_byte: 20,
    packet_bytes: 4096,
};

/// All four kernels of Figure 10b, in the paper's presentation order.
pub const KERNELS: [IpcCostModel; 4] = [SEL4, FIASCO_OC, NOVA, GENODE_LINUX];

/// Convenience: the isolation mode for a kernel model.
pub fn mode_for(kernel: IpcCostModel) -> IsolationMode {
    IsolationMode::Ipc(kernel)
}

/// Estimated cycles for one call with `payload` buffer bytes — the
/// quantity `cross_call` charges in IPC mode (useful for tests and
/// analytical sanity checks).
pub fn crossing_cost(kernel: &IpcCostModel, payload: usize) -> u64 {
    kernel.fixed + kernel.per_byte * payload as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::{component_mut, impl_component, Builder, ComponentImage, System, Value};
    use cubicle_mpk::insn::CodeImage;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate cost-model sanity checks
    fn kernel_ordering_follows_the_literature() {
        assert!(
            FIASCO_OC.fixed < SEL4.fixed,
            "Genode's seL4 backend is slower than Fiasco's"
        );
        assert!(NOVA.fixed < SEL4.fixed);
        assert!(
            SEL4.fixed < GENODE_LINUX.fixed,
            "process-based transport is the slowest"
        );
    }

    struct Sink {
        bytes_seen: u64,
    }
    impl_component!(Sink);

    fn sink_image() -> ComponentImage {
        let b = Builder::new();
        ComponentImage::new("SINK", CodeImage::plain(128)).export(
            b.export("long sink_write(const void *buf, size_t n)")
                .unwrap(),
            |_sys, this, args| {
                let (_, len) = args[0].as_buf();
                component_mut::<Sink>(this).bytes_seen += len as u64;
                Ok(Value::I64(len as i64))
            },
        )
    }

    struct App;
    impl_component!(App);

    #[test]
    fn ipc_mode_charges_fixed_plus_per_byte() {
        let mut sys = System::new(mode_for(SEL4));
        sys.load(sink_image(), Box::new(Sink { bytes_seen: 0 }))
            .unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(App),
            )
            .unwrap();
        sys.run_in_cubicle(app.cid, |sys| {
            let buf = sys.heap_alloc(10_000, 8).unwrap();
            let t0 = sys.now();
            sys.call("sink_write", &[Value::buf_in(buf, 10_000)])
                .unwrap();
            let dt = sys.now() - t0;
            // fixed + per_byte·n, within slack for the callee's own work
            let expected = crossing_cost(&SEL4, 10_000);
            assert!(dt >= expected, "{dt} >= {expected}");
            assert!(dt < expected + 5_000, "{dt} ≈ {expected}");
        });
        assert_eq!(sys.stats().ipc_msgs, 2);
        assert_eq!(sys.stats().ipc_bytes, 10_000);
    }

    #[test]
    fn ipc_mode_never_faults() {
        let mut sys = System::new(mode_for(FIASCO_OC));
        sys.load(sink_image(), Box::new(Sink { bytes_seen: 0 }))
            .unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(App),
            )
            .unwrap();
        sys.run_in_cubicle(app.cid, |sys| {
            let buf = sys.heap_alloc(4096, 8).unwrap();
            sys.call("sink_write", &[Value::buf_in(buf, 4096)]).unwrap();
        });
        assert_eq!(sys.machine_stats().faults, 0);
        assert_eq!(sys.machine_stats().retags, 0);
    }

    #[test]
    fn scalar_only_calls_cost_just_the_round_trip() {
        let b = Builder::new();
        let img = ComponentImage::new("NOP", CodeImage::plain(64))
            .export(b.export("void nop(void)").unwrap(), |_sys, _this, _args| {
                Ok(Value::Unit)
            });
        struct Nop;
        impl_component!(Nop);
        let mut sys = System::new(mode_for(NOVA));
        sys.load(img, Box::new(Nop)).unwrap();
        let app = sys
            .load(
                ComponentImage::new("APP", CodeImage::plain(64)),
                Box::new(App),
            )
            .unwrap();
        sys.run_in_cubicle(app.cid, |sys| {
            let t0 = sys.now();
            sys.call("nop", &[]).unwrap();
            assert_eq!(sys.now() - t0, NOVA.fixed);
        });
    }

    #[test]
    fn merged_components_skip_the_kernel() {
        // Components in the same protection domain call directly even in
        // IPC mode — the basis of the 3- vs 4-component comparison.
        let mut sys = System::new(mode_for(SEL4));
        let core = sys
            .load(
                ComponentImage::new("CORE", CodeImage::plain(64)),
                Box::new(App),
            )
            .unwrap();
        sys.load_into(sink_image(), Box::new(Sink { bytes_seen: 0 }), core.cid)
            .unwrap();
        sys.run_in_cubicle(core.cid, |sys| {
            let buf = sys.heap_alloc(8192, 8).unwrap();
            let t0 = sys.now();
            sys.call("sink_write", &[Value::buf_in(buf, 8192)]).unwrap();
            let dt = sys.now() - t0;
            assert!(dt < 100, "same-domain call must be a plain call, got {dt}");
        });
        assert_eq!(sys.stats().ipc_msgs, 0);
    }
}

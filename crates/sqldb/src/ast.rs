//! Abstract syntax tree for the supported SQL dialect.

use crate::value::SqlValue;

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=` / `==`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `||`
    Concat,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `NOT`
    Not,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(SqlValue),
    /// Column reference, optionally qualified (`t.col`).
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Left operand.
        expr: Box<Expr>,
        /// Pattern operand.
        pattern: Box<Expr>,
        /// NOT LIKE?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        lo: Box<Expr>,
        /// Upper bound.
        hi: Box<Expr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// `expr [NOT] IN (v, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// NOT IN?
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// Function call (aggregates and scalars). `count(*)` sets `star`.
    FnCall {
        /// Lowercased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `count(*)`.
        star: bool,
    },
}

/// One item of a SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// `expr [AS alias]`
    Expr {
        /// The expression.
        expr: Expr,
        /// Output alias.
        alias: Option<String>,
    },
}

/// A table reference in FROM.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// A SELECT statement.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SelectStmt {
    /// Output expressions.
    pub items: Vec<SelectItem>,
    /// FROM tables (inner joins; ON conditions are folded into `where_`).
    pub from: Vec<TableRef>,
    /// WHERE clause.
    pub where_: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (aggregate context).
    pub having: Option<Expr>,
    /// ORDER BY expressions with descending flags.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// OFFSET.
    pub offset: Option<u64>,
    /// DISTINCT?
    pub distinct: bool,
}

/// A column definition in CREATE TABLE.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type (drives affinity).
    pub decl_type: String,
    /// INTEGER PRIMARY KEY (rowid alias)?
    pub primary_key: bool,
    /// NOT NULL?
    pub not_null: bool,
    /// UNIQUE?
    pub unique: bool,
    /// DEFAULT literal.
    pub default: Option<SqlValue>,
}

/// A SQL statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Columns.
        columns: Vec<ColumnDef>,
        /// IF NOT EXISTS?
        if_not_exists: bool,
    },
    /// CREATE \[UNIQUE\] INDEX.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed columns.
        columns: Vec<String>,
        /// UNIQUE?
        unique: bool,
        /// IF NOT EXISTS?
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS?
        if_exists: bool,
    },
    /// DROP INDEX.
    DropIndex {
        /// Index name.
        name: String,
        /// IF EXISTS?
        if_exists: bool,
    },
    /// INSERT.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Rows of value expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select(SelectStmt),
    /// UPDATE.
    Update {
        /// Target table.
        table: String,
        /// SET assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE clause.
        where_: Option<Expr>,
    },
    /// DELETE.
    Delete {
        /// Target table.
        table: String,
        /// WHERE clause.
        where_: Option<Expr>,
    },
    /// BEGIN \[TRANSACTION\].
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// PRAGMA name [= value] (only `integrity_check` has semantics).
    Pragma(String),
    /// ALTER TABLE … RENAME TO ….
    AlterRename {
        /// Current table name.
        table: String,
        /// New table name.
        to: String,
    },
    /// ALTER TABLE … ADD \[COLUMN\] ….
    AlterAddColumn {
        /// Target table.
        table: String,
        /// The new column (appended last; existing rows read it as the
        /// default value).
        column: ColumnDef,
    },
}

//! Row record serialisation and memcomparable index-key encoding.

use crate::error::{Result, SqlError};
use crate::value::SqlValue;

// ---------------------------------------------------------------------------
// Record format (row payloads): tag byte + payload per value.
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_REAL: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BLOB: u8 = 4;

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| SqlError::Corrupt("truncated varint".into()))?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(SqlError::Corrupt("oversized varint".into()));
        }
    }
}

/// Serialises a row of values.
pub fn encode_record(values: &[SqlValue]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8 + 2);
    write_varint(&mut out, values.len() as u64);
    for v in values {
        match v {
            SqlValue::Null => out.push(TAG_NULL),
            SqlValue::Integer(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            SqlValue::Real(r) => {
                out.push(TAG_REAL);
                out.extend_from_slice(&r.to_le_bytes());
            }
            SqlValue::Text(s) => {
                out.push(TAG_TEXT);
                write_varint(&mut out, s.len() as u64);
                out.extend_from_slice(s.as_bytes());
            }
            SqlValue::Blob(b) => {
                out.push(TAG_BLOB);
                write_varint(&mut out, b.len() as u64);
                out.extend_from_slice(b);
            }
        }
    }
    out
}

/// Deserialises a row of values.
///
/// # Errors
///
/// [`SqlError::Corrupt`] on malformed input.
pub fn decode_record(buf: &[u8]) -> Result<Vec<SqlValue>> {
    let mut pos = 0;
    let n = read_varint(buf, &mut pos)? as usize;
    if n > 65_536 {
        return Err(SqlError::Corrupt("implausible column count".into()));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *buf
            .get(pos)
            .ok_or_else(|| SqlError::Corrupt("truncated record".into()))?;
        pos += 1;
        let v = match tag {
            TAG_NULL => SqlValue::Null,
            TAG_INT => {
                let bytes: [u8; 8] = buf
                    .get(pos..pos + 8)
                    .ok_or_else(|| SqlError::Corrupt("truncated int".into()))?
                    .try_into()
                    .expect("8 bytes");
                pos += 8;
                SqlValue::Integer(i64::from_le_bytes(bytes))
            }
            TAG_REAL => {
                let bytes: [u8; 8] = buf
                    .get(pos..pos + 8)
                    .ok_or_else(|| SqlError::Corrupt("truncated real".into()))?
                    .try_into()
                    .expect("8 bytes");
                pos += 8;
                SqlValue::Real(f64::from_le_bytes(bytes))
            }
            TAG_TEXT => {
                let len = read_varint(buf, &mut pos)? as usize;
                let bytes = buf
                    .get(pos..pos + len)
                    .ok_or_else(|| SqlError::Corrupt("truncated text".into()))?;
                pos += len;
                SqlValue::Text(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| SqlError::Corrupt("invalid utf-8 in text".into()))?,
                )
            }
            TAG_BLOB => {
                let len = read_varint(buf, &mut pos)? as usize;
                let bytes = buf
                    .get(pos..pos + len)
                    .ok_or_else(|| SqlError::Corrupt("truncated blob".into()))?;
                pos += len;
                SqlValue::Blob(bytes.to_vec())
            }
            t => return Err(SqlError::Corrupt(format!("unknown value tag {t}"))),
        };
        out.push(v);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Memcomparable key encoding: byte order == SqlValue::total_cmp order.
// ---------------------------------------------------------------------------

const RANK_NULL: u8 = 0x10;
const RANK_NUM: u8 = 0x20;
const RANK_TEXT: u8 = 0x30;
const RANK_BLOB: u8 = 0x40;

fn f64_sort_bits(r: f64) -> u64 {
    let bits = r.to_bits();
    if bits & (1 << 63) != 0 {
        !bits // negative: flip everything
    } else {
        bits | (1 << 63) // positive: set sign bit
    }
}

/// Appends the memcomparable encoding of one value.
pub fn encode_key_value(out: &mut Vec<u8>, v: &SqlValue) {
    match v {
        SqlValue::Null => out.push(RANK_NULL),
        SqlValue::Integer(i) => {
            out.push(RANK_NUM);
            out.extend_from_slice(&f64_sort_bits(*i as f64).to_be_bytes());
            // disambiguate equal doubles from distinct giant ints
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        SqlValue::Real(r) => {
            out.push(RANK_NUM);
            out.extend_from_slice(&f64_sort_bits(*r).to_be_bytes());
            out.extend_from_slice(&f64_sort_bits(*r).to_be_bytes());
        }
        SqlValue::Text(s) => {
            out.push(RANK_TEXT);
            // escape 0x00 → 0x00 0xFF, terminate with 0x00 0x00
            for &b in s.as_bytes() {
                out.push(b);
                if b == 0 {
                    out.push(0xFF);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
        SqlValue::Blob(bytes) => {
            out.push(RANK_BLOB);
            for &b in bytes {
                out.push(b);
                if b == 0 {
                    out.push(0xFF);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// Encodes a composite key (index columns), optionally terminated by a
/// rowid for uniqueness.
pub fn encode_index_key(values: &[SqlValue], rowid: Option<i64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 10 + 9);
    for v in values {
        encode_key_value(&mut out, v);
    }
    if let Some(rid) = rowid {
        out.push(0xFE); // rowid marker, sorts after any value rank
        out.extend_from_slice(&encode_rowid(rid));
    }
    out
}

/// Encodes a rowid as 8 sortable big-endian bytes.
pub fn encode_rowid(rowid: i64) -> [u8; 8] {
    ((rowid as u64) ^ (1 << 63)).to_be_bytes()
}

/// Decodes a rowid from its sortable encoding.
pub fn decode_rowid(bytes: &[u8]) -> Result<i64> {
    let arr: [u8; 8] = bytes
        .get(..8)
        .ok_or_else(|| SqlError::Corrupt("truncated rowid".into()))?
        .try_into()
        .expect("8 bytes");
    Ok((u64::from_be_bytes(arr) ^ (1 << 63)) as i64)
}

/// Extracts the trailing rowid from an index key produced by
/// [`encode_index_key`] with `rowid: Some(_)`.
///
/// # Errors
///
/// [`SqlError::Corrupt`] when the marker is missing.
pub fn index_key_rowid(key: &[u8]) -> Result<i64> {
    if key.len() < 9 || key[key.len() - 9] != 0xFE {
        return Err(SqlError::Corrupt("index key has no rowid suffix".into()));
    }
    decode_rowid(&key[key.len() - 8..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    fn roundtrip(vals: Vec<SqlValue>) {
        let enc = encode_record(&vals);
        let dec = decode_record(&enc).unwrap();
        assert_eq!(vals, dec);
    }

    #[test]
    fn record_round_trips() {
        roundtrip(vec![]);
        roundtrip(vec![SqlValue::Null]);
        roundtrip(vec![
            SqlValue::Integer(-42),
            SqlValue::Real(3.25),
            SqlValue::Text("héllo".into()),
            SqlValue::Blob(vec![0, 1, 255]),
            SqlValue::Null,
        ]);
        roundtrip(vec![SqlValue::Text("x".repeat(10_000))]);
    }

    #[test]
    fn record_rejects_garbage() {
        assert!(decode_record(&[5]).is_err());
        assert!(decode_record(&[1, 99]).is_err());
        assert!(decode_record(&[1, TAG_INT, 1, 2]).is_err());
    }

    #[test]
    fn key_order_matches_value_order() {
        let vals = [
            SqlValue::Null,
            SqlValue::Integer(i64::MIN / 2),
            SqlValue::Integer(-1),
            SqlValue::Real(-0.5),
            SqlValue::Integer(0),
            SqlValue::Real(0.5),
            SqlValue::Integer(1),
            SqlValue::Integer(1000),
            SqlValue::Real(1e18),
            SqlValue::Text("".into()),
            SqlValue::Text("a".into()),
            SqlValue::Text("ab".into()),
            SqlValue::Text("b".into()),
            SqlValue::Blob(vec![]),
            SqlValue::Blob(vec![1]),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let ka = encode_index_key(std::slice::from_ref(a), None);
                let kb = encode_index_key(std::slice::from_ref(b), None);
                let expect = a.total_cmp(b);
                let got = ka.cmp(&kb);
                if expect != Ordering::Equal {
                    assert_eq!(got, expect, "{i} {a:?} vs {j} {b:?}");
                }
            }
        }
    }

    #[test]
    fn text_prefix_orders_before_longer() {
        let a = encode_index_key(&[SqlValue::Text("abc".into())], None);
        let b = encode_index_key(&[SqlValue::Text("abcd".into())], None);
        assert!(a < b);
    }

    #[test]
    fn embedded_nul_in_text_is_escaped() {
        let a = encode_index_key(&[SqlValue::Text("a\0b".into())], None);
        let b = encode_index_key(&[SqlValue::Text("a".into())], None);
        assert!(b < a, "'a' sorts before 'a\\0b'");
    }

    #[test]
    fn rowid_encoding_is_sortable() {
        let ids = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for w in ids.windows(2) {
            assert!(encode_rowid(w[0]) < encode_rowid(w[1]));
        }
        for id in ids {
            assert_eq!(decode_rowid(&encode_rowid(id)).unwrap(), id);
        }
    }

    #[test]
    fn index_key_rowid_extraction() {
        let k = encode_index_key(&[SqlValue::Text("x".into())], Some(77));
        assert_eq!(index_key_rowid(&k).unwrap(), 77);
        let k2 = encode_index_key(&[SqlValue::Integer(1)], None);
        assert!(index_key_rowid(&k2).is_err());
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let k1 = encode_index_key(&[SqlValue::Integer(1), SqlValue::Text("b".into())], None);
        let k2 = encode_index_key(&[SqlValue::Integer(2), SqlValue::Text("a".into())], None);
        assert!(k1 < k2, "first column dominates");
    }
}

//! Write-ahead log for the pager.
//!
//! The rollback journal (PR 1's design) cannot survive a crash *during*
//! write-back: commit writes dirty pages into the database file in
//! place, so a quarantine mid-sweep leaves the file a mix of old and new
//! pages with only the journal's undo images between the user and data
//! loss. The WAL inverts the scheme: committed pages are *appended* to a
//! side log and the database file is only rewritten at checkpoint time,
//! when every frame is already durable. A crash at any byte boundary
//! loses at most the uncommitted tail.
//!
//! ## File layout
//!
//! ```text
//!  offset 0                16                                4128
//!  +-------------------+  +----------------------------+
//!  | magic  "CBWAL001" |  | frame 0                    |  frame 1 ...
//!  | version u32 = 1   |  |  pno      u32 LE           |
//!  | reserved u32      |  |  db_size  u32 LE (0 = not  |
//!  +-------------------+  |           a commit record) |
//!                         |  checksum u64 LE (chained) |
//!                         |  page data [4096]          |
//!                         +----------------------------+
//! ```
//!
//! Every frame is 4112 bytes: a 16-byte header followed by one page
//! image. `db_size != 0` marks a **commit record**: the frame is the
//! last of its transaction and `db_size` is the database page count
//! after the transaction. Frames between commit records belong to one
//! transaction (spilled by mid-transaction cache evictions, then the
//! commit sweep).
//!
//! The checksum chains: each frame's value is FNV-1a seeded with the
//! *previous* frame's checksum (the file header acts as frame -1 with
//! the FNV offset basis), folded over the frame header fields and the
//! page data. A torn write therefore invalidates everything from the
//! torn frame onward — recovery cannot accidentally resurrect stale
//! bytes from a recycled region of the file.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans the log front to back, buffering frames until a
//! commit record proves their transaction durable. The scan stops at the
//! first short or checksum-mismatching frame; everything from there on
//! — and any trailing committed-record-less frames — is the *torn tail*
//! and is physically truncated away. The result is exactly the
//! committed prefix: every committed transaction's pages, no
//! uncommitted page, never a panic ([`SqlError::TornWal`] internally,
//! tolerated by recovery, surfaced by [`Wal::check`]).

use crate::error::{Result, SqlError};
use crate::pager::DB_PAGE;
use crate::storage::{StorageEnv, StorageFile};
use cubicle_core::System;
use std::collections::HashMap;

/// Magic bytes opening a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"CBWAL001";

/// Size of the WAL file header in bytes.
pub const WAL_HEADER: u64 = 16;

/// Size of a frame header in bytes.
pub const FRAME_HEADER: usize = 16;

/// Total size of one frame (header + page image).
pub const FRAME_SIZE: u64 = (FRAME_HEADER + DB_PAGE) as u64;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// WAL sidecar path for a database at `path`.
pub fn wal_path(path: &str) -> String {
    format!("{path}-wal")
}

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Chained checksum of one frame given the previous frame's checksum.
fn frame_checksum(prev: u64, pno: u32, db_size: u32, data: &[u8]) -> u64 {
    let h = fnv1a(prev, &pno.to_le_bytes());
    let h = fnv1a(h, &db_size.to_le_bytes());
    fnv1a(h, data)
}

/// What a recovery scan found in an existing WAL.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// Latest committed frame per page: `pno → data offset` in the WAL.
    pub index: HashMap<u32, u64>,
    /// Database page count recorded by the last commit record (0 when
    /// the log holds no committed transaction).
    pub db_pages: u32,
    /// Committed frames applied during the scan (including frames later
    /// superseded within the log).
    pub frames_recovered: u64,
    /// Was a torn or uncommitted tail discarded?
    pub tail_discarded: bool,
    /// Offset the discarded tail began at (valid when `tail_discarded`).
    pub tail_offset: u64,
}

/// An open write-ahead log.
pub struct Wal {
    file: Box<dyn StorageFile>,
    /// End offset of the last fully appended frame.
    end: u64,
    /// End offset covered by the last commit record.
    committed_end: u64,
    /// End offset known durable (covered by a sync).
    synced_end: u64,
    /// Running chained checksum at `end`.
    chain: u64,
    /// Chain value at `committed_end`, for discarding uncommitted frames.
    committed_chain: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("end", &self.end)
            .field("committed_end", &self.committed_end)
            .field("synced_end", &self.synced_end)
            .finish()
    }
}

impl Wal {
    /// Opens (creating or recovering) the WAL for the database at
    /// `db_path`, returning the log positioned after the committed
    /// prefix plus what the recovery scan found. Any torn or
    /// uncommitted tail has been truncated away on return.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`SqlError::CorruptJournal`] when a non-empty file
    /// does not carry the WAL magic (corruption, not a crash artifact).
    pub fn open(
        sys: &mut System,
        env: &mut dyn StorageEnv,
        db_path: &str,
    ) -> Result<(Wal, WalRecovery)> {
        let mut file = env.open(sys, &wal_path(db_path))?;
        let size = file.size(sys)?;
        let mut recovery = WalRecovery::default();
        if size < WAL_HEADER {
            // Fresh log, or a header torn by a crash before the first
            // sync: either way nothing was committed through it.
            if size > 0 {
                recovery.tail_discarded = true;
                recovery.tail_offset = 0;
                file.truncate(sys, 0)?;
            }
            let mut header = [0u8; WAL_HEADER as usize];
            header[..8].copy_from_slice(WAL_MAGIC);
            header[8..12].copy_from_slice(&1u32.to_le_bytes());
            file.pwrite(sys, 0, &header)?;
            return Ok((
                Wal {
                    file,
                    end: WAL_HEADER,
                    committed_end: WAL_HEADER,
                    synced_end: WAL_HEADER,
                    chain: FNV_OFFSET,
                    committed_chain: FNV_OFFSET,
                },
                recovery,
            ));
        }
        let mut magic = [0u8; 8];
        file.pread(sys, 0, &mut magic)?;
        if &magic != WAL_MAGIC {
            return Err(SqlError::CorruptJournal {
                offset: 0,
                detail: "bad WAL magic".into(),
            });
        }

        // Scan frames, promoting buffered ones at each commit record.
        let mut off = WAL_HEADER;
        let mut chain = FNV_OFFSET;
        let mut committed_end = WAL_HEADER;
        let mut committed_chain = FNV_OFFSET;
        let mut pending: Vec<(u32, u64)> = Vec::new();
        loop {
            match read_frame(sys, file.as_mut(), off, size, chain) {
                Ok(None) => break, // clean end of log
                Ok(Some((pno, db_size, next_chain))) => {
                    pending.push((pno, off + FRAME_HEADER as u64));
                    chain = next_chain;
                    off += FRAME_SIZE;
                    if db_size != 0 {
                        recovery.frames_recovered += pending.len() as u64;
                        for (p, data_off) in pending.drain(..) {
                            recovery.index.insert(p, data_off);
                        }
                        recovery.db_pages = db_size;
                        committed_end = off;
                        committed_chain = chain;
                    }
                }
                Err(SqlError::TornWal { .. }) => break, // tail starts here
                Err(e) => return Err(e),
            }
        }
        if committed_end < size {
            recovery.tail_discarded = true;
            recovery.tail_offset = committed_end;
            file.truncate(sys, committed_end)?;
        }
        Ok((
            Wal {
                file,
                end: committed_end,
                committed_end,
                // What survived recovery *is* the durable state.
                synced_end: committed_end,
                chain: committed_chain,
                committed_chain,
            },
            recovery,
        ))
    }

    /// Strict recovery check: like [`Wal::open`]'s scan, but a torn tail
    /// is an error rather than silently discarded. Lets callers that
    /// must distinguish "clean log" from "crash happened" see the typed
    /// [`SqlError::TornWal`] with the tail's byte offset.
    ///
    /// # Errors
    ///
    /// [`SqlError::TornWal`] for any discarded tail,
    /// [`SqlError::CorruptJournal`] for a bad header, I/O errors.
    pub fn check(sys: &mut System, env: &mut dyn StorageEnv, db_path: &str) -> Result<WalRecovery> {
        let wp = wal_path(db_path);
        if !env.exists(sys, &wp)? {
            return Ok(WalRecovery::default());
        }
        let mut file = env.open(sys, &wp)?;
        let size = file.size(sys)?;
        if size == 0 {
            return Ok(WalRecovery::default());
        }
        if size < WAL_HEADER {
            return Err(SqlError::TornWal { offset: 0 });
        }
        let mut magic = [0u8; 8];
        file.pread(sys, 0, &mut magic)?;
        if &magic != WAL_MAGIC {
            return Err(SqlError::CorruptJournal {
                offset: 0,
                detail: "bad WAL magic".into(),
            });
        }
        let mut recovery = WalRecovery::default();
        let mut off = WAL_HEADER;
        let mut chain = FNV_OFFSET;
        let mut committed_end = WAL_HEADER;
        let mut pending: Vec<(u32, u64)> = Vec::new();
        loop {
            match read_frame(sys, file.as_mut(), off, size, chain)? {
                None => break,
                Some((pno, db_size, next_chain)) => {
                    pending.push((pno, off + FRAME_HEADER as u64));
                    chain = next_chain;
                    off += FRAME_SIZE;
                    if db_size != 0 {
                        recovery.frames_recovered += pending.len() as u64;
                        for (p, data_off) in pending.drain(..) {
                            recovery.index.insert(p, data_off);
                        }
                        recovery.db_pages = db_size;
                        committed_end = off;
                    }
                }
            }
        }
        if committed_end < size {
            return Err(SqlError::TornWal {
                offset: committed_end,
            });
        }
        Ok(recovery)
    }

    /// Appends one frame and returns the offset of its page data.
    /// `db_size != 0` makes the frame a commit record. The frame is not
    /// durable until [`Wal::sync`], nor part of the committed prefix
    /// until [`Wal::mark_committed`].
    ///
    /// # Errors
    ///
    /// I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`DB_PAGE`] bytes.
    pub fn append_frame(
        &mut self,
        sys: &mut System,
        pno: u32,
        db_size: u32,
        data: &[u8],
    ) -> Result<u64> {
        assert_eq!(data.len(), DB_PAGE, "frames carry exactly one page");
        let checksum = frame_checksum(self.chain, pno, db_size, data);
        let mut frame = Vec::with_capacity(FRAME_SIZE as usize);
        frame.extend_from_slice(&pno.to_le_bytes());
        frame.extend_from_slice(&db_size.to_le_bytes());
        frame.extend_from_slice(&checksum.to_le_bytes());
        frame.extend_from_slice(data);
        self.file.pwrite(sys, self.end, &frame)?;
        let data_off = self.end + FRAME_HEADER as u64;
        self.end += FRAME_SIZE;
        self.chain = checksum;
        Ok(data_off)
    }

    /// Reads one page image out of the log at `data_off` (an offset
    /// previously returned by [`Wal::append_frame`] or found in a
    /// [`WalRecovery`] index).
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn read_page_at(&mut self, sys: &mut System, data_off: u64, buf: &mut [u8]) -> Result<()> {
        self.file.pread(sys, data_off, buf)?;
        Ok(())
    }

    /// Makes everything appended so far durable.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn sync(&mut self, sys: &mut System) -> Result<()> {
        self.file.sync(sys)?;
        self.synced_end = self.end;
        Ok(())
    }

    /// Marks the current end of log as the committed prefix (the caller
    /// just appended a commit record).
    pub fn mark_committed(&mut self) {
        self.committed_end = self.end;
        self.committed_chain = self.chain;
    }

    /// Discards every frame appended after the last commit record
    /// (transaction rollback).
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn rollback_uncommitted(&mut self, sys: &mut System) -> Result<()> {
        if self.end > self.committed_end {
            self.file.truncate(sys, self.committed_end)?;
            self.end = self.committed_end;
            self.chain = self.committed_chain;
            self.synced_end = self.synced_end.min(self.committed_end);
        }
        Ok(())
    }

    /// Empties the log back to a bare header (after a completed
    /// checkpoint moved every committed frame into the database file).
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn reset(&mut self, sys: &mut System) -> Result<()> {
        self.file.truncate(sys, WAL_HEADER)?;
        self.file.sync(sys)?;
        self.end = WAL_HEADER;
        self.committed_end = WAL_HEADER;
        self.synced_end = WAL_HEADER;
        self.chain = FNV_OFFSET;
        self.committed_chain = FNV_OFFSET;
        Ok(())
    }

    /// End offset of the last fully appended frame.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// End offset of the committed prefix.
    pub fn committed_end(&self) -> u64 {
        self.committed_end
    }

    /// End offset known durable.
    pub fn synced_end(&self) -> u64 {
        self.synced_end
    }

    /// Closes the underlying file.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn close(&mut self, sys: &mut System) -> Result<()> {
        self.file.close(sys)?;
        Ok(())
    }
}

/// Reads and validates the frame at `off`. `Ok(None)` = clean end of
/// log; [`SqlError::TornWal`] = short or checksum-mismatching frame.
fn read_frame(
    sys: &mut System,
    file: &mut dyn StorageFile,
    off: u64,
    size: u64,
    chain: u64,
) -> Result<Option<(u32, u32, u64)>> {
    if off == size {
        return Ok(None);
    }
    if off + FRAME_SIZE > size {
        return Err(SqlError::TornWal { offset: off });
    }
    let mut header = [0u8; FRAME_HEADER];
    file.pread(sys, off, &mut header)?;
    let pno = u32::from_le_bytes(header[0..4].try_into().expect("4"));
    let db_size = u32::from_le_bytes(header[4..8].try_into().expect("4"));
    let stored = u64::from_le_bytes(header[8..16].try_into().expect("8"));
    let mut data = vec![0u8; DB_PAGE];
    file.pread(sys, off + FRAME_HEADER as u64, &mut data)?;
    if frame_checksum(chain, pno, db_size, &data) != stored {
        return Err(SqlError::TornWal { offset: off });
    }
    Ok(Some((pno, db_size, stored)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HostEnv;
    use cubicle_core::{IsolationMode, System};

    fn sys() -> System {
        System::new(IsolationMode::Unikraft)
    }

    fn page(tag: u8) -> Vec<u8> {
        let mut p = vec![0u8; DB_PAGE];
        p[0] = tag;
        p[DB_PAGE - 1] = tag;
        p
    }

    #[test]
    fn fresh_log_is_empty() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let (wal, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(wal.end(), WAL_HEADER);
        assert_eq!(rec.frames_recovered, 0);
        assert!(!rec.tail_discarded);
    }

    #[test]
    fn committed_frames_replay() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
            wal.append_frame(&mut sys, 1, 0, &page(0x11)).unwrap();
            wal.append_frame(&mut sys, 2, 3, &page(0x22)).unwrap();
            wal.mark_committed();
            wal.sync(&mut sys).unwrap();
        }
        let (mut wal, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 2);
        assert_eq!(rec.db_pages, 3);
        assert!(!rec.tail_discarded);
        let mut buf = vec![0u8; DB_PAGE];
        wal.read_page_at(&mut sys, rec.index[&1], &mut buf).unwrap();
        assert_eq!(buf[0], 0x11);
        wal.read_page_at(&mut sys, rec.index[&2], &mut buf).unwrap();
        assert_eq!(buf[0], 0x22);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
            wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
            wal.mark_committed();
            // a second transaction appends but never commits
            wal.append_frame(&mut sys, 5, 0, &page(5)).unwrap();
            wal.sync(&mut sys).unwrap();
        }
        let (_, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 1);
        assert!(rec.tail_discarded);
        assert_eq!(rec.tail_offset, WAL_HEADER + FRAME_SIZE);
        assert!(!rec.index.contains_key(&5));
    }

    #[test]
    fn torn_frame_invalidates_suffix() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
            wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
            wal.mark_committed();
            wal.append_frame(&mut sys, 2, 3, &page(2)).unwrap();
            wal.mark_committed();
            wal.sync(&mut sys).unwrap();
        }
        // tear the second frame mid-way
        {
            let mut f = env.open(&mut sys, &wal_path("/a.db")).unwrap();
            f.truncate(&mut sys, WAL_HEADER + FRAME_SIZE + 100).unwrap();
        }
        let (_, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 1, "only the intact commit");
        assert!(rec.tail_discarded);
        assert_eq!(rec.db_pages, 2);
    }

    #[test]
    fn corrupt_byte_detected_by_chain() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
            wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
            wal.mark_committed();
            wal.sync(&mut sys).unwrap();
        }
        {
            let mut f = env.open(&mut sys, &wal_path("/a.db")).unwrap();
            // flip a data byte inside the frame
            f.pwrite(&mut sys, WAL_HEADER + FRAME_HEADER as u64 + 7, &[0xFF])
                .unwrap();
        }
        let (_, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 0);
        assert!(rec.tail_discarded);
        assert_eq!(rec.tail_offset, WAL_HEADER);
    }

    #[test]
    fn check_reports_typed_torn_error() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
            wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
            wal.mark_committed();
            wal.append_frame(&mut sys, 2, 0, &page(2)).unwrap();
            wal.sync(&mut sys).unwrap();
        }
        let err = Wal::check(&mut sys, &mut env, "/a.db");
        match err {
            Err(SqlError::TornWal { offset }) => {
                assert_eq!(offset, WAL_HEADER + FRAME_SIZE);
            }
            other => panic!("expected TornWal, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_corrupt_not_torn() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let mut f = env.open(&mut sys, &wal_path("/a.db")).unwrap();
            f.pwrite(&mut sys, 0, b"garbage-header-bytes").unwrap();
        }
        assert!(matches!(
            Wal::open(&mut sys, &mut env, "/a.db"),
            Err(SqlError::CorruptJournal { offset: 0, .. })
        ));
        assert!(matches!(
            Wal::check(&mut sys, &mut env, "/a.db"),
            Err(SqlError::CorruptJournal { offset: 0, .. })
        ));
    }

    #[test]
    fn rollback_discards_uncommitted() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
        wal.mark_committed();
        let end = wal.end();
        wal.append_frame(&mut sys, 2, 0, &page(2)).unwrap();
        wal.rollback_uncommitted(&mut sys).unwrap();
        assert_eq!(wal.end(), end);
        // chain restored: a new append after rollback still validates
        wal.append_frame(&mut sys, 3, 4, &page(3)).unwrap();
        wal.mark_committed();
        wal.sync(&mut sys).unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 2);
        assert!(rec.index.contains_key(&3) && !rec.index.contains_key(&2));
    }

    #[test]
    fn reset_empties_log() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let (mut wal, _) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        wal.append_frame(&mut sys, 1, 2, &page(1)).unwrap();
        wal.mark_committed();
        wal.sync(&mut sys).unwrap();
        wal.reset(&mut sys).unwrap();
        assert_eq!(wal.end(), WAL_HEADER);
        drop(wal);
        let (_, rec) = Wal::open(&mut sys, &mut env, "/a.db").unwrap();
        assert_eq!(rec.frames_recovered, 0);
    }
}

//! # cubicle-sqldb — the SQLite-like embedded SQL engine
//!
//! The paper's CPU/memory-intensive workload (§6.4–6.5) is SQLite 3.30
//! running `speedtest1` on top of the CubicleOS file stack. This crate is
//! the laboratory substitute: a complete embedded SQL engine —
//! tokenizer → parser → planner → executor over a B+tree storage layer
//! with a page cache and a crash-consistent write-ahead log (a rollback
//! journal remains available as the A/B baseline) — whose only door to
//! the OS is the [`storage::StorageEnv`] abstraction.
//!
//! Two storage environments exist: [`storage::HostEnv`] (in-process, for
//! engine unit tests) and [`storage::CubicleEnv`] (the real port: every
//! file operation is a windowed cross-cubicle call through `VFSCORE` to
//! `RAMFS`). The [`speedtest`] module reproduces the speedtest1 workload
//! with the query identifiers used on the x-axis of Figure 6.

pub mod ast;
pub mod btree;
mod db;
mod error;
mod exec;
pub mod pager;
pub mod parser;
pub mod record;
pub mod speedtest;
pub mod storage;
pub mod token;
mod value;
pub mod wal;

pub use db::{Database, QueryResult};
pub use error::{Result, SqlError};
pub use pager::JournalMode;
pub use value::{Affinity, SqlValue};

//! Error type of the SQL engine.

use cubicle_core::CubicleError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the database engine.
#[derive(Clone, Debug)]
pub enum SqlError {
    /// Syntax error from the tokenizer/parser.
    Parse(String),
    /// Reference to an unknown table.
    NoSuchTable(String),
    /// Reference to an unknown column.
    NoSuchColumn(String),
    /// Reference to an unknown index.
    NoSuchIndex(String),
    /// Schema object already exists.
    AlreadyExists(String),
    /// Constraint violation (PRIMARY KEY / UNIQUE / NOT NULL).
    Constraint(String),
    /// Type error during evaluation.
    Type(String),
    /// Arity/semantic error in a statement.
    Misuse(String),
    /// Storage-layer failure (`-errno` from the file system stack).
    Io(i64),
    /// Database file is corrupted.
    Corrupt(String),
    /// Kernel-level failure (isolation violation etc.).
    Kernel(CubicleError),
    /// Transaction state error (e.g. COMMIT without BEGIN).
    Transaction(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "syntax error: {m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            SqlError::AlreadyExists(o) => write!(f, "object already exists: {o}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Misuse(m) => write!(f, "misuse: {m}"),
            SqlError::Io(e) => write!(f, "i/o error: errno {e}"),
            SqlError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            SqlError::Kernel(e) => write!(f, "kernel error: {e}"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CubicleError> for SqlError {
    fn from(e: CubicleError) -> Self {
        SqlError::Kernel(e)
    }
}

/// Result alias for the engine.
pub type Result<T, E = SqlError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SqlError::NoSuchTable("t1".into())
            .to_string()
            .contains("t1"));
        assert!(SqlError::Io(-5).to_string().contains("-5"));
    }

    #[test]
    fn kernel_source() {
        let e = SqlError::from(CubicleError::OutOfKeys);
        assert!(e.source().is_some());
    }
}

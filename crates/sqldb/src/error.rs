//! Error type of the SQL engine.

use cubicle_core::CubicleError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the database engine.
#[derive(Clone, Debug)]
pub enum SqlError {
    /// Syntax error from the tokenizer/parser.
    Parse(String),
    /// Reference to an unknown table.
    NoSuchTable(String),
    /// Reference to an unknown column.
    NoSuchColumn(String),
    /// Reference to an unknown index.
    NoSuchIndex(String),
    /// Schema object already exists.
    AlreadyExists(String),
    /// Constraint violation (PRIMARY KEY / UNIQUE / NOT NULL).
    Constraint(String),
    /// Type error during evaluation.
    Type(String),
    /// Arity/semantic error in a statement.
    Misuse(String),
    /// Storage-layer failure (`-errno` from the file system stack).
    Io(i64),
    /// Database file is corrupted.
    Corrupt(String),
    /// Kernel-level failure (isolation violation etc.).
    Kernel(CubicleError),
    /// Transaction state error (e.g. COMMIT without BEGIN).
    Transaction(String),
    /// The write-ahead log ends in a torn frame at `offset`: the frame
    /// is short or fails its chained checksum. Recovery treats
    /// everything from `offset` on as never written.
    TornWal { offset: u64 },
    /// A journal / WAL file exists but is not recognisable (bad magic or
    /// malformed header) at `offset`. Unlike [`SqlError::TornWal`] this
    /// is not the benign artifact of a crash and is surfaced to callers.
    CorruptJournal { offset: u64, detail: String },
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(m) => write!(f, "syntax error: {m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            SqlError::AlreadyExists(o) => write!(f, "object already exists: {o}"),
            SqlError::Constraint(m) => write!(f, "constraint violation: {m}"),
            SqlError::Type(m) => write!(f, "type error: {m}"),
            SqlError::Misuse(m) => write!(f, "misuse: {m}"),
            SqlError::Io(e) => write!(f, "i/o error: errno {e}"),
            SqlError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            SqlError::Kernel(e) => write!(f, "kernel error: {e}"),
            SqlError::Transaction(m) => write!(f, "transaction error: {m}"),
            SqlError::TornWal { offset } => {
                write!(
                    f,
                    "torn write-ahead log: frame at offset {offset} incomplete"
                )
            }
            SqlError::CorruptJournal { offset, detail } => {
                write!(f, "corrupt journal at offset {offset}: {detail}")
            }
        }
    }
}

impl Error for SqlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SqlError::Kernel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CubicleError> for SqlError {
    fn from(e: CubicleError) -> Self {
        SqlError::Kernel(e)
    }
}

/// Result alias for the engine.
pub type Result<T, E = SqlError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SqlError::NoSuchTable("t1".into())
            .to_string()
            .contains("t1"));
        assert!(SqlError::Io(-5).to_string().contains("-5"));
    }

    #[test]
    fn recovery_errors_carry_offsets() {
        let torn = SqlError::TornWal { offset: 4128 };
        assert!(torn.to_string().contains("4128"));
        let corrupt = SqlError::CorruptJournal {
            offset: 0,
            detail: "bad wal magic".into(),
        };
        let msg = corrupt.to_string();
        assert!(msg.contains("offset 0") && msg.contains("bad wal magic"));
    }

    #[test]
    fn kernel_source() {
        let e = SqlError::from(CubicleError::OutOfKeys);
        assert!(e.source().is_some());
    }
}

//! Page cache + rollback journal (the engine's transactional storage).
//!
//! Mirrors SQLite's classic design: fixed-size pages, an in-memory page
//! cache with LRU eviction, and a rollback journal that records each
//! page's *original* content before its first modification in a
//! transaction. Commit = sync journal → write dirty pages → sync db →
//! delete journal; crash recovery replays the journal.
//!
//! The paper's speedtest1 analysis (§6.4) hinges on exactly this layer:
//! cache-friendly queries "only involve the OS interface to write batched
//! pages evicted from the cache", while OS-heavy queries miss the cache
//! and pay a cross-cubicle round trip per page.

use crate::error::{Result, SqlError};
use crate::storage::{StorageEnv, StorageFile};
use cubicle_core::System;
use std::collections::{HashMap, HashSet};

/// Database page size in bytes.
pub const DB_PAGE: usize = 4096;

/// Default page-cache capacity in pages (1 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 256;

const MAGIC: &[u8; 16] = b"CubicleDB v1\0\0\0\0";
const JOURNAL_MAGIC: &[u8; 8] = b"CBJRNL01";

/// Pager event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PagerStats {
    /// Page-cache hits.
    pub hits: u64,
    /// Page-cache misses (each costs a file read).
    pub misses: u64,
    /// Dirty evictions (mid-transaction writes to the db file).
    pub evictions: u64,
    /// `sync` calls issued.
    pub syncs: u64,
    /// Transactions committed.
    pub commits: u64,
}

struct CacheEntry {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
}

struct Journal {
    file: Box<dyn StorageFile>,
    journaled: HashSet<u32>,
    orig_page_count: u32,
    offset: u64,
}

/// The pager: transactional page-granular access to one database file.
pub struct Pager {
    env: Box<dyn StorageEnv>,
    path: String,
    file: Box<dyn StorageFile>,
    cache: HashMap<u32, CacheEntry>,
    cache_cap: usize,
    tick: u64,
    page_count: u32,
    freelist_head: u32,
    schema_root: u32,
    journal: Option<Journal>,
    /// Event counters.
    pub stats: PagerStats,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("pages", &self.page_count)
            .field("cached", &self.cache.len())
            .field("in_txn", &self.journal.is_some())
            .finish()
    }
}

impl Pager {
    /// Opens (creating or recovering as needed) the database at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`SqlError::Corrupt`] for a bad header.
    pub fn open(
        sys: &mut System,
        mut env: Box<dyn StorageEnv>,
        path: &str,
        cache_pages: usize,
    ) -> Result<Pager> {
        // Crash recovery: a leftover journal means a transaction died
        // mid-commit; roll the old page images back in.
        let journal_path = journal_path(path);
        if env.exists(sys, &journal_path)? {
            recover(sys, env.as_mut(), path, &journal_path)?;
        }
        let mut file = env.open(sys, path)?;
        let size = file.size(sys)?;
        let mut pager = Pager {
            env,
            path: path.to_string(),
            file,
            cache: HashMap::new(),
            cache_cap: cache_pages.max(8),
            tick: 0,
            page_count: 1,
            freelist_head: 0,
            schema_root: 0,
            journal: None,
            stats: PagerStats::default(),
        };
        if size == 0 {
            let mut header = vec![0u8; DB_PAGE];
            header[..16].copy_from_slice(MAGIC);
            header[16..20].copy_from_slice(&1u32.to_le_bytes());
            pager.file.pwrite(sys, 0, &header)?;
        } else {
            let mut header = vec![0u8; DB_PAGE];
            pager.file.pread(sys, 0, &mut header)?;
            if &header[..16] != MAGIC {
                return Err(SqlError::Corrupt("bad database magic".into()));
            }
            pager.page_count = u32::from_le_bytes(header[16..20].try_into().expect("4"));
            pager.freelist_head = u32::from_le_bytes(header[20..24].try_into().expect("4"));
            pager.schema_root = u32::from_le_bytes(header[24..28].try_into().expect("4"));
        }
        Ok(pager)
    }

    /// Number of pages in the database (including the header page).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Root page of the schema catalog btree (0 = not yet created).
    pub fn schema_root(&self) -> u32 {
        self.schema_root
    }

    /// Records the schema catalog's root page.
    ///
    /// # Errors
    ///
    /// Requires an open transaction (the header page is journaled).
    pub fn set_schema_root(&mut self, sys: &mut System, root: u32) -> Result<()> {
        self.schema_root = root;
        self.write_header(sys)
    }

    /// Is a transaction open?
    pub fn in_txn(&self) -> bool {
        self.journal.is_some()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a transaction: creates the rollback journal.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] when one is already open.
    pub fn begin(&mut self, sys: &mut System) -> Result<()> {
        if self.journal.is_some() {
            return Err(SqlError::Transaction("transaction already open".into()));
        }
        let jp = journal_path(&self.path);
        let mut jfile = self.env.open(sys, &jp)?;
        let mut header = Vec::with_capacity(12);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&self.page_count.to_le_bytes());
        jfile.pwrite(sys, 0, &header)?;
        self.journal = Some(Journal {
            file: jfile,
            journaled: HashSet::new(),
            orig_page_count: self.page_count,
            offset: 12,
        });
        Ok(())
    }

    /// Commits: journal sync → dirty page write-back → db sync → journal
    /// delete.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] without an open transaction; I/O errors.
    pub fn commit(&mut self, sys: &mut System) -> Result<()> {
        let Some(mut journal) = self.journal.take() else {
            return Err(SqlError::Transaction("commit without transaction".into()));
        };
        journal.file.sync(sys)?;
        self.stats.syncs += 1;
        // The header page was journaled and updated through write_page
        // whenever page_count / freelist / schema_root changed, so the
        // dirty-page sweep below covers it.
        let mut dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        for pno in dirty {
            let entry = self.cache.get_mut(&pno).expect("listed above");
            self.file
                .pwrite(sys, u64::from(pno) * DB_PAGE as u64, &entry.data)?;
            entry.dirty = false;
        }
        self.file.sync(sys)?;
        self.stats.syncs += 1;
        self.stats.commits += 1;
        journal.file.close(sys)?;
        self.env.unlink(sys, &journal_path(&self.path))?;
        Ok(())
    }

    /// Rolls back: restores journaled page images and truncates the file
    /// to its size at `begin`.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] without an open transaction; I/O errors.
    pub fn rollback(&mut self, sys: &mut System) -> Result<()> {
        let Some(mut journal) = self.journal.take() else {
            return Err(SqlError::Transaction("rollback without transaction".into()));
        };
        journal.file.close(sys)?;
        drop(journal);
        // Re-read the journal from the file system and replay it.
        let jp = journal_path(&self.path);
        recover(sys, self.env.as_mut(), &self.path, &jp)?;
        // All cached state may be stale now.
        self.cache.clear();
        self.reload_header(sys)?;
        Ok(())
    }

    fn reload_header(&mut self, sys: &mut System) -> Result<()> {
        let mut header = vec![0u8; DB_PAGE];
        self.file.pread(sys, 0, &mut header)?;
        self.page_count = u32::from_le_bytes(header[16..20].try_into().expect("4"));
        self.freelist_head = u32::from_le_bytes(header[20..24].try_into().expect("4"));
        self.schema_root = u32::from_le_bytes(header[24..28].try_into().expect("4"));
        Ok(())
    }

    fn write_header(&mut self, sys: &mut System) -> Result<()> {
        let mut header = self.read_page(sys, 0)?;
        header[..16].copy_from_slice(MAGIC);
        header[16..20].copy_from_slice(&self.page_count.to_le_bytes());
        header[20..24].copy_from_slice(&self.freelist_head.to_le_bytes());
        header[24..28].copy_from_slice(&self.schema_root.to_le_bytes());
        self.write_page(sys, 0, &header)
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Reads page `pno` (through the cache).
    ///
    /// # Errors
    ///
    /// I/O errors; reading past the end yields a zeroed page.
    pub fn read_page(&mut self, sys: &mut System, pno: u32) -> Result<Vec<u8>> {
        Ok(self.page_ref(sys, pno)?.to_vec())
    }

    /// Reads page `pno` through the cache, returning a borrow of the
    /// cached copy. The btree layer decodes in place from this borrow,
    /// so a cache hit costs no page-sized copy.
    ///
    /// # Errors
    ///
    /// I/O errors; reading past the end yields a zeroed page.
    pub fn page_ref(&mut self, sys: &mut System, pno: u32) -> Result<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.cache.get_mut(&pno) {
            e.tick = tick;
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let mut data = vec![0u8; DB_PAGE];
            self.file
                .pread(sys, u64::from(pno) * DB_PAGE as u64, &mut data)?;
            self.insert_cache(sys, pno, data, false)?;
        }
        Ok(&self.cache.get(&pno).expect("resident after fill").data)
    }

    /// Writes page `pno` (journaling its original content first).
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`DB_PAGE`] bytes.
    pub fn write_page(&mut self, sys: &mut System, pno: u32, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), DB_PAGE, "pages are exactly {DB_PAGE} bytes");
        if self.journal.is_none() {
            return Err(SqlError::Transaction("write outside a transaction".into()));
        }
        self.journal_page(sys, pno)?;
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.cache.get_mut(&pno) {
            e.data.copy_from_slice(data);
            e.dirty = true;
            e.tick = tick;
            return Ok(());
        }
        self.insert_cache(sys, pno, data.to_vec(), true)
    }

    fn journal_page(&mut self, sys: &mut System, pno: u32) -> Result<()> {
        let journal = self.journal.as_mut().expect("caller checked");
        if journal.journaled.contains(&pno) || pno >= journal.orig_page_count {
            return Ok(()); // fresh pages need no undo image
        }
        // Fetch the original content (cache copy may already be current
        // transaction state — but journaled-set guarantees first touch).
        let mut orig = vec![0u8; DB_PAGE];
        if let Some(e) = self.cache.get(&pno) {
            orig.copy_from_slice(&e.data);
        } else {
            self.file
                .pread(sys, u64::from(pno) * DB_PAGE as u64, &mut orig)?;
        }
        let journal = self.journal.as_mut().expect("caller checked");
        let mut rec = Vec::with_capacity(4 + DB_PAGE);
        rec.extend_from_slice(&pno.to_le_bytes());
        rec.extend_from_slice(&orig);
        journal.file.pwrite(sys, journal.offset, &rec)?;
        journal.offset += rec.len() as u64;
        journal.journaled.insert(pno);
        Ok(())
    }

    fn insert_cache(
        &mut self,
        sys: &mut System,
        pno: u32,
        data: Vec<u8>,
        dirty: bool,
    ) -> Result<()> {
        while self.cache.len() >= self.cache_cap {
            // Evict the least recently used page.
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&p, _)| p)
                .expect("cache non-empty");
            let entry = self.cache.remove(&victim).expect("present");
            if entry.dirty {
                self.stats.evictions += 1;
                self.file
                    .pwrite(sys, u64::from(victim) * DB_PAGE as u64, &entry.data)?;
            }
        }
        self.cache.insert(
            pno,
            CacheEntry {
                data,
                dirty,
                tick: self.tick,
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page allocation
    // ------------------------------------------------------------------

    /// Allocates a fresh zeroed page (reusing the freelist when
    /// possible) and returns its number.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    pub fn allocate_page(&mut self, sys: &mut System) -> Result<u32> {
        if self.journal.is_none() {
            return Err(SqlError::Transaction(
                "allocation outside a transaction".into(),
            ));
        }
        let pno = if self.freelist_head != 0 {
            let pno = self.freelist_head;
            let page = self.read_page(sys, pno)?;
            self.freelist_head = u32::from_le_bytes(page[..4].try_into().expect("4"));
            pno
        } else {
            let pno = self.page_count;
            self.page_count += 1;
            pno
        };
        self.write_header(sys)?;
        self.write_page(sys, pno, &vec![0u8; DB_PAGE])?;
        Ok(pno)
    }

    /// Returns a page to the freelist.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    pub fn free_page(&mut self, sys: &mut System, pno: u32) -> Result<()> {
        let mut page = vec![0u8; DB_PAGE];
        page[..4].copy_from_slice(&self.freelist_head.to_le_bytes());
        self.write_page(sys, pno, &page)?;
        self.freelist_head = pno;
        self.write_header(sys)
    }
}

fn journal_path(path: &str) -> String {
    format!("{path}-journal")
}

/// Replays a journal: restores original page images and truncates the
/// database back to its pre-transaction size.
fn recover(
    sys: &mut System,
    env: &mut dyn StorageEnv,
    path: &str,
    journal_path: &str,
) -> Result<()> {
    let mut jfile = env.open(sys, journal_path)?;
    let jsize = jfile.size(sys)?;
    let mut header = [0u8; 12];
    if jsize < 12 || jfile.pread(sys, 0, &mut header)? < 12 || &header[..8] != JOURNAL_MAGIC {
        // A torn/empty journal from a crash before the first sync: the
        // db was never touched, discard the journal.
        jfile.close(sys)?;
        env.unlink(sys, journal_path)?;
        return Ok(());
    }
    let orig_page_count = u32::from_le_bytes(header[8..12].try_into().expect("4"));
    let mut db = env.open(sys, path)?;
    let mut off = 12u64;
    let rec = 4 + DB_PAGE as u64;
    while off + rec <= jsize {
        let mut pno_b = [0u8; 4];
        jfile.pread(sys, off, &mut pno_b)?;
        let pno = u32::from_le_bytes(pno_b);
        let mut data = vec![0u8; DB_PAGE];
        jfile.pread(sys, off + 4, &mut data)?;
        db.pwrite(sys, u64::from(pno) * DB_PAGE as u64, &data)?;
        off += rec;
    }
    db.truncate(sys, u64::from(orig_page_count) * DB_PAGE as u64)?;
    db.sync(sys)?;
    db.close(sys)?;
    jfile.close(sys)?;
    env.unlink(sys, journal_path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HostEnv;
    use cubicle_core::{IsolationMode, System};

    fn sys() -> System {
        System::new(IsolationMode::Unikraft)
    }

    fn open(sys: &mut System, env: &HostEnv) -> Pager {
        Pager::open(sys, Box::new(env.clone()), "/test.db", 16).unwrap()
    }

    #[test]
    fn fresh_database_has_header() {
        let mut sys = sys();
        let env = HostEnv::new();
        let p = open(&mut sys, &env);
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.schema_root(), 0);
        assert!(!p.in_txn());
    }

    #[test]
    fn pages_round_trip_through_commit() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let pno = p.allocate_page(&mut sys).unwrap();
        let mut data = vec![0u8; DB_PAGE];
        data[..5].copy_from_slice(b"btree");
        p.write_page(&mut sys, pno, &data).unwrap();
        p.commit(&mut sys).unwrap();
        drop(p);
        // reopen: data persisted
        let mut p = open(&mut sys, &env);
        assert_eq!(p.page_count(), 2);
        let back = p.read_page(&mut sys, pno).unwrap();
        assert_eq!(&back[..5], b"btree");
    }

    #[test]
    fn write_outside_txn_rejected() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        let err = p.write_page(&mut sys, 1, &vec![0u8; DB_PAGE]);
        assert!(matches!(err, Err(SqlError::Transaction(_))));
        assert!(matches!(
            p.allocate_page(&mut sys),
            Err(SqlError::Transaction(_))
        ));
        assert!(matches!(p.commit(&mut sys), Err(SqlError::Transaction(_))));
    }

    #[test]
    fn rollback_restores_old_contents() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let pno = p.allocate_page(&mut sys).unwrap();
        let mut data = vec![0u8; DB_PAGE];
        data[0] = 0xAA;
        p.write_page(&mut sys, pno, &data).unwrap();
        p.commit(&mut sys).unwrap();

        p.begin(&mut sys).unwrap();
        data[0] = 0xBB;
        p.write_page(&mut sys, pno, &data).unwrap();
        let extra = p.allocate_page(&mut sys).unwrap();
        assert_eq!(extra, 2);
        p.rollback(&mut sys).unwrap();

        assert_eq!(p.read_page(&mut sys, pno).unwrap()[0], 0xAA);
        assert_eq!(p.page_count(), 2, "allocation rolled back");
    }

    #[test]
    fn crash_recovery_replays_journal() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = open(&mut sys, &env);
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 1;
            p.write_page(&mut sys, pno, &data).unwrap();
            p.commit(&mut sys).unwrap();
            // second txn dies mid-flight: journal exists, some dirty
            // pages may even have hit the db via evictions
            p.begin(&mut sys).unwrap();
            data[0] = 2;
            p.write_page(&mut sys, pno, &data).unwrap();
            // simulate a crash: drop the pager without commit/rollback
        }
        let mut p = open(&mut sys, &env);
        assert_eq!(
            p.read_page(&mut sys, 1).unwrap()[0],
            1,
            "recovered to committed state"
        );
    }

    #[test]
    fn eviction_mid_txn_is_safe() {
        let mut sys = sys();
        let env = HostEnv::new();
        // Tiny cache to force dirty evictions inside the transaction.
        let mut p = Pager::open(&mut sys, Box::new(env.clone()), "/t.db", 8).unwrap();
        p.begin(&mut sys).unwrap();
        let pages: Vec<u32> = (0..32)
            .map(|_| p.allocate_page(&mut sys).unwrap())
            .collect();
        for (i, &pno) in pages.iter().enumerate() {
            let mut data = vec![0u8; DB_PAGE];
            data[0] = i as u8;
            p.write_page(&mut sys, pno, &data).unwrap();
        }
        assert!(p.stats.evictions > 0, "test must actually evict");
        p.commit(&mut sys).unwrap();
        for (i, &pno) in pages.iter().enumerate() {
            assert_eq!(p.read_page(&mut sys, pno).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn freelist_reuses_pages() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        let b = p.allocate_page(&mut sys).unwrap();
        p.free_page(&mut sys, a).unwrap();
        let c = p.allocate_page(&mut sys).unwrap();
        assert_eq!(c, a, "freed page is reused");
        let d = p.allocate_page(&mut sys).unwrap();
        assert!(d > b, "then fresh pages again");
        p.commit(&mut sys).unwrap();
    }

    #[test]
    fn allocated_pages_are_zeroed() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        let mut junk = vec![0u8; DB_PAGE];
        junk[100] = 0xEE;
        p.write_page(&mut sys, a, &junk).unwrap();
        p.free_page(&mut sys, a).unwrap();
        let b = p.allocate_page(&mut sys).unwrap();
        assert_eq!(b, a);
        assert_eq!(
            p.read_page(&mut sys, b).unwrap()[100],
            0,
            "recycled page zeroed"
        );
        p.commit(&mut sys).unwrap();
    }

    #[test]
    fn cache_stats_move() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        p.commit(&mut sys).unwrap();
        let h0 = p.stats.hits;
        p.read_page(&mut sys, a).unwrap();
        p.read_page(&mut sys, a).unwrap();
        assert!(p.stats.hits >= h0 + 2);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let mut f = env.open(&mut sys, "/bad.db").unwrap();
            f.pwrite(&mut sys, 0, b"not a database file").unwrap();
        }
        let err = Pager::open(&mut sys, Box::new(env.clone()), "/bad.db", 16);
        assert!(matches!(err, Err(SqlError::Corrupt(_))));
    }
}

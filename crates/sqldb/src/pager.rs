//! Page cache + transactional storage (WAL by default).
//!
//! Mirrors SQLite's two journaling designs: fixed-size pages and an
//! in-memory page cache with LRU eviction, fronting either
//!
//! * a **write-ahead log** ([`JournalMode::Wal`], the default): commit
//!   appends the transaction's pages to `{path}-wal` ending in a commit
//!   record, group commit coalesces several transactions into one sync,
//!   and a checkpoint later folds committed frames back into the main
//!   file — a crash at any byte boundary preserves exactly the committed
//!   prefix (see [`crate::wal`]); or
//! * a **rollback journal** ([`JournalMode::Rollback`], the PR-1 design,
//!   kept as the A/B baseline): each page's *original* content is saved
//!   before its first modification, commit = sync journal → write dirty
//!   pages in place → sync db → delete journal.
//!
//! The paper's speedtest1 analysis (§6.4) hinges on exactly this layer:
//! cache-friendly queries "only involve the OS interface to write batched
//! pages evicted from the cache", while OS-heavy queries miss the cache
//! and pay a cross-cubicle round trip per page.

use crate::error::{Result, SqlError};
use crate::storage::{StorageEnv, StorageFile};
use crate::wal::Wal;
use cubicle_core::{RecoveryEvent, System};
use std::collections::{HashMap, HashSet};

/// Database page size in bytes.
pub const DB_PAGE: usize = 4096;

/// Default page-cache capacity in pages (1 MiB).
pub const DEFAULT_CACHE_PAGES: usize = 256;

const MAGIC: &[u8; 16] = b"CubicleDB v1\0\0\0\0";
const JOURNAL_MAGIC: &[u8; 8] = b"CBJRNL01";

/// How the pager makes transactions durable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JournalMode {
    /// Undo journal + in-place page writes (the PR-1 design).
    Rollback,
    /// Append-only write-ahead log with group commit + checkpointing.
    Wal,
}

/// Pager event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PagerStats {
    /// Page-cache hits.
    pub hits: u64,
    /// Page-cache misses (each costs a file read).
    pub misses: u64,
    /// Dirty evictions (mid-transaction spills: in-place db writes in
    /// rollback mode, WAL frames in WAL mode).
    pub evictions: u64,
    /// `sync` calls issued.
    pub syncs: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Frames appended to the write-ahead log.
    pub wal_frames: u64,
    /// Completed checkpoints (WAL folded back into the db file).
    pub checkpoints: u64,
}

struct CacheEntry {
    data: Vec<u8>,
    dirty: bool,
    tick: u64,
}

struct Journal {
    file: Box<dyn StorageFile>,
    journaled: HashSet<u32>,
    orig_page_count: u32,
    offset: u64,
}

/// The pager: transactional page-granular access to one database file.
pub struct Pager {
    env: Box<dyn StorageEnv>,
    path: String,
    file: Box<dyn StorageFile>,
    cache: HashMap<u32, CacheEntry>,
    cache_cap: usize,
    tick: u64,
    page_count: u32,
    freelist_head: u32,
    schema_root: u32,
    mode: JournalMode,
    /// Rollback-mode transaction state (`Some` while a txn is open).
    journal: Option<Journal>,
    /// The log itself (always `Some` in WAL mode after open).
    wal: Option<Wal>,
    /// Latest *committed* frame per page: `pno → data offset` in the WAL.
    committed_index: HashMap<u32, u64>,
    /// Frames spilled by the *current* transaction (mid-txn evictions).
    txn_index: HashMap<u32, u64>,
    /// WAL-mode transaction open?
    wal_txn: bool,
    /// Transactions coalesced per durable sync (1 = sync every commit).
    group_size: u32,
    /// Commits appended since the last sync.
    pending_commits: u32,
    /// Event counters.
    pub stats: PagerStats,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("mode", &self.mode)
            .field("pages", &self.page_count)
            .field("cached", &self.cache.len())
            .field("in_txn", &self.in_txn())
            .finish()
    }
}

impl Pager {
    /// Opens (creating or recovering as needed) the database at `path`
    /// in the default [`JournalMode::Wal`].
    ///
    /// # Errors
    ///
    /// I/O errors, [`SqlError::Corrupt`] for a bad header, or
    /// [`SqlError::CorruptJournal`] for an unrecognisable journal / WAL.
    pub fn open(
        sys: &mut System,
        env: Box<dyn StorageEnv>,
        path: &str,
        cache_pages: usize,
    ) -> Result<Pager> {
        Pager::open_with_mode(sys, env, path, cache_pages, JournalMode::Wal)
    }

    /// [`Pager::open`] with an explicit journal mode.
    ///
    /// # Errors
    ///
    /// As [`Pager::open`].
    pub fn open_with_mode(
        sys: &mut System,
        mut env: Box<dyn StorageEnv>,
        path: &str,
        cache_pages: usize,
        mode: JournalMode,
    ) -> Result<Pager> {
        // Crash recovery, step 1: a leftover rollback journal means a
        // rollback-mode transaction died mid-write-back (possibly in a
        // previous incarnation running the other mode); roll the old
        // page images back in before anything reads the file.
        let journal_path = journal_path(path);
        if env.exists(sys, &journal_path)? {
            recover(sys, env.as_mut(), path, &journal_path)?;
        }
        let mut file = env.open(sys, path)?;
        let size = file.size(sys)?;
        let mut pager = Pager {
            env,
            path: path.to_string(),
            file,
            cache: HashMap::new(),
            cache_cap: cache_pages.max(8),
            tick: 0,
            page_count: 1,
            freelist_head: 0,
            schema_root: 0,
            mode,
            journal: None,
            wal: None,
            committed_index: HashMap::new(),
            txn_index: HashMap::new(),
            wal_txn: false,
            group_size: 1,
            pending_commits: 0,
            stats: PagerStats::default(),
        };
        if size == 0 {
            let mut header = vec![0u8; DB_PAGE];
            header[..16].copy_from_slice(MAGIC);
            header[16..20].copy_from_slice(&1u32.to_le_bytes());
            pager.file.pwrite(sys, 0, &header)?;
        } else {
            let mut header = vec![0u8; DB_PAGE];
            pager.file.pread(sys, 0, &mut header)?;
            if &header[..16] != MAGIC {
                return Err(SqlError::Corrupt("bad database magic".into()));
            }
            pager.page_count = u32::from_le_bytes(header[16..20].try_into().expect("4"));
            pager.freelist_head = u32::from_le_bytes(header[20..24].try_into().expect("4"));
            pager.schema_root = u32::from_le_bytes(header[24..28].try_into().expect("4"));
        }
        if mode == JournalMode::Wal {
            // Crash recovery, step 2: replay the WAL's committed prefix.
            // Committed frames stay in the log (served through the
            // committed index) until a checkpoint folds them back.
            let (wal, recovery) = Wal::open(sys, pager.env.as_mut(), path)?;
            pager.wal = Some(wal);
            if recovery.frames_recovered > 0 || recovery.tail_discarded {
                sys.record_recovery(RecoveryEvent::WalReplay {
                    frames: recovery.frames_recovered,
                    torn: recovery.tail_discarded,
                });
            }
            if !recovery.index.is_empty() {
                pager.committed_index = recovery.index;
                // The header page rides the WAL like any other page, so
                // the committed prefix carries the authoritative
                // page_count / freelist / schema_root.
                pager.reload_header(sys)?;
            }
        }
        Ok(pager)
    }

    /// Number of pages in the database (including the header page).
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Root page of the schema catalog btree (0 = not yet created).
    pub fn schema_root(&self) -> u32 {
        self.schema_root
    }

    /// The journal mode this pager runs in.
    pub fn mode(&self) -> JournalMode {
        self.mode
    }

    /// Records the schema catalog's root page.
    ///
    /// # Errors
    ///
    /// Requires an open transaction (the header page is journaled).
    pub fn set_schema_root(&mut self, sys: &mut System, root: u32) -> Result<()> {
        self.schema_root = root;
        self.write_header(sys)
    }

    /// Is a transaction open?
    pub fn in_txn(&self) -> bool {
        self.journal.is_some() || self.wal_txn
    }

    // ------------------------------------------------------------------
    // Group commit / WAL introspection
    // ------------------------------------------------------------------

    /// Sets the group-commit size: how many committed transactions may
    /// share one durable sync (1, the default, syncs every commit).
    /// Larger groups trade the tail of the log on a crash for fewer
    /// write barriers. No-op in rollback mode.
    pub fn set_group_commit(&mut self, n: u32) {
        self.group_size = n.max(1);
    }

    /// Commits appended to the WAL but not yet covered by a sync.
    pub fn pending_commits(&self) -> u32 {
        self.pending_commits
    }

    /// Makes all pending group commits durable now.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn flush(&mut self, sys: &mut System) -> Result<()> {
        if self.pending_commits > 0 {
            self.wal_sync_commits(sys)?;
        }
        Ok(())
    }

    /// End offset of the last fully appended WAL frame (0 in rollback
    /// mode). Together with [`Pager::wal_synced_end`] this brackets the
    /// byte range a crash may tear.
    pub fn wal_end(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::end)
    }

    /// End offset of the WAL's durable prefix (0 in rollback mode).
    pub fn wal_synced_end(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::synced_end)
    }

    /// End offset of the WAL's committed prefix (0 in rollback mode).
    pub fn wal_committed_end(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::committed_end)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a transaction (creates the rollback journal in rollback
    /// mode; WAL mode needs no setup).
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] when one is already open.
    pub fn begin(&mut self, sys: &mut System) -> Result<()> {
        if self.in_txn() {
            return Err(SqlError::Transaction("transaction already open".into()));
        }
        match self.mode {
            JournalMode::Wal => {
                self.wal_txn = true;
                Ok(())
            }
            JournalMode::Rollback => {
                let jp = journal_path(&self.path);
                let mut jfile = self.env.open(sys, &jp)?;
                let mut header = Vec::with_capacity(12);
                header.extend_from_slice(JOURNAL_MAGIC);
                header.extend_from_slice(&self.page_count.to_le_bytes());
                jfile.pwrite(sys, 0, &header)?;
                self.journal = Some(Journal {
                    file: jfile,
                    journaled: HashSet::new(),
                    orig_page_count: self.page_count,
                    offset: 12,
                });
                Ok(())
            }
        }
    }

    /// Commits the open transaction.
    ///
    /// WAL mode: append every dirty page as a frame, the last one a
    /// commit record, then sync only once `group_size` commits have
    /// accumulated. Rollback mode: journal sync → dirty page write-back
    /// → db sync → journal delete.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] without an open transaction; I/O errors.
    pub fn commit(&mut self, sys: &mut System) -> Result<()> {
        match self.mode {
            JournalMode::Wal => self.commit_wal(sys),
            JournalMode::Rollback => self.commit_rollback(sys),
        }
    }

    fn commit_wal(&mut self, sys: &mut System) -> Result<()> {
        if !self.wal_txn {
            return Err(SqlError::Transaction("commit without transaction".into()));
        }
        self.wal_txn = false;
        let mut dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        if dirty.is_empty() && self.txn_index.is_empty() {
            return Ok(()); // read-only transaction: nothing to make durable
        }
        if dirty.is_empty() {
            // Every modified page was already spilled to the log; append
            // the header page once more purely to carry the commit
            // record (and the authoritative page_count with it).
            let header = self.read_page(sys, 0)?;
            let wal = self.wal.as_mut().expect("wal mode");
            let off = wal.append_frame(sys, 0, self.page_count, &header)?;
            self.txn_index.insert(0, off);
            self.stats.wal_frames += 1;
        } else {
            let last = *dirty.last().expect("non-empty");
            for pno in dirty {
                let db_size = if pno == last { self.page_count } else { 0 };
                let entry = self.cache.get_mut(&pno).expect("listed above");
                let wal = self.wal.as_mut().expect("wal mode");
                let off = wal.append_frame(sys, pno, db_size, &entry.data)?;
                entry.dirty = false;
                self.txn_index.insert(pno, off);
                self.stats.wal_frames += 1;
            }
        }
        // The commit record is on file: promote the transaction's frames
        // into the committed index.
        for (pno, off) in self.txn_index.drain() {
            self.committed_index.insert(pno, off);
        }
        self.wal.as_mut().expect("wal mode").mark_committed();
        self.stats.commits += 1;
        self.pending_commits += 1;
        if self.pending_commits >= self.group_size {
            self.wal_sync_commits(sys)?;
        }
        Ok(())
    }

    /// Syncs the WAL, making every pending commit durable at once.
    fn wal_sync_commits(&mut self, sys: &mut System) -> Result<()> {
        let batch = self.pending_commits;
        let wal = self.wal.as_mut().expect("wal mode");
        if wal.synced_end() < wal.end() {
            wal.sync(sys)?;
            self.stats.syncs += 1;
        }
        self.pending_commits = 0;
        if batch >= 2 {
            sys.record_recovery(RecoveryEvent::GroupCommitBatch {
                commits: u64::from(batch),
            });
        }
        Ok(())
    }

    fn commit_rollback(&mut self, sys: &mut System) -> Result<()> {
        let Some(mut journal) = self.journal.take() else {
            return Err(SqlError::Transaction("commit without transaction".into()));
        };
        journal.file.sync(sys)?;
        self.stats.syncs += 1;
        // The header page was journaled and updated through write_page
        // whenever page_count / freelist / schema_root changed, so the
        // dirty-page sweep below covers it.
        let mut dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(&p, _)| p)
            .collect();
        dirty.sort_unstable();
        for pno in dirty {
            let entry = self.cache.get_mut(&pno).expect("listed above");
            self.file
                .pwrite(sys, u64::from(pno) * DB_PAGE as u64, &entry.data)?;
            entry.dirty = false;
        }
        self.file.sync(sys)?;
        self.stats.syncs += 1;
        self.stats.commits += 1;
        journal.file.close(sys)?;
        self.env.unlink(sys, &journal_path(&self.path))?;
        Ok(())
    }

    /// Rolls back the open transaction.
    ///
    /// WAL mode: truncate the log back to the last commit record and
    /// drop all cached state. Rollback mode: restore journaled page
    /// images and truncate the file to its size at `begin`.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] without an open transaction; I/O errors.
    pub fn rollback(&mut self, sys: &mut System) -> Result<()> {
        match self.mode {
            JournalMode::Wal => {
                if !self.wal_txn {
                    return Err(SqlError::Transaction("rollback without transaction".into()));
                }
                self.wal_txn = false;
                self.wal
                    .as_mut()
                    .expect("wal mode")
                    .rollback_uncommitted(sys)?;
                self.txn_index.clear();
                self.cache.clear();
                self.reload_header(sys)
            }
            JournalMode::Rollback => {
                let Some(mut journal) = self.journal.take() else {
                    return Err(SqlError::Transaction("rollback without transaction".into()));
                };
                journal.file.close(sys)?;
                drop(journal);
                // Re-read the journal from the file system and replay it.
                let jp = journal_path(&self.path);
                recover(sys, self.env.as_mut(), &self.path, &jp)?;
                // All cached state may be stale now.
                self.cache.clear();
                self.reload_header(sys)
            }
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint (WAL mode)
    // ------------------------------------------------------------------

    /// Folds the WAL's committed frames back into the database file and
    /// empties the log. Equivalent to
    /// [`Pager::checkpoint_with_limit`]`(sys, None)`.
    ///
    /// # Errors
    ///
    /// As [`Pager::checkpoint_with_limit`].
    pub fn checkpoint(&mut self, sys: &mut System) -> Result<bool> {
        self.checkpoint_with_limit(sys, None)
    }

    /// Checkpoints at most `limit` pages (all of them when `None`),
    /// returning `true` when the log is fully folded back and reset.
    ///
    /// An incomplete checkpoint (`Ok(false)`) leaves the WAL intact:
    /// the database file holds a *mix* of old and new pages, but every
    /// committed frame is still durable in the log, so a crash at any
    /// point replays to the same committed state. Pages are written in
    /// ascending page order (deterministic cycle counts).
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] while a transaction is open; I/O
    /// errors. No-op `Ok(true)` in rollback mode.
    pub fn checkpoint_with_limit(
        &mut self,
        sys: &mut System,
        limit: Option<usize>,
    ) -> Result<bool> {
        if self.in_txn() {
            return Err(SqlError::Transaction(
                "checkpoint inside a transaction".into(),
            ));
        }
        if self.wal.is_none() || self.committed_index.is_empty() {
            return Ok(true);
        }
        // Recovery-ordering invariant: the log must be durable before
        // the db file is overwritten — otherwise a crash mid-fold could
        // leave the file half-new with only an unsynced log to replay.
        self.flush(sys)?;
        {
            let wal = self.wal.as_mut().expect("checked above");
            if wal.synced_end() < wal.committed_end() {
                wal.sync(sys)?;
                self.stats.syncs += 1;
            }
        }
        let mut pnos: Vec<u32> = self.committed_index.keys().copied().collect();
        pnos.sort_unstable();
        let todo = limit.unwrap_or(pnos.len()).min(pnos.len());
        let mut data = vec![0u8; DB_PAGE];
        for &pno in &pnos[..todo] {
            let off = self.committed_index[&pno];
            self.wal
                .as_mut()
                .expect("checked above")
                .read_page_at(sys, off, &mut data)?;
            self.file
                .pwrite(sys, u64::from(pno) * DB_PAGE as u64, &data)?;
        }
        if todo < pnos.len() {
            return Ok(false);
        }
        self.file
            .truncate(sys, u64::from(self.page_count) * DB_PAGE as u64)?;
        self.file.sync(sys)?;
        self.stats.syncs += 1;
        // Only now that the db file is durable may the log be emptied.
        self.wal.as_mut().expect("checked above").reset(sys)?;
        self.committed_index.clear();
        self.stats.checkpoints += 1;
        Ok(true)
    }

    fn reload_header(&mut self, sys: &mut System) -> Result<()> {
        let header = self.read_committed_page(sys, 0)?;
        self.page_count = u32::from_le_bytes(header[16..20].try_into().expect("4"));
        self.freelist_head = u32::from_le_bytes(header[20..24].try_into().expect("4"));
        self.schema_root = u32::from_le_bytes(header[24..28].try_into().expect("4"));
        Ok(())
    }

    /// Reads a page's latest *committed* content, bypassing the cache:
    /// WAL committed index first, then the database file.
    fn read_committed_page(&mut self, sys: &mut System, pno: u32) -> Result<Vec<u8>> {
        let mut data = vec![0u8; DB_PAGE];
        if let Some(&off) = self.committed_index.get(&pno) {
            self.wal
                .as_mut()
                .expect("index implies wal")
                .read_page_at(sys, off, &mut data)?;
        } else {
            self.file
                .pread(sys, u64::from(pno) * DB_PAGE as u64, &mut data)?;
        }
        Ok(data)
    }

    fn write_header(&mut self, sys: &mut System) -> Result<()> {
        let mut header = self.read_page(sys, 0)?;
        header[..16].copy_from_slice(MAGIC);
        header[16..20].copy_from_slice(&self.page_count.to_le_bytes());
        header[20..24].copy_from_slice(&self.freelist_head.to_le_bytes());
        header[24..28].copy_from_slice(&self.schema_root.to_le_bytes());
        self.write_page(sys, 0, &header)
    }

    // ------------------------------------------------------------------
    // Page access
    // ------------------------------------------------------------------

    /// Reads page `pno` (through the cache).
    ///
    /// # Errors
    ///
    /// I/O errors; reading past the end yields a zeroed page.
    pub fn read_page(&mut self, sys: &mut System, pno: u32) -> Result<Vec<u8>> {
        Ok(self.page_ref(sys, pno)?.to_vec())
    }

    /// Reads page `pno` through the cache, returning a borrow of the
    /// cached copy. The btree layer decodes in place from this borrow,
    /// so a cache hit costs no page-sized copy.
    ///
    /// # Errors
    ///
    /// I/O errors; reading past the end yields a zeroed page.
    pub fn page_ref(&mut self, sys: &mut System, pno: u32) -> Result<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.cache.get_mut(&pno) {
            e.tick = tick;
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let mut data = vec![0u8; DB_PAGE];
            // Freshest source wins: current-txn spill, then the last
            // committed frame, then the database file.
            let wal_off = self
                .txn_index
                .get(&pno)
                .or_else(|| self.committed_index.get(&pno))
                .copied();
            if let Some(off) = wal_off {
                self.wal
                    .as_mut()
                    .expect("index implies wal")
                    .read_page_at(sys, off, &mut data)?;
            } else {
                self.file
                    .pread(sys, u64::from(pno) * DB_PAGE as u64, &mut data)?;
            }
            self.insert_cache(sys, pno, data, false)?;
        }
        Ok(&self.cache.get(&pno).expect("resident after fill").data)
    }

    /// Writes page `pno` (journaling its original content first in
    /// rollback mode; WAL mode dirties the cache copy and spills frames
    /// only on eviction or commit).
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`DB_PAGE`] bytes.
    pub fn write_page(&mut self, sys: &mut System, pno: u32, data: &[u8]) -> Result<()> {
        assert_eq!(data.len(), DB_PAGE, "pages are exactly {DB_PAGE} bytes");
        if !self.in_txn() {
            return Err(SqlError::Transaction("write outside a transaction".into()));
        }
        if self.mode == JournalMode::Rollback {
            self.journal_page(sys, pno)?;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.cache.get_mut(&pno) {
            e.data.copy_from_slice(data);
            e.dirty = true;
            e.tick = tick;
            return Ok(());
        }
        self.insert_cache(sys, pno, data.to_vec(), true)
    }

    fn journal_page(&mut self, sys: &mut System, pno: u32) -> Result<()> {
        let journal = self.journal.as_mut().expect("caller checked");
        if journal.journaled.contains(&pno) || pno >= journal.orig_page_count {
            return Ok(()); // fresh pages need no undo image
        }
        // Fetch the original content (cache copy may already be current
        // transaction state — but journaled-set guarantees first touch).
        let mut orig = vec![0u8; DB_PAGE];
        if let Some(e) = self.cache.get(&pno) {
            orig.copy_from_slice(&e.data);
        } else {
            self.file
                .pread(sys, u64::from(pno) * DB_PAGE as u64, &mut orig)?;
        }
        let journal = self.journal.as_mut().expect("caller checked");
        let mut rec = Vec::with_capacity(4 + DB_PAGE);
        rec.extend_from_slice(&pno.to_le_bytes());
        rec.extend_from_slice(&orig);
        journal.file.pwrite(sys, journal.offset, &rec)?;
        journal.offset += rec.len() as u64;
        journal.journaled.insert(pno);
        Ok(())
    }

    fn insert_cache(
        &mut self,
        sys: &mut System,
        pno: u32,
        data: Vec<u8>,
        dirty: bool,
    ) -> Result<()> {
        while self.cache.len() >= self.cache_cap {
            // Evict the least recently used page.
            let victim = self
                .cache
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&p, _)| p)
                .expect("cache non-empty");
            let entry = self.cache.remove(&victim).expect("present");
            if entry.dirty {
                self.stats.evictions += 1;
                match self.mode {
                    JournalMode::Rollback => {
                        self.file
                            .pwrite(sys, u64::from(victim) * DB_PAGE as u64, &entry.data)?;
                    }
                    JournalMode::Wal => {
                        // Mid-transaction spill: an ordinary (non-commit)
                        // frame. The db file is never written mid-txn.
                        let wal = self.wal.as_mut().expect("wal mode");
                        let off = wal.append_frame(sys, victim, 0, &entry.data)?;
                        self.txn_index.insert(victim, off);
                        self.stats.wal_frames += 1;
                    }
                }
            }
        }
        self.cache.insert(
            pno,
            CacheEntry {
                data,
                dirty,
                tick: self.tick,
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page allocation
    // ------------------------------------------------------------------

    /// Allocates a fresh zeroed page (reusing the freelist when
    /// possible) and returns its number.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    pub fn allocate_page(&mut self, sys: &mut System) -> Result<u32> {
        if !self.in_txn() {
            return Err(SqlError::Transaction(
                "allocation outside a transaction".into(),
            ));
        }
        let pno = if self.freelist_head != 0 {
            let pno = self.freelist_head;
            let page = self.read_page(sys, pno)?;
            self.freelist_head = u32::from_le_bytes(page[..4].try_into().expect("4"));
            pno
        } else {
            let pno = self.page_count;
            self.page_count += 1;
            pno
        };
        self.write_header(sys)?;
        self.write_page(sys, pno, &vec![0u8; DB_PAGE])?;
        Ok(pno)
    }

    /// Returns a page to the freelist.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] outside a transaction; I/O errors.
    pub fn free_page(&mut self, sys: &mut System, pno: u32) -> Result<()> {
        let mut page = vec![0u8; DB_PAGE];
        page[..4].copy_from_slice(&self.freelist_head.to_le_bytes());
        self.write_page(sys, pno, &page)?;
        self.freelist_head = pno;
        self.write_header(sys)
    }
}

fn journal_path(path: &str) -> String {
    format!("{path}-journal")
}

/// Replays a rollback journal: restores original page images and
/// truncates the database back to its pre-transaction size.
fn recover(
    sys: &mut System,
    env: &mut dyn StorageEnv,
    path: &str,
    journal_path: &str,
) -> Result<()> {
    let mut jfile = env.open(sys, journal_path)?;
    let jsize = jfile.size(sys)?;
    let mut header = [0u8; 12];
    if jsize < 12 || jfile.pread(sys, 0, &mut header)? < 12 {
        // A torn/empty journal from a crash before the first sync: the
        // db was never touched, discard the journal.
        jfile.close(sys)?;
        env.unlink(sys, journal_path)?;
        return Ok(());
    }
    if &header[..8] != JOURNAL_MAGIC {
        // A full-size header with the wrong magic is not the benign
        // artifact of a torn write — surface it instead of silently
        // deleting what might be someone's data.
        jfile.close(sys)?;
        return Err(SqlError::CorruptJournal {
            offset: 0,
            detail: "bad rollback-journal magic".into(),
        });
    }
    let orig_page_count = u32::from_le_bytes(header[8..12].try_into().expect("4"));
    let mut db = env.open(sys, path)?;
    let mut off = 12u64;
    let rec = 4 + DB_PAGE as u64;
    while off + rec <= jsize {
        let mut pno_b = [0u8; 4];
        jfile.pread(sys, off, &mut pno_b)?;
        let pno = u32::from_le_bytes(pno_b);
        let mut data = vec![0u8; DB_PAGE];
        jfile.pread(sys, off + 4, &mut data)?;
        db.pwrite(sys, u64::from(pno) * DB_PAGE as u64, &data)?;
        off += rec;
    }
    db.truncate(sys, u64::from(orig_page_count) * DB_PAGE as u64)?;
    db.sync(sys)?;
    db.close(sys)?;
    jfile.close(sys)?;
    env.unlink(sys, journal_path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HostEnv;
    use crate::wal::wal_path;
    use cubicle_core::{IsolationMode, System};

    fn sys() -> System {
        System::new(IsolationMode::Unikraft)
    }

    fn open(sys: &mut System, env: &HostEnv) -> Pager {
        Pager::open(sys, Box::new(env.clone()), "/test.db", 16).unwrap()
    }

    #[test]
    fn fresh_database_has_header() {
        let mut sys = sys();
        let env = HostEnv::new();
        let p = open(&mut sys, &env);
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.schema_root(), 0);
        assert!(!p.in_txn());
        assert_eq!(p.mode(), JournalMode::Wal);
    }

    #[test]
    fn pages_round_trip_through_commit() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let pno = p.allocate_page(&mut sys).unwrap();
        let mut data = vec![0u8; DB_PAGE];
        data[..5].copy_from_slice(b"btree");
        p.write_page(&mut sys, pno, &data).unwrap();
        p.commit(&mut sys).unwrap();
        drop(p);
        // reopen: data persisted (recovered out of the WAL)
        let mut p = open(&mut sys, &env);
        assert_eq!(p.page_count(), 2);
        let back = p.read_page(&mut sys, pno).unwrap();
        assert_eq!(&back[..5], b"btree");
    }

    #[test]
    fn write_outside_txn_rejected() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        let err = p.write_page(&mut sys, 1, &vec![0u8; DB_PAGE]);
        assert!(matches!(err, Err(SqlError::Transaction(_))));
        assert!(matches!(
            p.allocate_page(&mut sys),
            Err(SqlError::Transaction(_))
        ));
        assert!(matches!(p.commit(&mut sys), Err(SqlError::Transaction(_))));
    }

    #[test]
    fn rollback_restores_old_contents() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let pno = p.allocate_page(&mut sys).unwrap();
        let mut data = vec![0u8; DB_PAGE];
        data[0] = 0xAA;
        p.write_page(&mut sys, pno, &data).unwrap();
        p.commit(&mut sys).unwrap();

        p.begin(&mut sys).unwrap();
        data[0] = 0xBB;
        p.write_page(&mut sys, pno, &data).unwrap();
        let extra = p.allocate_page(&mut sys).unwrap();
        assert_eq!(extra, 2);
        p.rollback(&mut sys).unwrap();

        assert_eq!(p.read_page(&mut sys, pno).unwrap()[0], 0xAA);
        assert_eq!(p.page_count(), 2, "allocation rolled back");
    }

    #[test]
    fn crash_recovery_discards_uncommitted() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = open(&mut sys, &env);
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 1;
            p.write_page(&mut sys, pno, &data).unwrap();
            p.commit(&mut sys).unwrap();
            // second txn dies mid-flight: dirty pages in cache, maybe
            // spilled frames in the WAL, but no commit record
            p.begin(&mut sys).unwrap();
            data[0] = 2;
            p.write_page(&mut sys, pno, &data).unwrap();
            // simulate a crash: drop the pager without commit/rollback
        }
        let mut p = open(&mut sys, &env);
        assert_eq!(
            p.read_page(&mut sys, 1).unwrap()[0],
            1,
            "recovered to committed state"
        );
    }

    #[test]
    fn rollback_mode_crash_recovery_replays_journal() {
        let mut sys = sys();
        let env = HostEnv::new();
        let reopen = |sys: &mut System| {
            Pager::open_with_mode(
                sys,
                Box::new(env.clone()),
                "/r.db",
                16,
                JournalMode::Rollback,
            )
            .unwrap()
        };
        {
            let mut p = reopen(&mut sys);
            assert_eq!(p.mode(), JournalMode::Rollback);
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 1;
            p.write_page(&mut sys, pno, &data).unwrap();
            p.commit(&mut sys).unwrap();
            // second txn dies mid-flight: journal exists on disk
            p.begin(&mut sys).unwrap();
            data[0] = 2;
            p.write_page(&mut sys, pno, &data).unwrap();
        }
        let mut p = reopen(&mut sys);
        assert_eq!(
            p.read_page(&mut sys, 1).unwrap()[0],
            1,
            "recovered to committed state"
        );
    }

    #[test]
    fn eviction_mid_txn_is_safe() {
        let mut sys = sys();
        let env = HostEnv::new();
        // Tiny cache to force dirty evictions inside the transaction.
        let mut p = Pager::open(&mut sys, Box::new(env.clone()), "/t.db", 8).unwrap();
        p.begin(&mut sys).unwrap();
        let pages: Vec<u32> = (0..32)
            .map(|_| p.allocate_page(&mut sys).unwrap())
            .collect();
        for (i, &pno) in pages.iter().enumerate() {
            let mut data = vec![0u8; DB_PAGE];
            data[0] = i as u8;
            p.write_page(&mut sys, pno, &data).unwrap();
        }
        assert!(p.stats.evictions > 0, "test must actually evict");
        p.commit(&mut sys).unwrap();
        for (i, &pno) in pages.iter().enumerate() {
            assert_eq!(p.read_page(&mut sys, pno).unwrap()[0], i as u8);
        }
        // ... and the whole thing survives a reopen via WAL replay
        drop(p);
        let mut p = Pager::open(&mut sys, Box::new(env.clone()), "/t.db", 8).unwrap();
        for (i, &pno) in pages.iter().enumerate() {
            assert_eq!(p.read_page(&mut sys, pno).unwrap()[0], i as u8);
        }
    }

    #[test]
    fn spilled_then_dropped_txn_recovers_clean() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = Pager::open(&mut sys, Box::new(env.clone()), "/s.db", 8).unwrap();
            p.begin(&mut sys).unwrap();
            let a = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 7;
            p.write_page(&mut sys, a, &data).unwrap();
            p.commit(&mut sys).unwrap();
            // doomed txn spills frames into the WAL, then "crashes"
            p.begin(&mut sys).unwrap();
            for _ in 0..32 {
                let pno = p.allocate_page(&mut sys).unwrap();
                p.write_page(&mut sys, pno, &vec![0xEEu8; DB_PAGE]).unwrap();
            }
            assert!(p.stats.evictions > 0, "doomed txn must spill");
        }
        let mut p = Pager::open(&mut sys, Box::new(env.clone()), "/s.db", 8).unwrap();
        assert_eq!(p.page_count(), 2, "uncommitted allocations discarded");
        assert_eq!(p.read_page(&mut sys, 1).unwrap()[0], 7);
    }

    #[test]
    fn group_commit_coalesces_syncs() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.set_group_commit(8);
        for i in 0..8u8 {
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = i;
            p.write_page(&mut sys, pno, &data).unwrap();
            p.commit(&mut sys).unwrap();
            if i < 7 {
                assert_eq!(p.pending_commits(), u32::from(i) + 1);
            }
        }
        assert_eq!(p.stats.syncs, 1, "eight commits, one durable sync");
        assert_eq!(p.pending_commits(), 0);
        assert_eq!(sys.stats().group_commit_batches, 1);
    }

    #[test]
    fn unsynced_group_commits_lost_on_torn_tail() {
        let mut sys = sys();
        let env = HostEnv::new();
        let synced_end;
        {
            let mut p = open(&mut sys, &env);
            p.set_group_commit(4);
            // txn 1: committed AND synced
            p.begin(&mut sys).unwrap();
            let a = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 1;
            p.write_page(&mut sys, a, &data).unwrap();
            p.commit(&mut sys).unwrap();
            p.flush(&mut sys).unwrap();
            synced_end = p.wal_synced_end();
            // txn 2: committed but pending in the group window
            p.begin(&mut sys).unwrap();
            data[0] = 2;
            p.write_page(&mut sys, a, &data).unwrap();
            p.commit(&mut sys).unwrap();
            assert!(p.wal_end() > synced_end);
            assert_eq!(p.pending_commits(), 1);
        }
        // The crash loses everything past the last sync.
        {
            let mut env = env.clone();
            let mut f = env.open(&mut sys, &wal_path("/test.db")).unwrap();
            f.truncate(&mut sys, synced_end).unwrap();
        }
        let mut p = open(&mut sys, &env);
        assert_eq!(
            p.read_page(&mut sys, 1).unwrap()[0],
            1,
            "synced txn survives, unsynced group tail is gone"
        );
    }

    #[test]
    fn checkpoint_folds_wal_into_db() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = open(&mut sys, &env);
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            let mut data = vec![0u8; DB_PAGE];
            data[0] = 0x5A;
            p.write_page(&mut sys, pno, &data).unwrap();
            p.commit(&mut sys).unwrap();
            assert!(p.checkpoint(&mut sys).unwrap());
            assert_eq!(p.stats.checkpoints, 1);
            assert_eq!(p.wal_end(), crate::wal::WAL_HEADER, "log emptied");
        }
        // The db file alone (WAL is empty) carries the data now.
        let mut p = open(&mut sys, &env);
        assert_eq!(p.read_page(&mut sys, 1).unwrap()[0], 0x5A);
        assert_eq!(p.page_count(), 2);
    }

    #[test]
    fn partial_checkpoint_keeps_wal_authoritative() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = open(&mut sys, &env);
            p.begin(&mut sys).unwrap();
            for i in 0..6u8 {
                let pno = p.allocate_page(&mut sys).unwrap();
                let mut data = vec![0u8; DB_PAGE];
                data[0] = 0x10 + i;
                p.write_page(&mut sys, pno, &data).unwrap();
            }
            p.commit(&mut sys).unwrap();
            // fold only 2 of the 7 committed pages, then "crash"
            assert!(!p.checkpoint_with_limit(&mut sys, Some(2)).unwrap());
            assert_eq!(p.stats.checkpoints, 0, "incomplete: not counted");
        }
        let mut p = open(&mut sys, &env);
        for i in 0..6u8 {
            assert_eq!(
                p.read_page(&mut sys, 1 + u32::from(i)).unwrap()[0],
                0x10 + i,
                "every committed page survives a mid-checkpoint crash"
            );
        }
    }

    #[test]
    fn checkpoint_inside_txn_rejected() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        assert!(matches!(
            p.checkpoint(&mut sys),
            Err(SqlError::Transaction(_))
        ));
        p.rollback(&mut sys).unwrap();
    }

    #[test]
    fn freelist_reuses_pages() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        let b = p.allocate_page(&mut sys).unwrap();
        p.free_page(&mut sys, a).unwrap();
        let c = p.allocate_page(&mut sys).unwrap();
        assert_eq!(c, a, "freed page is reused");
        let d = p.allocate_page(&mut sys).unwrap();
        assert!(d > b, "then fresh pages again");
        p.commit(&mut sys).unwrap();
    }

    #[test]
    fn allocated_pages_are_zeroed() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        let mut junk = vec![0u8; DB_PAGE];
        junk[100] = 0xEE;
        p.write_page(&mut sys, a, &junk).unwrap();
        p.free_page(&mut sys, a).unwrap();
        let b = p.allocate_page(&mut sys).unwrap();
        assert_eq!(b, a);
        assert_eq!(
            p.read_page(&mut sys, b).unwrap()[100],
            0,
            "recycled page zeroed"
        );
        p.commit(&mut sys).unwrap();
    }

    #[test]
    fn cache_stats_move() {
        let mut sys = sys();
        let env = HostEnv::new();
        let mut p = open(&mut sys, &env);
        p.begin(&mut sys).unwrap();
        let a = p.allocate_page(&mut sys).unwrap();
        p.commit(&mut sys).unwrap();
        let h0 = p.stats.hits;
        p.read_page(&mut sys, a).unwrap();
        p.read_page(&mut sys, a).unwrap();
        assert!(p.stats.hits >= h0 + 2);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            let mut f = env.open(&mut sys, "/bad.db").unwrap();
            f.pwrite(&mut sys, 0, b"not a database file").unwrap();
        }
        let err = Pager::open(&mut sys, Box::new(env.clone()), "/bad.db", 16);
        assert!(matches!(err, Err(SqlError::Corrupt(_))));
    }

    #[test]
    fn corrupt_rollback_journal_rejected() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        {
            // a full-size journal header with the wrong magic
            let mut f = env.open(&mut sys, "/j.db-journal").unwrap();
            f.pwrite(&mut sys, 0, b"NOTJRNL!\x01\x00\x00\x00").unwrap();
        }
        let err = Pager::open(&mut sys, Box::new(env.clone()), "/j.db", 16);
        assert!(matches!(
            err,
            Err(SqlError::CorruptJournal { offset: 0, .. })
        ));
    }

    #[test]
    fn wal_replay_is_counted() {
        let mut sys = sys();
        let env = HostEnv::new();
        {
            let mut p = open(&mut sys, &env);
            p.begin(&mut sys).unwrap();
            let pno = p.allocate_page(&mut sys).unwrap();
            p.write_page(&mut sys, pno, &vec![3u8; DB_PAGE]).unwrap();
            p.commit(&mut sys).unwrap();
        }
        assert_eq!(sys.stats().wal_replays, 0, "clean open: no replay");
        let _p = open(&mut sys, &env);
        let s = sys.stats();
        assert_eq!(s.wal_replays, 1);
        assert!(s.wal_frames_recovered >= 2, "data page + header page");
    }
}

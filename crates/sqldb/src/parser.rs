//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::token::{tokenize, Token};
use crate::value::SqlValue;

/// Parses one or more `;`-separated statements.
///
/// # Errors
///
/// [`SqlError::Parse`] on any syntax error.
pub fn parse_all(sql: &str) -> Result<Vec<Stmt>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat_punct(";") {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parses exactly one statement.
///
/// # Errors
///
/// [`SqlError::Parse`] on syntax errors or trailing tokens.
pub fn parse_one(sql: &str) -> Result<Stmt> {
    let stmts = parse_all(sql)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("len checked")),
        0 => Err(SqlError::Parse("empty statement".into())),
        _ => Err(SqlError::Parse("expected a single statement".into())),
    }
}

/// Keywords that may never appear as a bare column reference.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "limit", "offset", "insert", "update", "delete",
    "create", "drop", "table", "index", "values", "set", "into", "and", "or", "join", "inner",
    "on", "by", "begin", "commit", "rollback", "pragma", "having", "alter",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqlError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{kw}`, found `{}`",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{p}`, found `{}`",
                self.peek()
                    .map_or("end of input".to_string(), |t| t.to_string())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) | Token::QuotedIdent(s) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found `{other}`"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Stmt> {
        let t = self
            .peek()
            .ok_or_else(|| SqlError::Parse("empty statement".into()))?
            .clone();
        match &t {
            t if t.is_kw("create") => self.create(),
            t if t.is_kw("drop") => self.drop(),
            t if t.is_kw("insert") => self.insert(),
            t if t.is_kw("select") => Ok(Stmt::Select(self.select()?)),
            t if t.is_kw("update") => self.update(),
            t if t.is_kw("delete") => self.delete(),
            t if t.is_kw("begin") => {
                self.pos += 1;
                self.eat_kw("transaction");
                Ok(Stmt::Begin)
            }
            t if t.is_kw("commit") => {
                self.pos += 1;
                self.eat_kw("transaction");
                Ok(Stmt::Commit)
            }
            t if t.is_kw("rollback") => {
                self.pos += 1;
                self.eat_kw("transaction");
                Ok(Stmt::Rollback)
            }
            t if t.is_kw("alter") => self.alter(),
            t if t.is_kw("pragma") => {
                self.pos += 1;
                let name = self.ident()?;
                if self.eat_punct("=") {
                    let _ = self.next()?;
                }
                Ok(Stmt::Pragma(name.to_ascii_lowercase()))
            }
            other => Err(SqlError::Parse(format!("unsupported statement `{other}`"))),
        }
    }

    fn create(&mut self) -> Result<Stmt> {
        self.expect_kw("create")?;
        let unique = self.eat_kw("unique");
        if self.eat_kw("table") {
            if unique {
                return Err(SqlError::Parse("UNIQUE TABLE is not a thing".into()));
            }
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_punct("(")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.column_def()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            Ok(Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            })
        } else if self.eat_kw("index") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_punct("(")?;
            let mut columns = Vec::new();
            loop {
                columns.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            Ok(Stmt::CreateIndex {
                name,
                table,
                columns,
                unique,
                if_not_exists,
            })
        } else {
            Err(SqlError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ))
        }
    }

    fn if_not_exists(&mut self) -> Result<bool> {
        if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.ident()?;
        // declared type: a run of identifiers possibly with (n[,m])
        let mut decl_type = String::new();
        while let Some(Token::Ident(word)) = self.peek() {
            let w = word.to_ascii_uppercase();
            if matches!(
                w.as_str(),
                "PRIMARY" | "NOT" | "UNIQUE" | "DEFAULT" | "REFERENCES" | "CHECK" | "COLLATE"
            ) {
                break;
            }
            if !decl_type.is_empty() {
                decl_type.push(' ');
            }
            decl_type.push_str(&w);
            self.pos += 1;
            if self.eat_punct("(") {
                while !self.eat_punct(")") {
                    self.pos += 1;
                }
            }
        }
        let mut def = ColumnDef {
            name,
            decl_type,
            primary_key: false,
            not_null: false,
            unique: false,
            default: None,
        };
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                def.primary_key = true;
                self.eat_kw("asc");
                self.eat_kw("desc");
                self.eat_kw("autoincrement");
            } else if self.eat_kw("not") {
                self.expect_kw("null")?;
                def.not_null = true;
            } else if self.eat_kw("unique") {
                def.unique = true;
            } else if self.eat_kw("default") {
                def.default = Some(self.literal()?);
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn literal(&mut self) -> Result<SqlValue> {
        let neg = self.eat_punct("-");
        match self.next()? {
            Token::Integer(i) => Ok(SqlValue::Integer(if neg { -i } else { i })),
            Token::Real(r) => Ok(SqlValue::Real(if neg { -r } else { r })),
            Token::Str(s) if !neg => Ok(SqlValue::Text(s)),
            Token::Blob(b) if !neg => Ok(SqlValue::Blob(b)),
            Token::Ident(s) if !neg && s.eq_ignore_ascii_case("null") => Ok(SqlValue::Null),
            other => Err(SqlError::Parse(format!(
                "expected literal, found `{other}`"
            ))),
        }
    }

    fn alter(&mut self) -> Result<Stmt> {
        self.expect_kw("alter")?;
        self.expect_kw("table")?;
        let table = self.ident()?;
        if self.eat_kw("rename") {
            self.expect_kw("to")?;
            let to = self.ident()?;
            return Ok(Stmt::AlterRename { table, to });
        }
        if self.eat_kw("add") {
            self.eat_kw("column");
            let column = self.column_def()?;
            return Ok(Stmt::AlterAddColumn { table, column });
        }
        Err(SqlError::Parse(
            "expected RENAME TO or ADD COLUMN after ALTER TABLE".into(),
        ))
    }

    fn drop(&mut self) -> Result<Stmt> {
        self.expect_kw("drop")?;
        let is_table = if self.eat_kw("table") {
            true
        } else if self.eat_kw("index") {
            false
        } else {
            return Err(SqlError::Parse("expected TABLE or INDEX after DROP".into()));
        };
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(if is_table {
            Stmt::DropTable { name, if_exists }
        } else {
            Stmt::DropIndex { name, if_exists }
        })
    }

    fn insert(&mut self) -> Result<Stmt> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_punct("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            rows.push(row);
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let mut stmt = SelectStmt {
            distinct: self.eat_kw("distinct"),
            ..Default::default()
        };
        self.eat_kw("all");
        loop {
            if self.eat_punct("*") {
                stmt.items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else if let Some(Token::Ident(s)) = self.peek() {
                    // bare alias, unless it's a clause keyword
                    let u = s.to_ascii_uppercase();
                    if matches!(
                        u.as_str(),
                        "FROM"
                            | "WHERE"
                            | "GROUP"
                            | "HAVING"
                            | "ORDER"
                            | "LIMIT"
                            | "OFFSET"
                            | "UNION"
                    ) {
                        None
                    } else {
                        Some(self.ident()?)
                    }
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_punct(",") {
                break;
            }
        }
        if self.eat_kw("from") {
            stmt.from.push(self.table_ref()?);
            loop {
                if self.eat_punct(",") {
                    stmt.from.push(self.table_ref()?);
                    continue;
                }
                // [INNER] JOIN t [ON expr] → extra table + folded condition
                let inner = self.eat_kw("inner");
                if self.eat_kw("join") {
                    stmt.from.push(self.table_ref()?);
                    if self.eat_kw("on") {
                        let cond = self.expr()?;
                        stmt.where_ = Some(match stmt.where_.take() {
                            Some(w) => Expr::Binary(BinOp::And, Box::new(w), Box::new(cond)),
                            None => cond,
                        });
                    }
                    continue;
                }
                if inner {
                    return Err(SqlError::Parse("expected JOIN after INNER".into()));
                }
                break;
            }
        }
        if self.eat_kw("where") {
            let cond = self.expr()?;
            stmt.where_ = Some(match stmt.where_.take() {
                Some(w) => Expr::Binary(BinOp::And, Box::new(w), Box::new(cond)),
                None => cond,
            });
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                stmt.order_by.push((e, desc));
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            match self.next()? {
                Token::Integer(n) if n >= 0 => stmt.limit = Some(n as u64),
                other => return Err(SqlError::Parse(format!("bad LIMIT `{other}`"))),
            }
            if self.eat_kw("offset") {
                match self.next()? {
                    Token::Integer(n) if n >= 0 => stmt.offset = Some(n as u64),
                    other => return Err(SqlError::Parse(format!("bad OFFSET `{other}`"))),
                }
            }
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s)) = self.peek() {
            let u = s.to_ascii_uppercase();
            if matches!(
                u.as_str(),
                "WHERE"
                    | "GROUP"
                    | "HAVING"
                    | "ORDER"
                    | "LIMIT"
                    | "JOIN"
                    | "INNER"
                    | "ON"
                    | "UNION"
                    | "OFFSET"
            ) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn update(&mut self) -> Result<Stmt> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_punct("=")?;
            sets.push((col, self.expr()?));
            if !self.eat_punct(",") {
                break;
            }
        }
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_,
        })
    }

    fn delete(&mut self) -> Result<Stmt> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Delete { table, where_ })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Unary(UnOp::Not, Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("like") {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_punct("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if negated {
            return Err(SqlError::Parse("expected LIKE/BETWEEN/IN after NOT".into()));
        }
        let op = if self.eat_punct("=") || self.eat_punct("==") {
            Some(BinOp::Eq)
        } else if self.eat_punct("!=") || self.eat_punct("<>") {
            Some(BinOp::Ne)
        } else if self.eat_punct("<=") {
            Some(BinOp::Le)
        } else if self.eat_punct(">=") {
            Some(BinOp::Ge)
        } else if self.eat_punct("<") {
            Some(BinOp::Lt)
        } else if self.eat_punct(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let rhs = self.add_expr()?;
                Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else if self.eat_punct("||") {
                BinOp::Concat
            } else {
                break;
            };
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Mod
            } else {
                break;
            };
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("+") {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        let t = self.next()?;
        match t {
            Token::Integer(i) => Ok(Expr::Lit(SqlValue::Integer(i))),
            Token::Real(r) => Ok(Expr::Lit(SqlValue::Real(r))),
            Token::Str(s) => Ok(Expr::Lit(SqlValue::Text(s))),
            Token::Blob(b) => Ok(Expr::Lit(SqlValue::Blob(b))),
            Token::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Token::Ident(name) if name.eq_ignore_ascii_case("null") => {
                Ok(Expr::Lit(SqlValue::Null))
            }
            Token::Ident(name) if RESERVED.iter().any(|k| name.eq_ignore_ascii_case(k)) => Err(
                SqlError::Parse(format!("unexpected keyword `{name}` in expression")),
            ),
            Token::Ident(name) | Token::QuotedIdent(name) => {
                if self.eat_punct("(") {
                    // function call
                    let mut args = Vec::new();
                    let mut star = false;
                    if self.eat_punct("*") {
                        star = true;
                        self.expect_punct(")")?;
                    } else if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                        self.expect_punct(")")?;
                    }
                    Ok(Expr::FnCall {
                        name: name.to_ascii_lowercase(),
                        args,
                        star,
                    })
                } else if self.eat_punct(".") {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            other => Err(SqlError::Parse(format!("unexpected token `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse_one(
            "CREATE TABLE t1(a INTEGER PRIMARY KEY, b TEXT NOT NULL, c DOUBLE DEFAULT 1.5)",
        )
        .unwrap();
        let Stmt::CreateTable {
            name,
            columns,
            if_not_exists,
        } = s
        else {
            panic!("wrong stmt")
        };
        assert_eq!(name, "t1");
        assert!(!if_not_exists);
        assert_eq!(columns.len(), 3);
        assert!(columns[0].primary_key);
        assert!(columns[1].not_null);
        assert_eq!(columns[2].default, Some(SqlValue::Real(1.5)));
    }

    #[test]
    fn create_table_if_not_exists() {
        let s = parse_one("CREATE TABLE IF NOT EXISTS t(x INT)").unwrap();
        assert!(matches!(
            s,
            Stmt::CreateTable {
                if_not_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn create_index() {
        let s = parse_one("CREATE UNIQUE INDEX i1 ON t1(b, c)").unwrap();
        let Stmt::CreateIndex {
            name,
            table,
            columns,
            unique,
            ..
        } = s
        else {
            panic!("wrong stmt")
        };
        assert_eq!((name.as_str(), table.as_str(), unique), ("i1", "t1", true));
        assert_eq!(columns, vec!["b", "c"]);
    }

    #[test]
    fn insert_multi_row() {
        let s = parse_one("INSERT INTO t(a,b) VALUES (1,'x'), (2,'y')").unwrap();
        let Stmt::Insert {
            table,
            columns,
            rows,
        } = s
        else {
            panic!("wrong stmt")
        };
        assert_eq!(table, "t");
        assert_eq!(
            columns.as_deref(),
            Some(&["a".to_string(), "b".to_string()][..])
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn select_full_clause_set() {
        let s = parse_one(
            "SELECT a, count(*) AS n FROM t WHERE a BETWEEN 1 AND 10 \
             GROUP BY a ORDER BY n DESC, a LIMIT 5 OFFSET 2",
        )
        .unwrap();
        let Stmt::Select(sel) = s else {
            panic!("wrong stmt")
        };
        assert_eq!(sel.items.len(), 2);
        assert!(sel.where_.is_some());
        assert_eq!(sel.group_by.len(), 1);
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].1, "first key is DESC");
        assert_eq!(sel.limit, Some(5));
        assert_eq!(sel.offset, Some(2));
    }

    #[test]
    fn select_join_on_folds_into_where() {
        let s = parse_one("SELECT * FROM a JOIN b ON a.id = b.id WHERE a.x > 0").unwrap();
        let Stmt::Select(sel) = s else {
            panic!("wrong stmt")
        };
        assert_eq!(sel.from.len(), 2);
        // where = (a.id = b.id) AND (a.x > 0)
        assert!(matches!(sel.where_, Some(Expr::Binary(BinOp::And, _, _))));
    }

    #[test]
    fn select_comma_join_with_aliases() {
        let s = parse_one("SELECT t1.a FROM t1, t2 AS x WHERE t1.a = x.b").unwrap();
        let Stmt::Select(sel) = s else {
            panic!("wrong stmt")
        };
        assert_eq!(sel.from[1].alias.as_deref(), Some("x"));
    }

    #[test]
    fn precedence() {
        // a + b * c < 10 AND NOT d  parses as  ((a + (b*c)) < 10) AND (NOT d)
        let s = parse_one("SELECT 1 WHERE a + b * c < 10 AND NOT d").unwrap();
        let Stmt::Select(sel) = s else {
            panic!("wrong stmt")
        };
        let Some(Expr::Binary(BinOp::And, lhs, rhs)) = sel.where_ else {
            panic!("AND on top")
        };
        assert!(matches!(*lhs, Expr::Binary(BinOp::Lt, _, _)));
        assert!(matches!(*rhs, Expr::Unary(UnOp::Not, _)));
    }

    #[test]
    fn like_between_in_not_variants() {
        let cases = [
            "SELECT 1 WHERE a LIKE 'x%'",
            "SELECT 1 WHERE a NOT LIKE 'x%'",
            "SELECT 1 WHERE a BETWEEN 1 AND 2",
            "SELECT 1 WHERE a NOT BETWEEN 1 AND 2",
            "SELECT 1 WHERE a IN (1,2,3)",
            "SELECT 1 WHERE a NOT IN (1,2,3)",
            "SELECT 1 WHERE a IS NULL",
            "SELECT 1 WHERE a IS NOT NULL",
        ];
        for sql in cases {
            parse_one(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn update_delete() {
        let s = parse_one("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Stmt::Update { sets, where_, .. } = s else {
            panic!("wrong stmt")
        };
        assert_eq!(sets.len(), 2);
        assert!(where_.is_some());
        let s = parse_one("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(
            s,
            Stmt::Delete {
                where_: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn transactions_and_pragma() {
        assert_eq!(parse_one("BEGIN").unwrap(), Stmt::Begin);
        assert_eq!(parse_one("BEGIN TRANSACTION").unwrap(), Stmt::Begin);
        assert_eq!(parse_one("COMMIT").unwrap(), Stmt::Commit);
        assert_eq!(parse_one("ROLLBACK").unwrap(), Stmt::Rollback);
        assert_eq!(
            parse_one("PRAGMA integrity_check").unwrap(),
            Stmt::Pragma("integrity_check".into())
        );
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_all("BEGIN; INSERT INTO t VALUES (1); COMMIT;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_one("SELEC 1").is_err());
        assert!(parse_one("SELECT FROM").is_err());
        assert!(parse_one("INSERT INTO t VALUES").is_err());
        assert!(parse_one("CREATE TABLE t(").is_err());
        assert!(
            parse_one("SELECT 1; SELECT 2").is_err(),
            "parse_one rejects two stmts"
        );
    }

    #[test]
    fn negative_literals() {
        let s = parse_one("INSERT INTO t VALUES (-5, -2.5)").unwrap();
        let Stmt::Insert { rows, .. } = s else {
            panic!()
        };
        assert_eq!(
            rows[0][0],
            Expr::Unary(UnOp::Neg, Box::new(Expr::Lit(SqlValue::Integer(5))))
        );
    }

    #[test]
    fn function_calls() {
        let s = parse_one("SELECT count(*), max(a), length(b || 'x') FROM t").unwrap();
        let Stmt::Select(sel) = s else { panic!() };
        assert_eq!(sel.items.len(), 3);
        let SelectItem::Expr {
            expr: Expr::FnCall { name, star, .. },
            ..
        } = &sel.items[0]
        else {
            panic!()
        };
        assert_eq!(name, "count");
        assert!(star);
    }
}

//! speedtest1-like workload: the paper's SQLite benchmark.
//!
//! The evaluation (§6.4, Figure 6) runs SQLite's `speedtest1` and plots
//! per-query execution time for 31 numbered tests. The paper divides
//! them into two groups:
//!
//! * **group A** (≈⅔ of the queries: 100–120, 140–161, 180, 190, 230,
//!   250, 300, 320, 400, 500, 520, 990) — cache-friendly: they "benefit
//!   from caching and only involve the OS interface to write batched
//!   pages evicted from the cache"; CubicleOS costs ≈1.8× there;
//! * **group B** (the rest) — they "benefit less from the use of the
//!   database page cache, and … significantly more often use the OS
//!   interface"; CubicleOS costs ≈8× there.
//!
//! This module reproduces that structure: the same test numbers, with
//! workloads chosen so group A runs batched/cached and group B performs
//! large scans or per-statement transactions that exercise the pager's
//! journal and the file system on every step. Work is scaled by
//! [`SpeedtestConfig::scale`] (100 ≈ the paper's `--stat 100` default).

use crate::db::Database;
use crate::error::Result;
use crate::value::SqlValue;
use cubicle_core::System;
use cubicle_mpk::rng::Rng64;

/// The 31 query identifiers on the x-axis of Figure 6.
pub const QUERY_IDS: [u32; 31] = [
    100, 110, 120, 130, 140, 142, 145, 150, 160, 161, 170, 180, 190, 210, 230, 240, 250, 260, 270,
    280, 290, 300, 310, 320, 400, 410, 500, 510, 520, 980, 990,
];

/// The paper's overhead grouping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryGroup {
    /// Cache-friendly, batched OS usage (≈1.8× under CubicleOS).
    A,
    /// OS-interface heavy (≈8× under CubicleOS).
    B,
}

/// Which group a query ID belongs to (paper §6.4).
pub fn query_group(id: u32) -> QueryGroup {
    match id {
        100..=120 | 140..=161 | 180 | 190 | 230 | 250 | 300 | 320 | 400 | 500 | 520 | 990 => {
            QueryGroup::A
        }
        _ => QueryGroup::B,
    }
}

/// Workload scaling knobs.
#[derive(Clone, Copy, Debug)]
pub struct SpeedtestConfig {
    /// 100 reproduces the paper's `--stat 100` scale; smaller values are
    /// for tests.
    pub scale: u32,
    /// RNG seed (fixed for reproducibility).
    pub seed: u64,
}

impl Default for SpeedtestConfig {
    fn default() -> Self {
        SpeedtestConfig {
            scale: 100,
            seed: 0xC0B1C1E5,
        }
    }
}

impl SpeedtestConfig {
    /// Rows in the three main tables.
    pub fn rows(&self) -> u64 {
        u64::from(self.scale) * 100
    }
}

/// Timing of one test.
#[derive(Clone, Copy, Debug)]
pub struct TestResult {
    /// Query identifier (Figure 6 x-axis).
    pub id: u32,
    /// Simulated cycles spent in the test.
    pub cycles: u64,
    /// Rows returned/affected (sanity signal).
    pub rows: u64,
}

fn word(rng: &mut Rng64) -> String {
    const SYL: [&str; 12] = [
        "lor", "em", "ip", "sum", "do", "lor", "sit", "am", "et", "con", "sec", "te",
    ];
    let n = rng.range_usize(6, 14);
    let mut s = String::new();
    for _ in 0..n {
        // the deref picks `T = &str`; without it inference lands on unsized `str`
        #[allow(clippy::explicit_auto_deref)]
        s.push_str(*rng.pick(&SYL));
    }
    s
}

/// The full speedtest1 run: executes every test in [`QUERY_IDS`] order
/// against a fresh schema and reports per-test simulated cycles.
///
/// # Errors
///
/// SQL/storage errors from the engine.
pub fn run_speedtest(
    sys: &mut System,
    db: &mut Database,
    cfg: &SpeedtestConfig,
) -> Result<Vec<TestResult>> {
    let mut results = Vec::with_capacity(QUERY_IDS.len());
    let mut rng = Rng64::new(cfg.seed);
    for &id in &QUERY_IDS {
        let t0 = sys.now();
        let rows = run_test(sys, db, id, cfg, &mut rng)?;
        results.push(TestResult {
            id,
            cycles: sys.now() - t0,
            rows,
        });
    }
    Ok(results)
}

fn count_of(rows: &[Vec<SqlValue>]) -> u64 {
    rows.first()
        .and_then(|r| r.first())
        .and_then(SqlValue::as_i64)
        .unwrap_or(0) as u64
}

#[allow(clippy::too_many_lines)]
fn run_test(
    sys: &mut System,
    db: &mut Database,
    id: u32,
    cfg: &SpeedtestConfig,
    rng: &mut Rng64,
) -> Result<u64> {
    let n = cfg.rows();
    match id {
        // ----- group A: bulk inserts in one transaction ----------------
        100 => {
            // n INSERTs into an unindexed wide table, one transaction
            db.execute(sys, "CREATE TABLE t1(a INTEGER, b INTEGER, c TEXT)")?;
            db.execute(sys, "BEGIN")?;
            for i in 0..n {
                let c = word(rng);
                db.execute(
                    sys,
                    &format!(
                        "INSERT INTO t1 VALUES ({}, {i}, '{c} {c} {c} {c}')",
                        rng.range_u64(0, n)
                    ),
                )?;
            }
            db.execute(sys, "COMMIT")?;
            Ok(n)
        }
        110 => {
            // n ordered INSERTs, INTEGER PRIMARY KEY, narrow rows
            db.execute(sys, "CREATE TABLE t2(id INTEGER PRIMARY KEY, v INTEGER)")?;
            db.execute(sys, "BEGIN")?;
            for i in 0..n {
                db.execute(sys, &format!("INSERT INTO t2 VALUES ({i}, {})", i * 3 % n))?;
            }
            db.execute(sys, "COMMIT")?;
            Ok(n)
        }
        120 => {
            // n unordered INSERTs (random primary keys), wide rows
            db.execute(
                sys,
                "CREATE TABLE t3(id INTEGER PRIMARY KEY, a INTEGER, c TEXT)",
            )?;
            db.execute(sys, "BEGIN")?;
            let mut ids: Vec<u64> = (0..n).collect();
            rng.shuffle(&mut ids);
            for (i, id) in ids.iter().enumerate() {
                let c = word(rng);
                db.execute(
                    sys,
                    &format!(
                        "INSERT INTO t3 VALUES ({id}, {}, '{c} {c} {c}')",
                        i as u64 % n
                    ),
                )?;
            }
            db.execute(sys, "COMMIT")?;
            Ok(n)
        }
        // ----- group B: unindexed scans of the big table ---------------
        130 => {
            let mut total = 0;
            for k in 0..25u64 {
                let lo = k * n / 25;
                let hi = lo + n / 10;
                let rows = db.query(
                    sys,
                    &format!("SELECT count(*), avg(b) FROM t1 WHERE b BETWEEN {lo} AND {hi}"),
                )?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        // ----- group A: scans of the small (cached) table ---------------
        140 => {
            let mut total = 0;
            for k in 0..10u64 {
                let rows = db.query(sys, &format!("SELECT count(*) FROM t2 WHERE v % 10 = {k}"))?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        142 => {
            let mut total = 0;
            for k in 0..10u64 {
                let rows = db.query(
                    sys,
                    &format!(
                        "SELECT id, v FROM t2 WHERE v > {} ORDER BY v LIMIT 10",
                        k * n / 10
                    ),
                )?;
                total += rows.len() as u64;
            }
            Ok(total)
        }
        145 => {
            let mut total = 0;
            for _ in 0..10 {
                let a = rng.range_u64(0, n);
                let b = rng.range_u64(0, n);
                let c = rng.range_u64(0, n);
                let rows = db.query(
                    sys,
                    &format!("SELECT count(*) FROM t2 WHERE id IN ({a}, {b}, {c})"),
                )?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        150 => {
            // CREATE INDEX over the big table (one big pass)
            db.execute(sys, "CREATE INDEX i3a ON t3(a)")?;
            db.execute(sys, "CREATE INDEX i3c ON t3(c)")?;
            Ok(0)
        }
        160 => {
            let mut total = 0;
            for k in 0..100u64 {
                let lo = k * n / 100;
                let rows = db.query(
                    sys,
                    &format!(
                        "SELECT count(*) FROM t3 WHERE a BETWEEN {lo} AND {}",
                        lo + 5
                    ),
                )?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        161 => {
            let mut total = 0;
            for _ in 0..100 {
                let w = word(rng);
                let rows = db.query(
                    sys,
                    &format!("SELECT count(*) FROM t3 WHERE c BETWEEN '{w}' AND '{w}~'"),
                )?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        // ----- group B: text scans of the big table --------------------
        170 => {
            let mut total = 0;
            for _ in 0..(n / 400).max(4) {
                let rows = db.query(sys, "SELECT count(*) FROM t1 WHERE c LIKE '%lorem%'")?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        // ----- group A: indexed bulk insert -----------------------------
        180 => {
            db.execute(sys, "CREATE TABLE t4(id INTEGER PRIMARY KEY, k INTEGER)")?;
            db.execute(sys, "CREATE INDEX i4k ON t4(k)")?;
            db.execute(sys, "BEGIN")?;
            for i in 0..n / 2 {
                db.execute(sys, &format!("INSERT INTO t4 VALUES ({i}, {})", i * 7 % n))?;
            }
            db.execute(sys, "COMMIT")?;
            Ok(n / 2)
        }
        190 => {
            // batched DELETE + re-INSERT
            db.execute(sys, "BEGIN")?;
            let r1 = db.execute(sys, &format!("DELETE FROM t2 WHERE id < {}", n / 10))?;
            for i in 0..n / 10 {
                db.execute(sys, &format!("INSERT INTO t2 VALUES ({i}, {i})"))?;
            }
            db.execute(sys, "COMMIT")?;
            Ok(r1.rows_affected)
        }
        // ----- group B: ALTER TABLE schema churn in autocommit ----------
        210 => {
            for k in 0..(u64::from(cfg.scale) / 10).max(3) {
                db.execute(sys, &format!("CREATE TABLE alter_{k}(x INTEGER, y TEXT)"))?;
                db.execute(
                    sys,
                    &format!("INSERT INTO alter_{k} VALUES (1, 'migration')"),
                )?;
                db.execute(
                    sys,
                    &format!("ALTER TABLE alter_{k} ADD COLUMN z INTEGER DEFAULT 0"),
                )?;
                db.execute(sys, &format!("ALTER TABLE alter_{k} RENAME TO altered_{k}"))?;
                db.execute(sys, &format!("DROP TABLE altered_{k}"))?;
            }
            Ok(0)
        }
        // ----- group A: batched indexed updates -------------------------
        230 => {
            db.execute(sys, "BEGIN")?;
            let mut total = 0;
            for k in 0..10u64 {
                let lo = k * n / 10;
                let r = db.execute(
                    sys,
                    &format!(
                        "UPDATE t2 SET v = v + 1 WHERE id BETWEEN {lo} AND {}",
                        lo + n / 100
                    ),
                )?;
                total += r.rows_affected;
            }
            db.execute(sys, "COMMIT")?;
            Ok(total)
        }
        // ----- group B: small updates, one journalled txn per statement
        240 => {
            let mut total = 0;
            for k in 0..n / 50 {
                let lo = (k * 37) % n;
                let r = db.execute(
                    sys,
                    &format!(
                        "UPDATE t1 SET b = b + 1 WHERE rowid BETWEEN {lo} AND {}",
                        lo + 10
                    ),
                )?;
                total += r.rows_affected;
            }
            Ok(total)
        }
        250 => {
            db.execute(sys, "BEGIN")?;
            let r = db.execute(sys, "UPDATE t2 SET v = v * 2 WHERE v < 1000000")?;
            db.execute(sys, "COMMIT")?;
            Ok(r.rows_affected)
        }
        // ----- group B: big aggregation scans ---------------------------
        260 => {
            let rows = db.query(
                sys,
                "SELECT b % 100, count(*), sum(a) FROM t1 GROUP BY b % 100",
            )?;
            Ok(rows.len() as u64)
        }
        270 => {
            let mut total = 0;
            for k in 0..(n / 500).max(2) {
                let r = db.execute(
                    sys,
                    &format!("UPDATE t3 SET c = c || 'x' WHERE id % 100 = {k}"),
                )?;
                total += r.rows_affected;
            }
            Ok(total)
        }
        280 => {
            let mut total = 0;
            for k in 0..n / 100 {
                let lo = (k * 101) % n;
                let r = db.execute(
                    sys,
                    &format!("DELETE FROM t1 WHERE rowid BETWEEN {lo} AND {}", lo + 3),
                )?;
                total += r.rows_affected;
            }
            Ok(total)
        }
        290 => {
            // refill in autocommit: journal + sync per statement
            let mut total = 0;
            for i in 0..(n / 20).max(10) {
                let c = word(rng);
                db.execute(
                    sys,
                    &format!(
                        "INSERT INTO t1 VALUES ({}, {i}, '{c}')",
                        rng.range_u64(0, n)
                    ),
                )?;
                total += 1;
            }
            Ok(total)
        }
        // ----- group A: indexed min/max and grouped reads ---------------
        300 => {
            let mut total = 0;
            for _ in 0..10 {
                let rows = db.query(sys, "SELECT min(a), max(a) FROM t3")?;
                total += rows.len() as u64;
            }
            Ok(total)
        }
        // ----- group B: multi-way join over the big tables -------------
        310 => {
            let rows = db.query(
                sys,
                &format!(
                    "SELECT count(*) FROM t2, t3 WHERE t3.id = t2.id AND t2.v < {}",
                    n / 20
                ),
            )?;
            Ok(count_of(&rows))
        }
        320 => {
            let rows = db.query(
                sys,
                "SELECT v % 10, count(*) FROM t2 GROUP BY v % 10 ORDER BY 1",
            )?;
            Ok(rows.len() as u64)
        }
        // ----- sequential scans ------------------------------------------
        400 => {
            let rows = db.query(sys, "SELECT count(*), sum(v) FROM t2")?;
            Ok(count_of(&rows))
        }
        410 => {
            let rows = db.query(sys, "SELECT count(*), sum(b), sum(length(c)) FROM t1")?;
            Ok(count_of(&rows))
        }
        // ----- point queries ---------------------------------------------
        500 => {
            let mut total = 0;
            for _ in 0..100 {
                let id = rng.range_u64(0, n);
                let rows = db.query(sys, &format!("SELECT v FROM t2 WHERE id = {id}"))?;
                total += rows.len() as u64;
            }
            Ok(total)
        }
        510 => {
            let mut total = 0;
            for _ in 0..100 {
                let a = rng.range_u64(0, n);
                let rows = db.query(sys, &format!("SELECT id, c FROM t3 WHERE a = {a}"))?;
                total += rows.len() as u64;
            }
            Ok(total)
        }
        520 => {
            let mut total = 0;
            for _ in 0..100 {
                let k = rng.range_u64(0, n);
                let rows = db.query(sys, &format!("SELECT count(*) FROM t4 WHERE k = {k}"))?;
                total += count_of(&rows);
            }
            Ok(total)
        }
        // ----- integrity / cleanup ----------------------------------------
        980 => {
            let rows = db.query(sys, "PRAGMA integrity_check")?;
            Ok(rows.len() as u64)
        }
        990 => {
            db.execute(sys, "BEGIN")?;
            db.execute(sys, "DROP TABLE IF EXISTS t4")?;
            db.execute(sys, "DROP TABLE IF EXISTS t1")?;
            db.execute(sys, "COMMIT")?;
            Ok(0)
        }
        other => Err(crate::error::SqlError::Misuse(format!(
            "unknown speedtest id {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HostEnv;
    use cubicle_core::IsolationMode;

    #[test]
    fn grouping_matches_the_paper() {
        let a: Vec<u32> = QUERY_IDS
            .iter()
            .copied()
            .filter(|&q| query_group(q) == QueryGroup::A)
            .collect();
        assert_eq!(
            a,
            vec![
                100, 110, 120, 140, 142, 145, 150, 160, 161, 180, 190, 230, 250, 300, 320, 400,
                500, 520, 990
            ]
        );
        // "almost two thirds of queries" are in the low-overhead group
        assert!(a.len() * 3 >= QUERY_IDS.len() * 3 / 2);
    }

    #[test]
    fn full_run_at_tiny_scale() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let mut db = Database::open(&mut sys, Box::new(HostEnv::new()), "/speed.db").unwrap();
        let cfg = SpeedtestConfig {
            scale: 2,
            ..Default::default()
        };
        let results = run_speedtest(&mut sys, &mut db, &cfg).unwrap();
        assert_eq!(results.len(), QUERY_IDS.len());
        for r in &results {
            assert!(r.cycles > 0, "test {} consumed no time", r.id);
        }
        // inserts really inserted
        let r100 = results.iter().find(|r| r.id == 100).unwrap();
        assert_eq!(r100.rows, cfg.rows());
        // integrity check passed (exactly one "ok" row)
        let r980 = results.iter().find(|r| r.id == 980).unwrap();
        assert_eq!(r980.rows, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut sys = System::new(IsolationMode::Unikraft);
            let mut db = Database::open(&mut sys, Box::new(HostEnv::new()), "/speed.db").unwrap();
            let cfg = SpeedtestConfig {
                scale: 2,
                ..Default::default()
            };
            run_speedtest(&mut sys, &mut db, &cfg)
                .unwrap()
                .iter()
                .map(|r| (r.id, r.cycles, r.rows))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "fixed seed ⇒ identical simulated timing");
    }
}

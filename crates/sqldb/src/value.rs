//! SQL values and their comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed SQL value (SQLite's storage classes).
#[derive(Clone, Debug, PartialEq)]
pub enum SqlValue {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Blob(Vec<u8>),
}

impl SqlValue {
    /// SQLite type-ordering rank: NULL < numeric < text < blob.
    fn rank(&self) -> u8 {
        match self {
            SqlValue::Null => 0,
            SqlValue::Integer(_) | SqlValue::Real(_) => 1,
            SqlValue::Text(_) => 2,
            SqlValue::Blob(_) => 3,
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, SqlValue::Null)
    }

    /// Numeric view (integers and reals).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            SqlValue::Integer(i) => Some(*i as f64),
            SqlValue::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Integer view (no coercion from text).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            SqlValue::Integer(i) => Some(*i),
            SqlValue::Real(r) => Some(*r as i64),
            _ => None,
        }
    }

    /// SQL three-valued truthiness: NULL → `None`.
    pub fn truthy(&self) -> Option<bool> {
        match self {
            SqlValue::Null => None,
            SqlValue::Integer(i) => Some(*i != 0),
            SqlValue::Real(r) => Some(*r != 0.0),
            SqlValue::Text(s) => Some(s.parse::<f64>().map(|v| v != 0.0).unwrap_or(false)),
            SqlValue::Blob(b) => Some(!b.is_empty()),
        }
    }

    /// Total ordering across storage classes (SQLite's ORDER BY order).
    /// NULLs sort first; numbers compare numerically across int/real.
    pub fn total_cmp(&self, other: &SqlValue) -> Ordering {
        match (self, other) {
            (SqlValue::Null, SqlValue::Null) => Ordering::Equal,
            (SqlValue::Integer(a), SqlValue::Integer(b)) => a.cmp(b),
            (SqlValue::Real(a), SqlValue::Real(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (SqlValue::Integer(a), SqlValue::Real(b)) => {
                (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)
            }
            (SqlValue::Real(a), SqlValue::Integer(b)) => {
                a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)
            }
            (SqlValue::Text(a), SqlValue::Text(b)) => a.cmp(b),
            (SqlValue::Blob(a), SqlValue::Blob(b)) => a.cmp(b),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }

    /// SQL `=` comparison with NULL propagation.
    pub fn sql_eq(&self, other: &SqlValue) -> SqlValue {
        if self.is_null() || other.is_null() {
            return SqlValue::Null;
        }
        SqlValue::Integer(i64::from(self.total_cmp(other) == Ordering::Equal))
    }
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Null => write!(f, "NULL"),
            SqlValue::Integer(i) => write!(f, "{i}"),
            SqlValue::Real(r) => write!(f, "{r}"),
            SqlValue::Text(s) => write!(f, "{s}"),
            SqlValue::Blob(b) => {
                write!(f, "x'")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                write!(f, "'")
            }
        }
    }
}

impl From<i64> for SqlValue {
    fn from(v: i64) -> Self {
        SqlValue::Integer(v)
    }
}

impl From<f64> for SqlValue {
    fn from(v: f64) -> Self {
        SqlValue::Real(v)
    }
}

impl From<&str> for SqlValue {
    fn from(v: &str) -> Self {
        SqlValue::Text(v.to_string())
    }
}

impl From<String> for SqlValue {
    fn from(v: String) -> Self {
        SqlValue::Text(v)
    }
}

/// Declared column affinity (subset of SQLite's).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Affinity {
    /// INTEGER columns.
    Integer,
    /// REAL columns.
    Real,
    /// TEXT columns.
    Text,
    /// BLOB / untyped columns.
    Blob,
}

impl Affinity {
    /// Parses a declared SQL type name.
    pub fn from_decl(decl: &str) -> Affinity {
        let u = decl.to_ascii_uppercase();
        if u.contains("INT") {
            Affinity::Integer
        } else if u.contains("CHAR") || u.contains("TEXT") || u.contains("CLOB") {
            Affinity::Text
        } else if u.contains("REAL") || u.contains("FLOA") || u.contains("DOUB") {
            Affinity::Real
        } else {
            Affinity::Blob
        }
    }

    /// Applies the affinity coercion to a value being stored.
    pub fn apply(self, v: SqlValue) -> SqlValue {
        match (self, v) {
            (Affinity::Integer, SqlValue::Text(s)) => match s.trim().parse::<i64>() {
                Ok(i) => SqlValue::Integer(i),
                Err(_) => match s.trim().parse::<f64>() {
                    Ok(r) => SqlValue::Real(r),
                    Err(_) => SqlValue::Text(s),
                },
            },
            (Affinity::Integer, SqlValue::Real(r)) if r.fract() == 0.0 => {
                SqlValue::Integer(r as i64)
            }
            (Affinity::Real, SqlValue::Integer(i)) => SqlValue::Real(i as f64),
            (Affinity::Real, SqlValue::Text(s)) => match s.trim().parse::<f64>() {
                Ok(r) => SqlValue::Real(r),
                Err(_) => SqlValue::Text(s),
            },
            (Affinity::Text, SqlValue::Integer(i)) => SqlValue::Text(i.to_string()),
            (Affinity::Text, SqlValue::Real(r)) => SqlValue::Text(r.to_string()),
            (_, v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_across_classes() {
        let vals = [
            SqlValue::Null,
            SqlValue::Integer(-5),
            SqlValue::Real(3.5),
            SqlValue::Integer(10),
            SqlValue::Text("abc".into()),
            SqlValue::Blob(vec![0]),
        ];
        for w in vals.windows(2) {
            assert_ne!(
                w[0].total_cmp(&w[1]),
                Ordering::Greater,
                "{:?} ≤ {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            SqlValue::Integer(2).total_cmp(&SqlValue::Real(2.0)),
            Ordering::Equal
        );
        assert_eq!(
            SqlValue::Real(1.5).total_cmp(&SqlValue::Integer(2)),
            Ordering::Less
        );
    }

    #[test]
    fn null_propagates_in_eq() {
        assert_eq!(SqlValue::Null.sql_eq(&SqlValue::Integer(1)), SqlValue::Null);
        assert_eq!(
            SqlValue::Integer(1).sql_eq(&SqlValue::Integer(1)),
            SqlValue::Integer(1)
        );
        assert_eq!(
            SqlValue::Integer(1).sql_eq(&SqlValue::Integer(2)),
            SqlValue::Integer(0)
        );
    }

    #[test]
    fn truthiness() {
        assert_eq!(SqlValue::Null.truthy(), None);
        assert_eq!(SqlValue::Integer(0).truthy(), Some(false));
        assert_eq!(SqlValue::Integer(7).truthy(), Some(true));
        assert_eq!(SqlValue::Text("0".into()).truthy(), Some(false));
        assert_eq!(SqlValue::Text("1.5".into()).truthy(), Some(true));
        assert_eq!(SqlValue::Text("abc".into()).truthy(), Some(false));
    }

    #[test]
    fn affinity_from_decl() {
        assert_eq!(Affinity::from_decl("INTEGER"), Affinity::Integer);
        assert_eq!(Affinity::from_decl("int"), Affinity::Integer);
        assert_eq!(Affinity::from_decl("VARCHAR(100)"), Affinity::Text);
        assert_eq!(Affinity::from_decl("DOUBLE"), Affinity::Real);
        assert_eq!(Affinity::from_decl("BLOB"), Affinity::Blob);
    }

    #[test]
    fn affinity_coercion() {
        assert_eq!(
            Affinity::Integer.apply(SqlValue::Text(" 42 ".into())),
            SqlValue::Integer(42)
        );
        assert_eq!(
            Affinity::Integer.apply(SqlValue::Real(3.0)),
            SqlValue::Integer(3)
        );
        assert_eq!(
            Affinity::Integer.apply(SqlValue::Real(3.5)),
            SqlValue::Real(3.5)
        );
        assert_eq!(
            Affinity::Real.apply(SqlValue::Integer(2)),
            SqlValue::Real(2.0)
        );
        assert_eq!(
            Affinity::Text.apply(SqlValue::Integer(2)),
            SqlValue::Text("2".into())
        );
        assert_eq!(
            Affinity::Integer.apply(SqlValue::Text("abc".into())),
            SqlValue::Text("abc".into())
        );
    }

    #[test]
    fn display() {
        assert_eq!(SqlValue::Null.to_string(), "NULL");
        assert_eq!(SqlValue::Blob(vec![0xAB, 0x01]).to_string(), "x'ab01'");
    }
}

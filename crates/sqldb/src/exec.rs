//! Query execution: expression evaluation, access-path planning,
//! SELECT / UPDATE / DELETE.

use crate::ast::{BinOp, Expr, SelectItem, SelectStmt, UnOp};
use crate::btree;
use crate::db::{Database, IndexInfo, QueryResult, TableInfo};
use crate::error::{Result, SqlError};
use crate::record::{decode_record, decode_rowid, encode_index_key, encode_rowid};
use crate::value::SqlValue;
use cubicle_core::System;
use std::collections::HashMap;

/// Simulated cycles charged per row materialised from storage.
const ROW_DECODE_COST: u64 = 425;
/// Simulated cycles charged per expression-tree evaluation.
const EVAL_COST: u64 = 34;

// ---------------------------------------------------------------------------
// Name binding
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Binding {
    alias: String,
    columns: Vec<String>,
    rowid_name: Option<String>, // INTEGER PRIMARY KEY alias column
    row: Vec<SqlValue>,
    rowid: i64,
}

#[derive(Default)]
struct Env {
    bindings: Vec<Binding>,
}

impl Env {
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<SqlValue> {
        let mut found: Option<SqlValue> = None;
        for b in &self.bindings {
            if let Some(t) = table {
                if !b.alias.eq_ignore_ascii_case(t) {
                    continue;
                }
            }
            if name.eq_ignore_ascii_case("rowid")
                && !b.columns.iter().any(|c| c.eq_ignore_ascii_case("rowid"))
                && (table.is_some() || self.bindings.len() == 1)
            {
                return Ok(SqlValue::Integer(b.rowid));
            }
            if let Some(i) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(name)) {
                if found.is_some() {
                    return Err(SqlError::Misuse(format!("ambiguous column `{name}`")));
                }
                found = Some(b.row[i].clone());
            } else if b
                .rowid_name
                .as_deref()
                .is_some_and(|r| r.eq_ignore_ascii_case(name))
            {
                found = Some(SqlValue::Integer(b.rowid));
            }
        }
        found.ok_or_else(|| SqlError::NoSuchColumn(name.into()))
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

type AggResolver<'a> = &'a dyn Fn(&Expr) -> Option<SqlValue>;

fn eval(sys: &mut System, expr: &Expr, env: &Env, aggs: Option<AggResolver>) -> Result<SqlValue> {
    sys.charge(EVAL_COST);
    if let Some(resolver) = aggs {
        if let Some(v) = resolver(expr) {
            return Ok(v);
        }
    }
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Column { table, name } => env.resolve(table.as_deref(), name),
        Expr::Unary(op, inner) => {
            let v = eval(sys, inner, env, aggs)?;
            match op {
                UnOp::Neg => match v {
                    SqlValue::Integer(i) => Ok(SqlValue::Integer(-i)),
                    SqlValue::Real(r) => Ok(SqlValue::Real(-r)),
                    SqlValue::Null => Ok(SqlValue::Null),
                    other => Err(SqlError::Type(format!("cannot negate {other:?}"))),
                },
                UnOp::Not => match v.truthy() {
                    None => Ok(SqlValue::Null),
                    Some(b) => Ok(SqlValue::Integer(i64::from(!b))),
                },
            }
        }
        Expr::Binary(op, l, r) => eval_binary(sys, *op, l, r, env, aggs),
        Expr::IsNull { expr, negated } => {
            let v = eval(sys, expr, env, aggs)?;
            Ok(SqlValue::Integer(i64::from(v.is_null() != *negated)))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(sys, expr, env, aggs)?;
            let p = eval(sys, pattern, env, aggs)?;
            match (v, p) {
                (SqlValue::Null, _) | (_, SqlValue::Null) => Ok(SqlValue::Null),
                (v, p) => {
                    let matched = like_match(&text_of(&p), &text_of(&v));
                    Ok(SqlValue::Integer(i64::from(matched != *negated)))
                }
            }
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(sys, expr, env, aggs)?;
            let lo = eval(sys, lo, env, aggs)?;
            let hi = eval(sys, hi, env, aggs)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(SqlValue::Null);
            }
            let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
            Ok(SqlValue::Integer(i64::from(inside != *negated)))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(sys, expr, env, aggs)?;
            if v.is_null() {
                return Ok(SqlValue::Null);
            }
            let mut saw_null = false;
            for item in list {
                let c = eval(sys, item, env, aggs)?;
                if c.is_null() {
                    saw_null = true;
                } else if v.total_cmp(&c) == std::cmp::Ordering::Equal {
                    return Ok(SqlValue::Integer(i64::from(!negated)));
                }
            }
            if saw_null {
                Ok(SqlValue::Null)
            } else {
                Ok(SqlValue::Integer(i64::from(*negated)))
            }
        }
        Expr::FnCall { name, args, star } => {
            if is_aggregate_call(name, args, *star) {
                return Err(SqlError::Misuse(format!(
                    "aggregate {name}() used outside aggregation"
                )));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(sys, a, env, aggs)?);
            }
            scalar_fn(name, &vals, *star)
        }
    }
}

fn eval_binary(
    sys: &mut System,
    op: BinOp,
    l: &Expr,
    r: &Expr,
    env: &Env,
    aggs: Option<AggResolver>,
) -> Result<SqlValue> {
    // short-circuit three-valued AND/OR
    match op {
        BinOp::And => {
            let lv = eval(sys, l, env, aggs)?.truthy();
            if lv == Some(false) {
                return Ok(SqlValue::Integer(0));
            }
            let rv = eval(sys, r, env, aggs)?.truthy();
            return Ok(match (lv, rv) {
                (_, Some(false)) => SqlValue::Integer(0),
                (Some(true), Some(true)) => SqlValue::Integer(1),
                _ => SqlValue::Null,
            });
        }
        BinOp::Or => {
            let lv = eval(sys, l, env, aggs)?.truthy();
            if lv == Some(true) {
                return Ok(SqlValue::Integer(1));
            }
            let rv = eval(sys, r, env, aggs)?.truthy();
            return Ok(match (lv, rv) {
                (_, Some(true)) => SqlValue::Integer(1),
                (Some(false), Some(false)) => SqlValue::Integer(0),
                _ => SqlValue::Null,
            });
        }
        _ => {}
    }
    let lv = eval(sys, l, env, aggs)?;
    let rv = eval(sys, r, env, aggs)?;
    if lv.is_null() || rv.is_null() {
        return Ok(SqlValue::Null);
    }
    use std::cmp::Ordering;
    let cmp = |ord: &[Ordering]| SqlValue::Integer(i64::from(ord.contains(&lv.total_cmp(&rv))));
    Ok(match op {
        BinOp::Eq => cmp(&[Ordering::Equal]),
        BinOp::Ne => cmp(&[Ordering::Less, Ordering::Greater]),
        BinOp::Lt => cmp(&[Ordering::Less]),
        BinOp::Le => cmp(&[Ordering::Less, Ordering::Equal]),
        BinOp::Gt => cmp(&[Ordering::Greater]),
        BinOp::Ge => cmp(&[Ordering::Greater, Ordering::Equal]),
        BinOp::Concat => SqlValue::Text(format!("{}{}", text_of(&lv), text_of(&rv))),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => arith(op, &lv, &rv)?,
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    })
}

fn arith(op: BinOp, l: &SqlValue, r: &SqlValue) -> Result<SqlValue> {
    if let (SqlValue::Integer(a), SqlValue::Integer(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => SqlValue::Integer(a.wrapping_add(*b)),
            BinOp::Sub => SqlValue::Integer(a.wrapping_sub(*b)),
            BinOp::Mul => SqlValue::Integer(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Integer(a.wrapping_div(*b))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Integer(a.wrapping_rem(*b))
                }
            }
            _ => unreachable!(),
        });
    }
    let (Some(a), Some(b)) = (numeric_of(l), numeric_of(r)) else {
        return Err(SqlError::Type(format!("arithmetic on {l:?} and {r:?}")));
    };
    Ok(match op {
        BinOp::Add => SqlValue::Real(a + b),
        BinOp::Sub => SqlValue::Real(a - b),
        BinOp::Mul => SqlValue::Real(a * b),
        BinOp::Div => {
            if b == 0.0 {
                SqlValue::Null
            } else {
                SqlValue::Real(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                SqlValue::Null
            } else {
                SqlValue::Real(a % b)
            }
        }
        _ => unreachable!(),
    })
}

fn numeric_of(v: &SqlValue) -> Option<f64> {
    match v {
        SqlValue::Integer(i) => Some(*i as f64),
        SqlValue::Real(r) => Some(*r),
        SqlValue::Text(s) => s.trim().parse().ok().or(Some(0.0)),
        _ => None,
    }
}

fn text_of(v: &SqlValue) -> String {
    match v {
        SqlValue::Text(s) => s.clone(),
        other => other.to_string(),
    }
}

/// `LIKE` matcher: `%` any run, `_` one char, ASCII case-insensitive.
pub(crate) fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'%') => (0..=t.len()).any(|k| rec(&p[1..], &t[k..])),
            Some(b'_') => !t.is_empty() && rec(&p[1..], &t[1..]),
            Some(&c) => !t.is_empty() && t[0].eq_ignore_ascii_case(&c) && rec(&p[1..], &t[1..]),
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

fn scalar_fn(name: &str, vals: &[SqlValue], star: bool) -> Result<SqlValue> {
    if star {
        return Err(SqlError::Misuse(format!("{name}(*) is not a scalar call")));
    }
    let arg = |i: usize| -> Result<&SqlValue> {
        vals.get(i)
            .ok_or_else(|| SqlError::Misuse(format!("{name}: missing argument {i}")))
    };
    match name {
        "length" => Ok(match arg(0)? {
            SqlValue::Null => SqlValue::Null,
            SqlValue::Text(s) => SqlValue::Integer(s.chars().count() as i64),
            SqlValue::Blob(b) => SqlValue::Integer(b.len() as i64),
            other => SqlValue::Integer(other.to_string().len() as i64),
        }),
        "abs" => Ok(match arg(0)? {
            SqlValue::Null => SqlValue::Null,
            SqlValue::Integer(i) => SqlValue::Integer(i.wrapping_abs()),
            SqlValue::Real(r) => SqlValue::Real(r.abs()),
            other => SqlValue::Real(numeric_of(other).unwrap_or(0.0).abs()),
        }),
        "upper" => Ok(match arg(0)? {
            SqlValue::Null => SqlValue::Null,
            v => SqlValue::Text(text_of(v).to_uppercase()),
        }),
        "lower" => Ok(match arg(0)? {
            SqlValue::Null => SqlValue::Null,
            v => SqlValue::Text(text_of(v).to_lowercase()),
        }),
        "typeof" => Ok(SqlValue::Text(
            match arg(0)? {
                SqlValue::Null => "null",
                SqlValue::Integer(_) => "integer",
                SqlValue::Real(_) => "real",
                SqlValue::Text(_) => "text",
                SqlValue::Blob(_) => "blob",
            }
            .into(),
        )),
        "substr" | "substring" => {
            let s = match arg(0)? {
                SqlValue::Null => return Ok(SqlValue::Null),
                v => text_of(v),
            };
            let chars: Vec<char> = s.chars().collect();
            let start = arg(1)?.as_i64().unwrap_or(1);
            let from = if start > 0 {
                (start - 1) as usize
            } else {
                chars.len().saturating_sub(start.unsigned_abs() as usize)
            };
            let len = match vals.get(2) {
                Some(v) => v.as_i64().unwrap_or(0).max(0) as usize,
                None => chars.len(),
            };
            Ok(SqlValue::Text(chars.iter().skip(from).take(len).collect()))
        }
        "coalesce" => Ok(vals
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(SqlValue::Null)),
        "ifnull" => {
            let a = arg(0)?;
            Ok(if a.is_null() {
                arg(1)?.clone()
            } else {
                a.clone()
            })
        }
        "nullif" => {
            let (a, b) = (arg(0)?, arg(1)?);
            if !a.is_null() && !b.is_null() && a.total_cmp(b) == std::cmp::Ordering::Equal {
                Ok(SqlValue::Null)
            } else {
                Ok(a.clone())
            }
        }
        "min" | "max" if vals.len() >= 2 => {
            if vals.iter().any(SqlValue::is_null) {
                return Ok(SqlValue::Null);
            }
            let mut best = vals[0].clone();
            for v in &vals[1..] {
                let take = if name == "min" {
                    v.total_cmp(&best) == std::cmp::Ordering::Less
                } else {
                    v.total_cmp(&best) == std::cmp::Ordering::Greater
                };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "round" => {
            let v = match numeric_of(arg(0)?) {
                Some(v) => v,
                None => return Ok(SqlValue::Null),
            };
            let digits = vals.get(1).and_then(SqlValue::as_i64).unwrap_or(0);
            let f = 10f64.powi(digits as i32);
            Ok(SqlValue::Real((v * f).round() / f))
        }
        other => Err(SqlError::Misuse(format!("unknown function {other}()"))),
    }
}

fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max" | "total")
}

/// `min`/`max` are aggregates only in their single-argument form; with
/// two or more arguments they are scalar functions (SQLite semantics).
fn is_aggregate_call(name: &str, args: &[Expr], star: bool) -> bool {
    match name {
        "min" | "max" => args.len() == 1 && !star,
        other => is_aggregate(other),
    }
}

/// Evaluates an expression with no row context (INSERT values, defaults).
pub(crate) fn eval_const(_db: &Database, sys: &mut System, expr: &Expr) -> Result<SqlValue> {
    eval(sys, expr, &Env::default(), None)
}

// ---------------------------------------------------------------------------
// Access-path planning
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Access {
    FullScan,
    RowidEq(Expr),
    RowidRange {
        lo: Option<Expr>,
        hi: Option<Expr>,
    },
    IndexEq {
        index: IndexInfo,
        eq: Vec<Expr>,
    },
    IndexRange {
        index: IndexInfo,
        lo: Option<Expr>,
        hi: Option<Expr>,
    },
}

fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary(BinOp::And, l, r) = expr {
        split_conjuncts(l, out);
        split_conjuncts(r, out);
    } else {
        out.push(expr.clone());
    }
}

/// All column references in an expression.
fn column_refs(expr: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match expr {
        Expr::Column { table, name } => out.push((table.clone(), name.clone())),
        Expr::Lit(_) => {}
        Expr::Unary(_, e) => column_refs(e, out),
        Expr::Binary(_, l, r) => {
            column_refs(l, out);
            column_refs(r, out);
        }
        Expr::Like { expr, pattern, .. } => {
            column_refs(expr, out);
            column_refs(pattern, out);
        }
        Expr::Between { expr, lo, hi, .. } => {
            column_refs(expr, out);
            column_refs(lo, out);
            column_refs(hi, out);
        }
        Expr::InList { expr, list, .. } => {
            column_refs(expr, out);
            for e in list {
                column_refs(e, out);
            }
        }
        Expr::IsNull { expr, .. } => column_refs(expr, out),
        Expr::FnCall { args, .. } => {
            for a in args {
                column_refs(a, out);
            }
        }
    }
}

struct TableMeta {
    alias: String,
    info: TableInfo,
}

/// Can `expr` be evaluated with only `bound` tables in scope?
fn bound_by(expr: &Expr, bound: &[&TableMeta]) -> bool {
    let mut refs = Vec::new();
    column_refs(expr, &mut refs);
    refs.iter().all(|(tbl, name)| {
        bound.iter().any(|m| {
            let alias_ok = tbl
                .as_deref()
                .is_none_or(|t| m.alias.eq_ignore_ascii_case(t));
            alias_ok
                && (m
                    .info
                    .columns
                    .iter()
                    .any(|c| c.name.eq_ignore_ascii_case(name))
                    || name.eq_ignore_ascii_case("rowid"))
        })
    })
}

/// Is `expr` exactly a reference to column `col` of table `meta`?
fn is_col_of(expr: &Expr, meta: &TableMeta, col: &str) -> bool {
    match expr {
        Expr::Column { table, name } => {
            name.eq_ignore_ascii_case(col)
                && table
                    .as_deref()
                    .is_none_or(|t| meta.alias.eq_ignore_ascii_case(t))
        }
        _ => false,
    }
}

fn is_rowid_col(expr: &Expr, meta: &TableMeta) -> bool {
    if let Expr::Column { table, name } = expr {
        let alias_ok = table
            .as_deref()
            .is_none_or(|t| meta.alias.eq_ignore_ascii_case(t));
        if !alias_ok {
            return false;
        }
        if name.eq_ignore_ascii_case("rowid") {
            return true;
        }
        if let Some(pk) = meta.info.rowid_alias {
            return meta.info.columns[pk].name.eq_ignore_ascii_case(name);
        }
    }
    false
}

fn choose_access(
    meta: &TableMeta,
    indexes: &[IndexInfo],
    conjuncts: &[Expr],
    outer: &[&TableMeta],
) -> Access {
    let usable: Vec<&Expr> = conjuncts.iter().collect();
    // 1. rowid equality
    for c in &usable {
        if let Expr::Binary(BinOp::Eq, l, r) = c {
            for (col, other) in [(l, r), (r, l)] {
                if is_rowid_col(col, meta) && bound_by(other, outer) {
                    return Access::RowidEq((**other).clone());
                }
            }
        }
    }
    // 2. index equality on the leading column(s)
    let mut best: Option<(usize, IndexInfo, Vec<Expr>)> = None;
    for idx in indexes {
        let mut eqs = Vec::new();
        for &ci in &idx.col_indices {
            let col = &meta.info.columns[ci].name;
            let found = usable.iter().find_map(|c| {
                if let Expr::Binary(BinOp::Eq, l, r) = c {
                    for (side, other) in [(l, r), (r, l)] {
                        if is_col_of(side, meta, col) && bound_by(other, outer) {
                            return Some((**other).clone());
                        }
                    }
                }
                None
            });
            match found {
                Some(e) => eqs.push(e),
                None => break,
            }
        }
        if !eqs.is_empty() && best.as_ref().is_none_or(|(n, _, _)| eqs.len() > *n) {
            best = Some((eqs.len(), idx.clone(), eqs));
        }
    }
    if let Some((_, index, eq)) = best {
        return Access::IndexEq { index, eq };
    }
    // 3. rowid / index ranges (including BETWEEN)
    let mut rowid_lo = None;
    let mut rowid_hi = None;
    for c in &usable {
        match c {
            Expr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) => {
                for (col, other, flipped) in [(l, r, false), (r, l, true)] {
                    if is_rowid_col(col, meta) && bound_by(other, outer) {
                        let effective_gt = matches!(op, BinOp::Gt | BinOp::Ge) != flipped;
                        if effective_gt {
                            rowid_lo = Some((**other).clone());
                        } else {
                            rowid_hi = Some((**other).clone());
                        }
                    }
                }
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated: false,
            } if is_rowid_col(expr, meta) && bound_by(lo, outer) && bound_by(hi, outer) => {
                rowid_lo = Some((**lo).clone());
                rowid_hi = Some((**hi).clone());
            }
            _ => {}
        }
    }
    if rowid_lo.is_some() || rowid_hi.is_some() {
        return Access::RowidRange {
            lo: rowid_lo,
            hi: rowid_hi,
        };
    }
    for idx in indexes {
        let first_col = &meta.info.columns[idx.col_indices[0]].name;
        let mut lo = None;
        let mut hi = None;
        for c in &usable {
            match c {
                Expr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) => {
                    for (col, other, flipped) in [(l, r, false), (r, l, true)] {
                        if is_col_of(col, meta, first_col) && bound_by(other, outer) {
                            let effective_gt = matches!(op, BinOp::Gt | BinOp::Ge) != flipped;
                            if effective_gt {
                                lo = Some((**other).clone());
                            } else {
                                hi = Some((**other).clone());
                            }
                        }
                    }
                }
                Expr::Between {
                    expr,
                    lo: l,
                    hi: h,
                    negated: false,
                } if is_col_of(expr, meta, first_col)
                    && bound_by(l, outer)
                    && bound_by(h, outer) =>
                {
                    lo = Some((**l).clone());
                    hi = Some((**h).clone());
                }
                _ => {}
            }
        }
        if lo.is_some() || hi.is_some() {
            return Access::IndexRange {
                index: idx.clone(),
                lo,
                hi,
            };
        }
    }
    Access::FullScan
}

// ---------------------------------------------------------------------------
// Row production
// ---------------------------------------------------------------------------

fn fetch_row(
    db: &mut Database,
    sys: &mut System,
    info: &TableInfo,
    rowid: i64,
) -> Result<Option<Vec<SqlValue>>> {
    let Some(value) = btree::get(sys, &mut db.pager, info.root, &encode_rowid(rowid))? else {
        return Ok(None);
    };
    sys.charge(ROW_DECODE_COST);
    Ok(Some(crate::db::pad_row(info, decode_record(&value)?)))
}

/// Produces `(rowid, row)` pairs for one table access under the given
/// outer environment.
fn produce_rows(
    db: &mut Database,
    sys: &mut System,
    meta: &TableMeta,
    access: &Access,
    env: &Env,
) -> Result<Vec<(i64, Vec<SqlValue>)>> {
    let info = meta.info.clone();
    let mut out = Vec::new();
    match access {
        Access::FullScan => {
            let mut cur = btree::Cursor::seek(sys, &mut db.pager, info.root, None)?;
            while let Some((key, value)) = cur.next(sys, &mut db.pager)? {
                sys.charge(ROW_DECODE_COST);
                out.push((
                    decode_rowid(&key)?,
                    crate::db::pad_row(&info, decode_record(&value)?),
                ));
            }
        }
        Access::RowidEq(e) => {
            let v = eval(sys, e, env, None)?;
            if let Some(rowid) = v.as_i64() {
                if let Some(row) = fetch_row(db, sys, &info, rowid)? {
                    out.push((rowid, row));
                }
            }
        }
        Access::RowidRange { lo, hi } => {
            let lo_id = match lo {
                Some(e) => eval(sys, e, env, None)?.as_i64(),
                None => None,
            };
            let hi_id = match hi {
                Some(e) => eval(sys, e, env, None)?.as_i64(),
                None => None,
            };
            let start = lo_id.map(encode_rowid);
            let mut cur = btree::Cursor::seek(
                sys,
                &mut db.pager,
                info.root,
                start.as_ref().map(|s| s.as_slice()),
            )?;
            while let Some((key, value)) = cur.next(sys, &mut db.pager)? {
                let rowid = decode_rowid(&key)?;
                if hi_id.is_some_and(|h| rowid > h) {
                    break;
                }
                sys.charge(ROW_DECODE_COST);
                out.push((rowid, crate::db::pad_row(&info, decode_record(&value)?)));
            }
        }
        Access::IndexEq { index, eq } => {
            let mut vals = Vec::with_capacity(eq.len());
            for e in eq {
                vals.push(eval(sys, e, env, None)?);
            }
            let prefix = encode_index_key(&vals, None);
            let mut cur = btree::Cursor::seek(sys, &mut db.pager, index.root, Some(&prefix))?;
            let mut rowids = Vec::new();
            while let Some((key, _)) = cur.next(sys, &mut db.pager)? {
                if !key.starts_with(&prefix) {
                    break;
                }
                rowids.push(crate::record::index_key_rowid(&key)?);
            }
            for rowid in rowids {
                if let Some(row) = fetch_row(db, sys, &info, rowid)? {
                    out.push((rowid, row));
                }
            }
        }
        Access::IndexRange { index, lo, hi } => {
            let lo_key = match lo {
                Some(e) => {
                    let v = eval(sys, e, env, None)?;
                    Some(encode_index_key(std::slice::from_ref(&v), None))
                }
                None => None,
            };
            let hi_stop = match hi {
                Some(e) => {
                    let v = eval(sys, e, env, None)?;
                    let mut k = encode_index_key(std::slice::from_ref(&v), None);
                    k.push(0xFF); // all equal-value keys sort below this
                    Some(k)
                }
                None => None,
            };
            let mut cur = btree::Cursor::seek(sys, &mut db.pager, index.root, lo_key.as_deref())?;
            let mut rowids = Vec::new();
            while let Some((key, _)) = cur.next(sys, &mut db.pager)? {
                if hi_stop
                    .as_ref()
                    .is_some_and(|h| key.as_slice() >= h.as_slice())
                {
                    break;
                }
                rowids.push(crate::record::index_key_rowid(&key)?);
            }
            for rowid in rowids {
                if let Some(row) = fetch_row(db, sys, &info, rowid)? {
                    out.push((rowid, row));
                }
            }
        }
    }
    Ok(out)
}

fn binding_for(meta: &TableMeta, rowid: i64, row: Vec<SqlValue>) -> Binding {
    Binding {
        alias: meta.alias.clone(),
        columns: meta.info.columns.iter().map(|c| c.name.clone()).collect(),
        rowid_name: meta
            .info
            .rowid_alias
            .map(|i| meta.info.columns[i].name.clone()),
        row,
        rowid,
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum AggState {
    Count(u64),
    Sum {
        total: f64,
        ints: i64,
        all_int: bool,
        seen: bool,
    },
    Min(Option<SqlValue>),
    Max(Option<SqlValue>),
    Avg {
        total: f64,
        n: u64,
    },
}

impl AggState {
    fn new(name: &str) -> AggState {
        match name {
            "count" => AggState::Count(0),
            "sum" | "total" => AggState::Sum {
                total: 0.0,
                ints: 0,
                all_int: true,
                seen: false,
            },
            "min" => AggState::Min(None),
            "max" => AggState::Max(None),
            "avg" => AggState::Avg { total: 0.0, n: 0 },
            _ => unreachable!("checked by is_aggregate"),
        }
    }

    fn feed(&mut self, v: Option<&SqlValue>) {
        match self {
            AggState::Count(n) => {
                if v.is_none_or(|v| !v.is_null()) {
                    *n += 1;
                }
            }
            AggState::Sum {
                total,
                ints,
                all_int,
                seen,
            } => {
                if let Some(v) = v {
                    match v {
                        SqlValue::Integer(i) => {
                            *ints = ints.wrapping_add(*i);
                            *total += *i as f64;
                            *seen = true;
                        }
                        SqlValue::Real(r) => {
                            *total += r;
                            *all_int = false;
                            *seen = true;
                        }
                        SqlValue::Null => {}
                        other => {
                            *total += numeric_of(other).unwrap_or(0.0);
                            *all_int = false;
                            *seen = true;
                        }
                    }
                }
            }
            AggState::Min(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Max(best) => {
                if let Some(v) = v {
                    if !v.is_null()
                        && best
                            .as_ref()
                            .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Greater)
                    {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Avg { total, n } => {
                if let Some(v) = v {
                    if let Some(x) = v.as_f64() {
                        *total += x;
                        *n += 1;
                    }
                }
            }
        }
    }

    fn finish(&self, name: &str) -> SqlValue {
        match self {
            AggState::Count(n) => SqlValue::Integer(*n as i64),
            AggState::Sum {
                total,
                ints,
                all_int,
                seen,
            } => {
                if !seen {
                    if name == "total" {
                        SqlValue::Real(0.0)
                    } else {
                        SqlValue::Null
                    }
                } else if *all_int && name == "sum" {
                    SqlValue::Integer(*ints)
                } else {
                    SqlValue::Real(*total)
                }
            }
            AggState::Min(b) | AggState::Max(b) => b.clone().unwrap_or(SqlValue::Null),
            AggState::Avg { total, n } => {
                if *n == 0 {
                    SqlValue::Null
                } else {
                    SqlValue::Real(total / *n as f64)
                }
            }
        }
    }
}

fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::FnCall { name, args, star } if is_aggregate_call(name, args, *star) => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::FnCall { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Unary(_, e) | Expr::IsNull { expr: e, .. } => collect_aggregates(e, out),
        Expr::Binary(_, l, r) => {
            collect_aggregates(l, out);
            collect_aggregates(r, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        Expr::Between { expr, lo, hi, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(lo, out);
            collect_aggregates(hi, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Lit(_) | Expr::Column { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

/// Executes a SELECT statement.
pub(crate) fn run_select(
    db: &mut Database,
    sys: &mut System,
    sel: &SelectStmt,
) -> Result<QueryResult> {
    // Resolve FROM tables.
    let mut metas: Vec<TableMeta> = Vec::new();
    for tref in &sel.from {
        let info = db.table(&tref.table)?.clone();
        metas.push(TableMeta {
            alias: tref.alias.clone().unwrap_or_else(|| tref.table.clone()),
            info,
        });
    }
    // Expand select items.
    let mut items: Vec<(Expr, String)> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Star => {
                if metas.is_empty() {
                    return Err(SqlError::Misuse("SELECT * without FROM".into()));
                }
                for m in &metas {
                    for c in &m.info.columns {
                        items.push((
                            Expr::Column {
                                table: Some(m.alias.clone()),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                    }
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => format!("{other:?}").chars().take(24).collect(),
                });
                items.push((expr.clone(), name));
            }
        }
    }
    let columns: Vec<String> = items.iter().map(|(_, n)| n.clone()).collect();

    // Validate all column references up front (so `SELECT nope FROM t`
    // errors even on an empty table, like SQLite's prepare step).
    {
        let all: Vec<&TableMeta> = metas.iter().collect();
        let mut exprs: Vec<&Expr> = items.iter().map(|(e, _)| e).collect();
        if let Some(w) = &sel.where_ {
            exprs.push(w);
        }
        exprs.extend(sel.group_by.iter());
        exprs.extend(sel.having.iter());
        exprs.extend(sel.order_by.iter().map(|(e, _)| e));
        for e in exprs {
            let mut refs = Vec::new();
            column_refs(e, &mut refs);
            for (tbl, name) in refs {
                let probe = Expr::Column {
                    table: tbl.clone(),
                    name: name.clone(),
                };
                if !bound_by(&probe, &all) {
                    return Err(SqlError::NoSuchColumn(match tbl {
                        Some(t) => format!("{t}.{name}"),
                        None => name,
                    }));
                }
            }
        }
    }

    // Conjuncts & aggregation setup.
    let mut conjuncts = Vec::new();
    if let Some(w) = &sel.where_ {
        split_conjuncts(w, &mut conjuncts);
    }
    let mut agg_exprs = Vec::new();
    for (e, _) in &items {
        collect_aggregates(e, &mut agg_exprs);
    }
    for (e, _) in &sel.order_by {
        collect_aggregates(e, &mut agg_exprs);
    }
    if let Some(h) = &sel.having {
        collect_aggregates(h, &mut agg_exprs);
    }
    let aggregate_mode = !agg_exprs.is_empty() || !sel.group_by.is_empty();
    if sel.having.is_some() && !aggregate_mode {
        return Err(SqlError::Misuse(
            "HAVING requires GROUP BY or aggregates".into(),
        ));
    }

    // Row collection via recursive nested-loop join with index probes.
    let mut rows_out: Vec<Vec<SqlValue>> = Vec::new(); // plain mode
    let mut groups: HashMap<Vec<u8>, (Vec<AggState>, Env)> = HashMap::new(); // agg mode
    let mut group_order: Vec<Vec<u8>> = Vec::new();

    // each conjunct is applied at the earliest depth where it is bound
    let depth_of = |c: &Expr, metas: &[TableMeta]| -> usize {
        for d in 0..=metas.len() {
            let bound: Vec<&TableMeta> = metas[..d].iter().collect();
            if bound_by(c, &bound) {
                return d;
            }
        }
        metas.len()
    };
    let conjunct_depths: Vec<usize> = conjuncts.iter().map(|c| depth_of(c, &metas)).collect();

    struct Walk<'a> {
        metas: &'a [TableMeta],
        conjuncts: &'a [Expr],
        conjunct_depths: &'a [usize],
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        w: &Walk,
        db: &mut Database,
        sys: &mut System,
        depth: usize,
        env: &mut Env,
        visit: &mut dyn FnMut(&mut Database, &mut System, &Env) -> Result<()>,
    ) -> Result<()> {
        if depth == w.metas.len() {
            return visit(db, sys, env);
        }
        let meta = &w.metas[depth];
        let outer: Vec<&TableMeta> = w.metas[..depth].iter().collect();
        let this_conjuncts: Vec<Expr> = w
            .conjuncts
            .iter()
            .zip(w.conjunct_depths)
            .filter(|(_, &d)| d == depth + 1)
            .map(|(c, _)| c.clone())
            .collect();
        let indexes = db.indexes_of(&meta.info.name);
        let access = choose_access(meta, &indexes, &this_conjuncts, &outer);
        let rows = produce_rows(db, sys, meta, &access, env)?;
        for (rowid, row) in rows {
            env.bindings.push(binding_for(meta, rowid, row));
            let mut keep = true;
            for c in &this_conjuncts {
                if eval(sys, c, env, None)?.truthy() != Some(true) {
                    keep = false;
                    break;
                }
            }
            if keep {
                descend(w, db, sys, depth + 1, env, visit)?;
            }
            env.bindings.pop();
        }
        Ok(())
    }

    let walk = Walk {
        metas: &metas,
        conjuncts: &conjuncts,
        conjunct_depths: &conjunct_depths,
    };
    let mut env = Env::default();

    if aggregate_mode {
        let group_by = sel.group_by.clone();
        let agg_list = agg_exprs.clone();
        descend(&walk, db, sys, 0, &mut env, &mut |_db, sys, env| {
            let mut key_vals = Vec::with_capacity(group_by.len());
            for g in &group_by {
                key_vals.push(eval(sys, g, env, None)?);
            }
            let key = encode_index_key(&key_vals, None);
            if !groups.contains_key(&key) {
                let states = agg_list
                    .iter()
                    .map(|e| {
                        let Expr::FnCall { name, .. } = e else {
                            unreachable!()
                        };
                        AggState::new(name)
                    })
                    .collect();
                // snapshot a representative row environment for
                // non-aggregate expressions
                let snapshot = Env {
                    bindings: env.bindings.clone(),
                };
                groups.insert(key.clone(), (states, snapshot));
                group_order.push(key.clone());
            }
            let (states, _) = groups.get_mut(&key).expect("just inserted");
            // compute args first (immutable borrow of groups ends)
            let mut feeds: Vec<Option<SqlValue>> = Vec::with_capacity(agg_list.len());
            for e in &agg_list {
                let Expr::FnCall { args, star, .. } = e else {
                    unreachable!()
                };
                if *star {
                    feeds.push(None);
                } else {
                    feeds.push(Some(eval(sys, &args[0], env, None)?));
                }
            }
            for (s, f) in states.iter_mut().zip(&feeds) {
                s.feed(f.as_ref());
            }
            Ok(())
        })?;

        // Zero-row aggregate without GROUP BY still yields one row.
        if groups.is_empty() && sel.group_by.is_empty() {
            let states: Vec<AggState> = agg_exprs
                .iter()
                .map(|e| {
                    let Expr::FnCall { name, .. } = e else {
                        unreachable!()
                    };
                    AggState::new(name)
                })
                .collect();
            groups.insert(Vec::new(), (states, Env::default()));
            group_order.push(Vec::new());
        }

        for key in &group_order {
            let (states, snapshot) = &groups[key];
            let resolved: Vec<(Expr, SqlValue)> = agg_exprs
                .iter()
                .zip(states)
                .map(|(e, s)| {
                    let Expr::FnCall { name, .. } = e else {
                        unreachable!()
                    };
                    (e.clone(), s.finish(name))
                })
                .collect();
            let resolver = |e: &Expr| -> Option<SqlValue> {
                resolved
                    .iter()
                    .find(|(k, _)| k == e)
                    .map(|(_, v)| v.clone())
            };
            if let Some(h) = &sel.having {
                if eval(sys, h, snapshot, Some(&resolver))?.truthy() != Some(true) {
                    continue;
                }
            }
            let mut row = Vec::with_capacity(items.len());
            for (e, _) in &items {
                row.push(eval(sys, e, snapshot, Some(&resolver))?);
            }
            // order-by keys appended for later sorting
            for (e, _) in &sel.order_by {
                row.push(eval(sys, e, snapshot, Some(&resolver))?);
            }
            rows_out.push(row);
        }
    } else {
        let items_ref = &items;
        let order_ref = &sel.order_by;
        descend(&walk, db, sys, 0, &mut env, &mut |_db, sys, env| {
            let mut row = Vec::with_capacity(items_ref.len() + order_ref.len());
            for (e, _) in items_ref {
                row.push(eval(sys, e, env, None)?);
            }
            for (e, _) in order_ref {
                row.push(eval(sys, e, env, None)?);
            }
            rows_out.push(row);
            Ok(())
        })?;
    }

    // ORDER BY on the appended sort keys.
    let n_items = items.len();
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|(_, d)| *d).collect();
        rows_out.sort_by(|a, b| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = a[n_items + i].total_cmp(&b[n_items + i]);
                if ord != std::cmp::Ordering::Equal {
                    return if *desc { ord.reverse() } else { ord };
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    let mut rows: Vec<Vec<SqlValue>> = rows_out
        .into_iter()
        .map(|mut r| {
            r.truncate(n_items);
            r
        })
        .collect();

    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(encode_index_key(r, None)));
    }
    let offset = sel.offset.unwrap_or(0) as usize;
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = sel.limit {
        rows.truncate(limit as usize);
    }
    Ok(QueryResult {
        columns,
        rows,
        rows_affected: 0,
    })
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE
// ---------------------------------------------------------------------------

fn matching_rows(
    db: &mut Database,
    sys: &mut System,
    table: &str,
    where_: Option<&Expr>,
) -> Result<Vec<(i64, Vec<SqlValue>)>> {
    let info = db.table(table)?.clone();
    let meta = TableMeta {
        alias: info.name.clone(),
        info,
    };
    let mut conjuncts = Vec::new();
    if let Some(w) = where_ {
        split_conjuncts(w, &mut conjuncts);
    }
    let indexes = db.indexes_of(table);
    let access = choose_access(&meta, &indexes, &conjuncts, &[]);
    let env = Env::default();
    let candidates = produce_rows(db, sys, &meta, &access, &env)?;
    let mut out = Vec::new();
    for (rowid, row) in candidates {
        let mut env = Env::default();
        env.bindings.push(binding_for(&meta, rowid, row.clone()));
        let keep = match where_ {
            Some(w) => eval(sys, w, &env, None)?.truthy() == Some(true),
            None => true,
        };
        if keep {
            out.push((rowid, row));
        }
    }
    Ok(out)
}

/// Executes UPDATE.
pub(crate) fn run_update(
    db: &mut Database,
    sys: &mut System,
    table: &str,
    sets: &[(String, Expr)],
    where_: Option<&Expr>,
) -> Result<QueryResult> {
    let info = db.table(table)?.clone();
    let set_targets: Vec<usize> = sets
        .iter()
        .map(|(c, _)| {
            info.columns
                .iter()
                .position(|ci| ci.name.eq_ignore_ascii_case(c))
                .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
        })
        .collect::<Result<_>>()?;
    let victims = matching_rows(db, sys, table, where_)?;
    let meta = TableMeta {
        alias: info.name.clone(),
        info: info.clone(),
    };
    let mut affected = 0u64;
    for (rowid, row) in victims {
        let mut env = Env::default();
        env.bindings.push(binding_for(&meta, rowid, row.clone()));
        let mut new_row = row.clone();
        for ((_, expr), &target) in sets.iter().zip(&set_targets) {
            let v = eval(sys, expr, &env, None)?;
            new_row[target] = info.columns[target].affinity.apply(v);
        }
        db.delete_row(sys, table, rowid)?;
        // Preserve the rowid unless the INTEGER PRIMARY KEY was updated.
        if let Some(pk) = info.rowid_alias {
            if new_row[pk].is_null() {
                new_row[pk] = SqlValue::Integer(rowid);
            }
        }
        match db.insert_row(sys, table, new_row) {
            Ok(_) => {}
            Err(e) => {
                // restore the original row before propagating (keeps the
                // table consistent even inside explicit transactions)
                db.insert_row(sys, table, row)?;
                return Err(e);
            }
        }
        affected += 1;
    }
    Ok(QueryResult {
        rows_affected: affected,
        ..Default::default()
    })
}

/// Executes DELETE.
pub(crate) fn run_delete(
    db: &mut Database,
    sys: &mut System,
    table: &str,
    where_: Option<&Expr>,
) -> Result<QueryResult> {
    let victims = matching_rows(db, sys, table, where_)?;
    let mut affected = 0u64;
    for (rowid, _) in victims {
        if db.delete_row(sys, table, rowid)? {
            affected += 1;
        }
    }
    Ok(QueryResult {
        rows_affected: affected,
        ..Default::default()
    })
}

//! Storage abstraction: the engine's door to the OS.
//!
//! The database engine talks to files through [`StorageFile`] /
//! [`StorageEnv`]. Two environments exist:
//!
//! * [`HostEnv`] — plain in-process byte vectors; used by engine unit
//!   tests that do not exercise isolation.
//! * [`CubicleEnv`] — the real thing: every operation is a cross-cubicle
//!   call into `VFSCORE`/`RAMFS` through a [`VfsPort`], with per-call
//!   window management. This is the paper's "SQLite port" (620 SLOC of
//!   window management, Table 2).

use crate::error::{Result, SqlError};
use cubicle_core::System;
use cubicle_mpk::VAddr;
use cubicle_vfs::{flags, VfsPort};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A random-access file.
pub trait StorageFile {
    /// Reads at `off` into `buf`; returns bytes read (0 at EOF).
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn pread(&mut self, sys: &mut System, off: u64, buf: &mut [u8]) -> Result<usize>;

    /// Writes `data` at `off`; returns bytes written.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn pwrite(&mut self, sys: &mut System, off: u64, data: &[u8]) -> Result<usize>;

    /// Current file size.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn size(&mut self, sys: &mut System) -> Result<u64>;

    /// Truncates (or extends, zero-filled) the file.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn truncate(&mut self, sys: &mut System, len: u64) -> Result<()>;

    /// Durably flushes the file.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn sync(&mut self, sys: &mut System) -> Result<()>;

    /// Releases the handle (file descriptors, staging buffers). The
    /// default is a no-op for handle-less backends.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn close(&mut self, _sys: &mut System) -> Result<()> {
        Ok(())
    }
}

/// A file namespace (open / unlink / exists).
pub trait StorageEnv {
    /// Opens (creating if necessary) a file.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn open(&mut self, sys: &mut System, path: &str) -> Result<Box<dyn StorageFile>>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn unlink(&mut self, sys: &mut System, path: &str) -> Result<()>;

    /// Does the file exist?
    ///
    /// # Errors
    ///
    /// [`SqlError::Io`] with a negative errno.
    fn exists(&mut self, sys: &mut System, path: &str) -> Result<bool>;
}

// ---------------------------------------------------------------------------
// Host-backed environment (unit tests)
// ---------------------------------------------------------------------------

type SharedBytes = Rc<RefCell<Vec<u8>>>;

/// In-process storage environment for engine-only tests.
#[derive(Clone, Debug, Default)]
pub struct HostEnv {
    files: Rc<RefCell<HashMap<String, SharedBytes>>>,
}

impl HostEnv {
    /// Creates an empty namespace.
    pub fn new() -> HostEnv {
        HostEnv::default()
    }
}

struct HostFile {
    data: SharedBytes,
}

impl StorageFile for HostFile {
    fn pread(&mut self, _sys: &mut System, off: u64, buf: &mut [u8]) -> Result<usize> {
        let data = self.data.borrow();
        let off = off as usize;
        if off >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Ok(n)
    }

    fn pwrite(&mut self, _sys: &mut System, off: u64, data_in: &[u8]) -> Result<usize> {
        let mut data = self.data.borrow_mut();
        let end = off as usize + data_in.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[off as usize..end].copy_from_slice(data_in);
        Ok(data_in.len())
    }

    fn size(&mut self, _sys: &mut System) -> Result<u64> {
        Ok(self.data.borrow().len() as u64)
    }

    fn truncate(&mut self, _sys: &mut System, len: u64) -> Result<()> {
        self.data.borrow_mut().resize(len as usize, 0);
        Ok(())
    }

    fn sync(&mut self, _sys: &mut System) -> Result<()> {
        Ok(())
    }
}

impl StorageEnv for HostEnv {
    fn open(&mut self, _sys: &mut System, path: &str) -> Result<Box<dyn StorageFile>> {
        let data = self
            .files
            .borrow_mut()
            .entry(path.to_string())
            .or_insert_with(|| Rc::new(RefCell::new(Vec::new())))
            .clone();
        Ok(Box::new(HostFile { data }))
    }

    fn unlink(&mut self, _sys: &mut System, path: &str) -> Result<()> {
        self.files.borrow_mut().remove(path);
        Ok(())
    }

    fn exists(&mut self, _sys: &mut System, path: &str) -> Result<bool> {
        Ok(self.files.borrow().contains_key(path))
    }
}

// ---------------------------------------------------------------------------
// Cubicle-backed environment (the real port)
// ---------------------------------------------------------------------------

/// Storage environment that routes through the CubicleOS file stack.
#[derive(Clone, Debug)]
pub struct CubicleEnv {
    port: VfsPort,
}

impl CubicleEnv {
    /// Wraps a [`VfsPort`] created in the application cubicle.
    pub fn new(port: VfsPort) -> CubicleEnv {
        CubicleEnv { port }
    }
}

/// Staging buffer size for file I/O (two DB pages).
const STAGING: usize = 8192;

/// Staging slots used by the batched (vectored) read path: one backend
/// dispatch covers up to this many [`STAGING`]-sized segments.
const VEC_SLOTS: usize = 4;

struct CubicleFile {
    port: VfsPort,
    fd: i64,
    staging: VAddr,
    /// Lazily-allocated [`VEC_SLOTS`]`× STAGING` staging area for the
    /// batched path (only materialises when batching is enabled, so the
    /// legacy footprint — and its simulated cycle cost — is unchanged).
    vec_staging: Option<VAddr>,
}

fn io_err<T>(code: i64) -> Result<T> {
    Err(SqlError::Io(code))
}

impl CubicleFile {
    fn vec_staging(&mut self, sys: &mut System) -> Result<VAddr> {
        if let Some(base) = self.vec_staging {
            return Ok(base);
        }
        let base = sys.heap_alloc(VEC_SLOTS * STAGING, 4096)?;
        self.vec_staging = Some(base);
        Ok(base)
    }

    /// Multi-page fetch under cross-call batching: up to [`VEC_SLOTS`]
    /// staging segments travel to the backend in one vectored VFS call
    /// (one crossing instead of one per [`STAGING`] chunk).
    fn pread_batched(&mut self, sys: &mut System, off: u64, buf: &mut [u8]) -> Result<usize> {
        let base = self.vec_staging(sys)?;
        let mut done = 0usize;
        while done < buf.len() {
            let round = (buf.len() - done).min(VEC_SLOTS * STAGING);
            let mut segs: Vec<(VAddr, usize, u64)> = Vec::new();
            let mut o = 0usize;
            while o < round {
                let c = (round - o).min(STAGING);
                segs.push((base + segs.len() * STAGING, c, off + (done + o) as u64));
                o += c;
            }
            let n = self.port.pread_vec(sys, self.fd, &segs)?;
            if n < 0 {
                return io_err(n);
            }
            if n == 0 {
                break;
            }
            let mut copied = 0usize;
            for &(addr, c, _) in &segs {
                if copied >= n as usize {
                    break;
                }
                let take = (n as usize - copied).min(c);
                sys.read(addr, &mut buf[done + copied..done + copied + take])?;
                copied += take;
            }
            done += n as usize;
            if (n as usize) < round {
                break;
            }
        }
        Ok(done)
    }
}

impl StorageFile for CubicleFile {
    fn pread(&mut self, sys: &mut System, off: u64, buf: &mut [u8]) -> Result<usize> {
        if sys.batching_enabled() && buf.len() > STAGING {
            return self.pread_batched(sys, off, buf);
        }
        let mut done = 0;
        while done < buf.len() {
            let chunk = (buf.len() - done).min(STAGING);
            let n = self
                .port
                .pread(sys, self.fd, self.staging, chunk, off + done as u64)?;
            if n < 0 {
                return io_err(n);
            }
            if n == 0 {
                break;
            }
            sys.read(self.staging, &mut buf[done..done + n as usize])?;
            done += n as usize;
            if (n as usize) < chunk {
                break;
            }
        }
        Ok(done)
    }

    fn pwrite(&mut self, sys: &mut System, off: u64, data: &[u8]) -> Result<usize> {
        let mut done = 0;
        while done < data.len() {
            let chunk = (data.len() - done).min(STAGING);
            sys.write(self.staging, &data[done..done + chunk])?;
            let n = self
                .port
                .pwrite(sys, self.fd, self.staging, chunk, off + done as u64)?;
            if n < 0 {
                return io_err(n);
            }
            done += n as usize;
        }
        Ok(done)
    }

    fn size(&mut self, sys: &mut System) -> Result<u64> {
        match self.port.fstat(sys, self.fd)? {
            Ok(stat) => Ok(stat.size),
            Err(e) => io_err(e),
        }
    }

    fn truncate(&mut self, sys: &mut System, len: u64) -> Result<()> {
        let r = self.port.ftruncate(sys, self.fd, len)?;
        if r < 0 {
            return io_err(r);
        }
        Ok(())
    }

    fn sync(&mut self, sys: &mut System) -> Result<()> {
        let r = self.port.fsync(sys, self.fd)?;
        if r < 0 {
            return io_err(r);
        }
        Ok(())
    }

    fn close(&mut self, sys: &mut System) -> Result<()> {
        if self.fd >= 0 {
            let r = self.port.close(sys, self.fd)?;
            self.fd = -1;
            sys.heap_free(self.staging)?;
            if let Some(base) = self.vec_staging.take() {
                sys.heap_free(base)?;
            }
            if r < 0 {
                return io_err(r);
            }
        }
        Ok(())
    }
}

impl StorageEnv for CubicleEnv {
    fn open(&mut self, sys: &mut System, path: &str) -> Result<Box<dyn StorageFile>> {
        let fd = self.port.open(sys, path, flags::O_CREAT | flags::O_RDWR)?;
        if fd < 0 {
            return io_err(fd);
        }
        let staging = sys.heap_alloc(STAGING, 4096)?;
        Ok(Box::new(CubicleFile {
            port: self.port.clone(),
            fd,
            staging,
            vec_staging: None,
        }))
    }

    fn unlink(&mut self, sys: &mut System, path: &str) -> Result<()> {
        let r = self.port.unlink(sys, path)?;
        if r < 0 && r != cubicle_core::Errno::Enoent.neg() {
            return io_err(r);
        }
        Ok(())
    }

    fn exists(&mut self, sys: &mut System, path: &str) -> Result<bool> {
        match self.port.stat(sys, path)? {
            Ok(_) => Ok(true),
            Err(e) if e == cubicle_core::Errno::Enoent.neg() => Ok(false),
            Err(e) => io_err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::IsolationMode;

    fn sys() -> System {
        System::new(IsolationMode::Unikraft)
    }

    #[test]
    fn host_file_round_trip() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let mut f = env.open(&mut sys, "/db").unwrap();
        assert_eq!(f.size(&mut sys).unwrap(), 0);
        f.pwrite(&mut sys, 10, b"hello").unwrap();
        assert_eq!(f.size(&mut sys).unwrap(), 15);
        let mut buf = [0u8; 5];
        assert_eq!(f.pread(&mut sys, 10, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        // sparse region reads back zeroed
        let mut z = [9u8; 4];
        f.pread(&mut sys, 0, &mut z).unwrap();
        assert_eq!(z, [0u8; 4]);
    }

    #[test]
    fn host_eof_semantics() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let mut f = env.open(&mut sys, "/db").unwrap();
        f.pwrite(&mut sys, 0, b"abc").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(f.pread(&mut sys, 0, &mut buf).unwrap(), 3);
        assert_eq!(f.pread(&mut sys, 5, &mut buf).unwrap(), 0);
    }

    #[test]
    fn host_unlink_and_exists() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        env.open(&mut sys, "/a").unwrap();
        assert!(env.exists(&mut sys, "/a").unwrap());
        env.unlink(&mut sys, "/a").unwrap();
        assert!(!env.exists(&mut sys, "/a").unwrap());
    }

    #[test]
    fn host_truncate() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let mut f = env.open(&mut sys, "/t").unwrap();
        f.pwrite(&mut sys, 0, &[1u8; 100]).unwrap();
        f.truncate(&mut sys, 10).unwrap();
        assert_eq!(f.size(&mut sys).unwrap(), 10);
        f.truncate(&mut sys, 20).unwrap();
        let mut buf = [9u8; 20];
        f.pread(&mut sys, 0, &mut buf).unwrap();
        assert_eq!(&buf[10..], &[0u8; 10]);
    }

    #[test]
    fn host_handles_share_contents() {
        let mut sys = sys();
        let mut env = HostEnv::new();
        let mut f1 = env.open(&mut sys, "/x").unwrap();
        let mut f2 = env.open(&mut sys, "/x").unwrap();
        f1.pwrite(&mut sys, 0, b"shared").unwrap();
        let mut buf = [0u8; 6];
        f2.pread(&mut sys, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"shared");
    }
}

//! The `Database` object: schema catalog, DDL, DML entry points,
//! transaction control.

use crate::ast::{ColumnDef, Stmt};
use crate::btree;
use crate::error::{Result, SqlError};
use crate::exec;
use crate::pager::{JournalMode, Pager, DEFAULT_CACHE_PAGES};
use crate::parser::parse_all;
use crate::record::{decode_record, encode_index_key, encode_record, encode_rowid};
use crate::storage::StorageEnv;
use crate::value::{Affinity, SqlValue};
use cubicle_core::System;
use std::collections::HashMap;

/// Result of executing one statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (SELECT only).
    pub columns: Vec<String>,
    /// Result rows (SELECT only).
    pub rows: Vec<Vec<SqlValue>>,
    /// Rows inserted/updated/deleted.
    pub rows_affected: u64,
}

#[derive(Clone, Debug)]
pub(crate) struct ColumnInfo {
    pub name: String,
    pub affinity: Affinity,
    pub decl_type: String,
    pub not_null: bool,
    pub primary_key: bool,
    pub unique: bool,
    pub default: Option<SqlValue>,
}

#[derive(Clone, Debug)]
pub(crate) struct TableInfo {
    pub name: String,
    pub root: u32,
    pub columns: Vec<ColumnInfo>,
    /// `INTEGER PRIMARY KEY` column index (rowid alias), if any.
    pub rowid_alias: Option<usize>,
    pub next_rowid: Option<i64>,
}

#[derive(Clone, Debug)]
pub(crate) struct IndexInfo {
    pub name: String,
    pub table: String,
    pub col_indices: Vec<usize>,
    pub unique: bool,
    pub root: u32,
}

/// An open database connection.
pub struct Database {
    pub(crate) pager: Pager,
    pub(crate) tables: HashMap<String, TableInfo>,
    pub(crate) indexes: HashMap<String, IndexInfo>,
    explicit_txn: bool,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.len())
            .field("indexes", &self.indexes.len())
            .field("explicit_txn", &self.explicit_txn)
            .finish()
    }
}

fn norm(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Pads a decoded record to the table's current width: columns added by
/// `ALTER TABLE … ADD COLUMN` read as their default on old rows.
pub(crate) fn pad_row(info: &TableInfo, mut row: Vec<SqlValue>) -> Vec<SqlValue> {
    while row.len() < info.columns.len() {
        let c = &info.columns[row.len()];
        row.push(c.default.clone().unwrap_or(SqlValue::Null));
    }
    row
}

impl Database {
    /// Opens (creating or recovering) the database at `path` using the
    /// given storage environment.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn open(sys: &mut System, env: Box<dyn StorageEnv>, path: &str) -> Result<Database> {
        Database::open_with_cache(sys, env, path, DEFAULT_CACHE_PAGES)
    }

    /// [`Database::open`] with an explicit page-cache size.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn open_with_cache(
        sys: &mut System,
        env: Box<dyn StorageEnv>,
        path: &str,
        cache_pages: usize,
    ) -> Result<Database> {
        Database::open_with_mode(sys, env, path, cache_pages, JournalMode::Wal)
    }

    /// [`Database::open`] with an explicit page-cache size and journal
    /// mode ([`JournalMode::Rollback`] is the pre-WAL baseline, kept for
    /// A/B measurement).
    ///
    /// # Errors
    ///
    /// I/O or corruption errors.
    pub fn open_with_mode(
        sys: &mut System,
        env: Box<dyn StorageEnv>,
        path: &str,
        cache_pages: usize,
        mode: JournalMode,
    ) -> Result<Database> {
        let pager = Pager::open_with_mode(sys, env, path, cache_pages, mode)?;
        let mut db = Database {
            pager,
            tables: HashMap::new(),
            indexes: HashMap::new(),
            explicit_txn: false,
        };
        db.load_schema(sys)?;
        Ok(db)
    }

    /// Pager statistics (cache hits/misses, syncs, commits).
    pub fn pager_stats(&self) -> crate::pager::PagerStats {
        self.pager.stats
    }

    /// Sets the group-commit size: how many committed transactions may
    /// share one durable WAL sync (see [`Pager::set_group_commit`]).
    pub fn set_group_commit(&mut self, n: u32) {
        self.pager.set_group_commit(n);
    }

    /// Makes all pending group commits durable now.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn flush(&mut self, sys: &mut System) -> Result<()> {
        self.pager.flush(sys)
    }

    /// Folds the WAL back into the database file (no-op outside WAL
    /// mode). Returns `true` when the log was fully checkpointed.
    ///
    /// # Errors
    ///
    /// [`SqlError::Transaction`] inside an explicit transaction; I/O
    /// errors.
    pub fn checkpoint(&mut self, sys: &mut System) -> Result<bool> {
        self.pager.checkpoint(sys)
    }

    /// Direct access to the pager, for harnesses that need WAL
    /// introspection ([`Pager::wal_end`] etc.) or incremental
    /// checkpoints.
    pub fn pager_mut(&mut self) -> &mut Pager {
        &mut self.pager
    }

    /// Executes a single SQL statement.
    ///
    /// # Errors
    ///
    /// Parse, semantic, constraint, or storage errors. Outside an
    /// explicit transaction the statement is atomic (auto-commit with
    /// rollback on failure).
    pub fn execute(&mut self, sys: &mut System, sql: &str) -> Result<QueryResult> {
        // SQL front-end work (tokenize/parse/prepare): roughly linear in
        // statement length on the paper's testbed.
        sys.charge(2_050 + 2 * sql.len() as u64);
        let mut last = QueryResult::default();
        for stmt in parse_all(sql)? {
            last = self.execute_stmt(sys, stmt)?;
        }
        Ok(last)
    }

    /// Convenience: run a query and return only its rows.
    ///
    /// # Errors
    ///
    /// As [`Database::execute`].
    pub fn query(&mut self, sys: &mut System, sql: &str) -> Result<Vec<Vec<SqlValue>>> {
        Ok(self.execute(sys, sql)?.rows)
    }

    fn execute_stmt(&mut self, sys: &mut System, stmt: Stmt) -> Result<QueryResult> {
        match stmt {
            Stmt::Begin => {
                if self.explicit_txn {
                    return Err(SqlError::Transaction("nested BEGIN".into()));
                }
                self.pager.begin(sys)?;
                self.explicit_txn = true;
                Ok(QueryResult::default())
            }
            Stmt::Commit => {
                if !self.explicit_txn {
                    return Err(SqlError::Transaction("COMMIT outside a transaction".into()));
                }
                self.explicit_txn = false;
                self.pager.commit(sys)?;
                Ok(QueryResult::default())
            }
            Stmt::Rollback => {
                if !self.explicit_txn {
                    return Err(SqlError::Transaction(
                        "ROLLBACK outside a transaction".into(),
                    ));
                }
                self.explicit_txn = false;
                self.pager.rollback(sys)?;
                self.load_schema(sys)?;
                Ok(QueryResult::default())
            }
            Stmt::Select(sel) => exec::run_select(self, sys, &sel),
            // `wal_checkpoint` must not sit inside a transaction of its
            // own making; every other pragma takes the ordinary
            // auto-commit path below.
            Stmt::Pragma(name) if name == "wal_checkpoint" => self.pragma(sys, &name),
            other => {
                // Writes are wrapped in an automatic transaction unless
                // an explicit one is open.
                let auto = !self.explicit_txn;
                if auto {
                    self.pager.begin(sys)?;
                }
                let out = self.execute_write(sys, other);
                match (&out, auto) {
                    (Ok(_), true) => self.pager.commit(sys)?,
                    (Err(_), true) => {
                        self.pager.rollback(sys)?;
                        self.load_schema(sys)?;
                    }
                    _ => {}
                }
                out
            }
        }
    }

    fn execute_write(&mut self, sys: &mut System, stmt: Stmt) -> Result<QueryResult> {
        match stmt {
            Stmt::CreateTable {
                name,
                columns,
                if_not_exists,
            } => self.create_table(sys, &name, &columns, if_not_exists),
            Stmt::CreateIndex {
                name,
                table,
                columns,
                unique,
                if_not_exists,
            } => self.create_index(sys, &name, &table, &columns, unique, if_not_exists),
            Stmt::DropTable { name, if_exists } => self.drop_table(sys, &name, if_exists),
            Stmt::DropIndex { name, if_exists } => self.drop_index(sys, &name, if_exists),
            Stmt::Insert {
                table,
                columns,
                rows,
            } => self.insert_rows(sys, &table, columns.as_deref(), &rows),
            Stmt::Update {
                table,
                sets,
                where_,
            } => exec::run_update(self, sys, &table, &sets, where_.as_ref()),
            Stmt::Delete { table, where_ } => exec::run_delete(self, sys, &table, where_.as_ref()),
            Stmt::AlterRename { table, to } => self.alter_rename(sys, &table, &to),
            Stmt::AlterAddColumn { table, column } => self.alter_add_column(sys, &table, &column),
            Stmt::Pragma(name) => self.pragma(sys, &name),
            Stmt::Select(_) | Stmt::Begin | Stmt::Commit | Stmt::Rollback => {
                unreachable!("handled by execute_stmt")
            }
        }
    }

    // ------------------------------------------------------------------
    // Schema catalog
    // ------------------------------------------------------------------

    fn load_schema(&mut self, sys: &mut System) -> Result<()> {
        self.tables.clear();
        self.indexes.clear();
        let root = self.pager.schema_root();
        if root == 0 {
            return Ok(());
        }
        let mut cur = btree::Cursor::seek(sys, &mut self.pager, root, None)?;
        let mut raw = Vec::new();
        while let Some((_, value)) = cur.next(sys, &mut self.pager)? {
            raw.push(value);
        }
        for value in raw {
            let rec = decode_record(&value)?;
            let kind = match &rec[0] {
                SqlValue::Text(t) => t.clone(),
                _ => return Err(SqlError::Corrupt("catalog kind".into())),
            };
            match kind.as_str() {
                "table" => {
                    let t = decode_table_meta(&rec)?;
                    self.tables.insert(norm(&t.name), t);
                }
                "index" => {
                    let i = decode_index_meta(&rec)?;
                    self.indexes.insert(norm(&i.name), i);
                }
                other => return Err(SqlError::Corrupt(format!("catalog kind `{other}`"))),
            }
        }
        Ok(())
    }

    fn catalog_key(kind: &str, name: &str) -> Vec<u8> {
        encode_index_key(
            &[SqlValue::Text(kind.into()), SqlValue::Text(norm(name))],
            None,
        )
    }

    fn catalog_put(
        &mut self,
        sys: &mut System,
        kind: &str,
        name: &str,
        rec: &[SqlValue],
    ) -> Result<()> {
        let mut root = self.pager.schema_root();
        if root == 0 {
            root = btree::create(sys, &mut self.pager)?;
        }
        let key = Self::catalog_key(kind, name);
        let new_root = btree::insert(sys, &mut self.pager, root, &key, &encode_record(rec))?;
        if new_root != self.pager.schema_root() {
            self.pager.set_schema_root(sys, new_root)?;
        }
        Ok(())
    }

    fn catalog_delete(&mut self, sys: &mut System, kind: &str, name: &str) -> Result<()> {
        let root = self.pager.schema_root();
        if root != 0 {
            btree::delete(sys, &mut self.pager, root, &Self::catalog_key(kind, name))?;
        }
        Ok(())
    }

    pub(crate) fn table(&self, name: &str) -> Result<&TableInfo> {
        self.tables
            .get(&norm(name))
            .ok_or_else(|| SqlError::NoSuchTable(name.into()))
    }

    pub(crate) fn indexes_of(&self, table: &str) -> Vec<IndexInfo> {
        let t = norm(table);
        let mut v: Vec<IndexInfo> = self
            .indexes
            .values()
            .filter(|i| norm(&i.table) == t)
            .cloned()
            .collect();
        // HashMap iteration order is seeded per process; sort so plan
        // selection (and thus the simulated cycle count) is reproducible
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    fn create_table(
        &mut self,
        sys: &mut System,
        name: &str,
        columns: &[ColumnDef],
        if_not_exists: bool,
    ) -> Result<QueryResult> {
        if self.tables.contains_key(&norm(name)) {
            if if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::AlreadyExists(name.into()));
        }
        if columns.is_empty() {
            return Err(SqlError::Misuse("table needs at least one column".into()));
        }
        let mut cols = Vec::with_capacity(columns.len());
        let mut rowid_alias = None;
        for (i, c) in columns.iter().enumerate() {
            let affinity = Affinity::from_decl(&c.decl_type);
            if c.primary_key && affinity == Affinity::Integer && rowid_alias.is_none() {
                rowid_alias = Some(i);
            }
            cols.push(ColumnInfo {
                name: c.name.clone(),
                affinity,
                decl_type: c.decl_type.clone(),
                not_null: c.not_null,
                primary_key: c.primary_key,
                unique: c.unique,
                default: c.default.clone(),
            });
        }
        let root = btree::create(sys, &mut self.pager)?;
        let info = TableInfo {
            name: name.into(),
            root,
            columns: cols,
            rowid_alias,
            next_rowid: Some(1),
        };
        self.catalog_put(sys, "table", name, &encode_table_meta(&info))?;
        self.tables.insert(norm(name), info);
        // UNIQUE columns and non-integer PRIMARY KEYs get automatic
        // unique indexes.
        for (i, c) in columns.iter().enumerate() {
            let needs_index = c.unique || (c.primary_key && rowid_alias != Some(i));
            if needs_index {
                let idx_name = format!("autoindex_{}_{}", norm(name), i + 1);
                self.create_index(
                    sys,
                    &idx_name,
                    name,
                    std::slice::from_ref(&c.name),
                    true,
                    false,
                )?;
            }
        }
        Ok(QueryResult::default())
    }

    fn create_index(
        &mut self,
        sys: &mut System,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
        if_not_exists: bool,
    ) -> Result<QueryResult> {
        if self.indexes.contains_key(&norm(name)) {
            if if_not_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::AlreadyExists(name.into()));
        }
        let tinfo = self.table(table)?.clone();
        let mut col_indices = Vec::with_capacity(columns.len());
        for c in columns {
            let idx = tinfo
                .columns
                .iter()
                .position(|ci| ci.name.eq_ignore_ascii_case(c))
                .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))?;
            col_indices.push(idx);
        }
        let mut root = btree::create(sys, &mut self.pager)?;
        // Backfill from existing rows.
        let mut cur = btree::Cursor::seek(sys, &mut self.pager, tinfo.root, None)?;
        let mut entries = Vec::new();
        while let Some((key, value)) = cur.next(sys, &mut self.pager)? {
            let rowid = crate::record::decode_rowid(&key)?;
            let row = pad_row(&tinfo, decode_record(&value)?);
            let vals: Vec<SqlValue> = col_indices.iter().map(|&i| row[i].clone()).collect();
            entries.push((vals, rowid));
        }
        for (vals, rowid) in entries {
            if unique {
                self.check_unique(sys, root, &vals, &tinfo.name, name)?;
            }
            let key = encode_index_key(&vals, Some(rowid));
            root = btree::insert(sys, &mut self.pager, root, &key, &[])?;
        }
        let info = IndexInfo {
            name: name.into(),
            table: tinfo.name.clone(),
            col_indices,
            unique,
            root,
        };
        self.catalog_put(sys, "index", name, &encode_index_meta_rec(&info))?;
        self.indexes.insert(norm(name), info);
        Ok(QueryResult::default())
    }

    fn drop_table(&mut self, sys: &mut System, name: &str, if_exists: bool) -> Result<QueryResult> {
        let Some(info) = self.tables.remove(&norm(name)) else {
            if if_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::NoSuchTable(name.into()));
        };
        btree::free_tree(sys, &mut self.pager, info.root)?;
        self.catalog_delete(sys, "table", name)?;
        let idxs: Vec<String> = self
            .indexes_of(name)
            .iter()
            .map(|i| i.name.clone())
            .collect();
        for idx in idxs {
            self.drop_index(sys, &idx, true)?;
        }
        Ok(QueryResult::default())
    }

    fn drop_index(&mut self, sys: &mut System, name: &str, if_exists: bool) -> Result<QueryResult> {
        let Some(info) = self.indexes.remove(&norm(name)) else {
            if if_exists {
                return Ok(QueryResult::default());
            }
            return Err(SqlError::NoSuchIndex(name.into()));
        };
        btree::free_tree(sys, &mut self.pager, info.root)?;
        self.catalog_delete(sys, "index", name)?;
        Ok(QueryResult::default())
    }

    // ------------------------------------------------------------------
    // INSERT and index maintenance
    // ------------------------------------------------------------------

    fn insert_rows(
        &mut self,
        sys: &mut System,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<crate::ast::Expr>],
    ) -> Result<QueryResult> {
        let tinfo = self.table(table)?.clone();
        // map provided expression positions → column indices
        let targets: Vec<usize> = match columns {
            Some(cols) => cols
                .iter()
                .map(|c| {
                    tinfo
                        .columns
                        .iter()
                        .position(|ci| ci.name.eq_ignore_ascii_case(c))
                        .ok_or_else(|| SqlError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_>>()?,
            None => (0..tinfo.columns.len()).collect(),
        };
        let mut affected = 0u64;
        for row_exprs in rows {
            if row_exprs.len() != targets.len() {
                return Err(SqlError::Misuse(format!(
                    "{} values for {} columns",
                    row_exprs.len(),
                    targets.len()
                )));
            }
            let mut row: Vec<SqlValue> = tinfo
                .columns
                .iter()
                .map(|c| c.default.clone().unwrap_or(SqlValue::Null))
                .collect();
            for (expr, &target) in row_exprs.iter().zip(&targets) {
                let v = exec::eval_const(self, sys, expr)?;
                row[target] = tinfo.columns[target].affinity.apply(v);
            }
            self.insert_row(sys, table, row)?;
            affected += 1;
        }
        Ok(QueryResult {
            rows_affected: affected,
            ..Default::default()
        })
    }

    /// Inserts one materialised row (used by INSERT and UPDATE).
    pub(crate) fn insert_row(
        &mut self,
        sys: &mut System,
        table: &str,
        mut row: Vec<SqlValue>,
    ) -> Result<i64> {
        let tname = norm(table);
        let tinfo = self.table(table)?.clone();
        // rowid selection
        let rowid = match tinfo.rowid_alias {
            Some(pk) if !row[pk].is_null() => match row[pk] {
                SqlValue::Integer(i) => i,
                _ => {
                    return Err(SqlError::Constraint(format!(
                        "datatype mismatch for INTEGER PRIMARY KEY {}",
                        tinfo.columns[pk].name
                    )))
                }
            },
            _ => self.next_rowid(sys, &tname)?,
        };
        if let Some(pk) = tinfo.rowid_alias {
            row[pk] = SqlValue::Integer(rowid);
        }
        // NOT NULL checks
        for (c, v) in tinfo.columns.iter().zip(&row) {
            if c.not_null && v.is_null() {
                return Err(SqlError::Constraint(format!("NOT NULL column {}", c.name)));
            }
        }
        // PRIMARY KEY (rowid) uniqueness
        let key = encode_rowid(rowid);
        if btree::get(sys, &mut self.pager, tinfo.root, &key)?.is_some() {
            return Err(SqlError::Constraint(format!("duplicate rowid {rowid}")));
        }
        // UNIQUE index checks, then index insertion
        let indexes = self.indexes_of(table);
        for idx in &indexes {
            let vals: Vec<SqlValue> = idx.col_indices.iter().map(|&i| row[i].clone()).collect();
            if idx.unique {
                self.check_unique(sys, idx.root, &vals, table, &idx.name)?;
            }
        }
        let new_root = btree::insert(sys, &mut self.pager, tinfo.root, &key, &encode_record(&row))?;
        self.update_table_root(sys, &tname, new_root)?;
        for idx in &indexes {
            let vals: Vec<SqlValue> = idx.col_indices.iter().map(|&i| row[i].clone()).collect();
            let ikey = encode_index_key(&vals, Some(rowid));
            let iroot = self.indexes[&norm(&idx.name)].root;
            let new_iroot = btree::insert(sys, &mut self.pager, iroot, &ikey, &[])?;
            self.update_index_root(sys, &idx.name, new_iroot)?;
        }
        // advance the cached rowid cursor
        if let Some(t) = self.tables.get_mut(&tname) {
            let next = t.next_rowid.get_or_insert(rowid + 1);
            if *next <= rowid {
                *next = rowid + 1;
            }
        }
        Ok(rowid)
    }

    /// Removes one row (by rowid) and its index entries.
    pub(crate) fn delete_row(&mut self, sys: &mut System, table: &str, rowid: i64) -> Result<bool> {
        let tinfo = self.table(table)?.clone();
        let key = encode_rowid(rowid);
        let Some(value) = btree::get(sys, &mut self.pager, tinfo.root, &key)? else {
            return Ok(false);
        };
        let row = pad_row(&tinfo, decode_record(&value)?);
        btree::delete(sys, &mut self.pager, tinfo.root, &key)?;
        for idx in self.indexes_of(table) {
            let vals: Vec<SqlValue> = idx.col_indices.iter().map(|&i| row[i].clone()).collect();
            let ikey = encode_index_key(&vals, Some(rowid));
            btree::delete(sys, &mut self.pager, idx.root, &ikey)?;
        }
        Ok(true)
    }

    fn check_unique(
        &mut self,
        sys: &mut System,
        index_root: u32,
        vals: &[SqlValue],
        table: &str,
        index: &str,
    ) -> Result<()> {
        // NULLs never collide (SQL semantics).
        if vals.iter().any(SqlValue::is_null) {
            return Ok(());
        }
        let prefix = encode_index_key(vals, None);
        let mut cur = btree::Cursor::seek(sys, &mut self.pager, index_root, Some(&prefix))?;
        if let Some((key, _)) = cur.next(sys, &mut self.pager)? {
            if key.starts_with(&prefix) {
                return Err(SqlError::Constraint(format!(
                    "UNIQUE constraint failed: {table} ({index})"
                )));
            }
        }
        Ok(())
    }

    fn next_rowid(&mut self, sys: &mut System, tname: &str) -> Result<i64> {
        let info = self.tables.get(tname).expect("caller resolved").clone();
        if let Some(n) = info.next_rowid {
            return Ok(n);
        }
        let next = match btree::last_key(sys, &mut self.pager, info.root)? {
            Some(k) => crate::record::decode_rowid(&k)? + 1,
            None => 1,
        };
        if let Some(t) = self.tables.get_mut(tname) {
            t.next_rowid = Some(next);
        }
        Ok(next)
    }

    pub(crate) fn update_table_root(
        &mut self,
        sys: &mut System,
        tname: &str,
        new_root: u32,
    ) -> Result<()> {
        let info = self.tables.get(tname).expect("resolved").clone();
        if info.root == new_root {
            return Ok(());
        }
        let mut info2 = info;
        info2.root = new_root;
        self.catalog_put(
            sys,
            "table",
            &info2.name.clone(),
            &encode_table_meta(&info2),
        )?;
        self.tables.insert(tname.to_string(), info2);
        Ok(())
    }

    fn update_index_root(&mut self, sys: &mut System, name: &str, new_root: u32) -> Result<()> {
        let key = norm(name);
        let info = self.indexes.get(&key).expect("resolved").clone();
        if info.root == new_root {
            return Ok(());
        }
        let mut info2 = info;
        info2.root = new_root;
        self.catalog_put(
            sys,
            "index",
            &info2.name.clone(),
            &encode_index_meta_rec(&info2),
        )?;
        self.indexes.insert(key, info2);
        Ok(())
    }

    // ------------------------------------------------------------------
    // ALTER TABLE
    // ------------------------------------------------------------------

    fn alter_rename(&mut self, sys: &mut System, table: &str, to: &str) -> Result<QueryResult> {
        if self.tables.contains_key(&norm(to)) {
            return Err(SqlError::AlreadyExists(to.into()));
        }
        let Some(mut info) = self.tables.remove(&norm(table)) else {
            return Err(SqlError::NoSuchTable(table.into()));
        };
        self.catalog_delete(sys, "table", table)?;
        info.name = to.to_string();
        self.catalog_put(sys, "table", to, &encode_table_meta(&info))?;
        self.tables.insert(norm(to), info);
        // indexes follow their table
        let renames: Vec<String> = self
            .indexes
            .values()
            .filter(|i| norm(&i.table) == norm(table))
            .map(|i| i.name.clone())
            .collect();
        for idx_name in renames {
            let key = norm(&idx_name);
            if let Some(mut idx) = self.indexes.remove(&key) {
                idx.table = to.to_string();
                self.catalog_put(
                    sys,
                    "index",
                    &idx.name.clone(),
                    &encode_index_meta_rec(&idx),
                )?;
                self.indexes.insert(key, idx);
            }
        }
        Ok(QueryResult::default())
    }

    fn alter_add_column(
        &mut self,
        sys: &mut System,
        table: &str,
        column: &ColumnDef,
    ) -> Result<QueryResult> {
        let Some(info) = self.tables.get(&norm(table)) else {
            return Err(SqlError::NoSuchTable(table.into()));
        };
        if info
            .columns
            .iter()
            .any(|c| c.name.eq_ignore_ascii_case(&column.name))
        {
            return Err(SqlError::AlreadyExists(format!("{table}.{}", column.name)));
        }
        if column.primary_key {
            return Err(SqlError::Misuse("cannot ADD a PRIMARY KEY column".into()));
        }
        if column.not_null && column.default.is_none() {
            return Err(SqlError::Misuse(
                "NOT NULL column added without a default value".into(),
            ));
        }
        // Existing rows are untouched (short records read the default) —
        // SQLite's constant-time ADD COLUMN.
        let mut info = info.clone();
        info.columns.push(ColumnInfo {
            name: column.name.clone(),
            affinity: Affinity::from_decl(&column.decl_type),
            decl_type: column.decl_type.clone(),
            not_null: column.not_null,
            primary_key: false,
            unique: column.unique,
            default: column.default.clone(),
        });
        self.catalog_put(sys, "table", &info.name.clone(), &encode_table_meta(&info))?;
        self.tables.insert(norm(table), info);
        if column.unique {
            let idx_name = format!("autoindex_{}_{}", norm(table), column.name);
            let col = column.name.clone();
            self.create_index(sys, &idx_name, table, &[col], true, false)?;
        }
        Ok(QueryResult::default())
    }

    // ------------------------------------------------------------------
    // PRAGMA
    // ------------------------------------------------------------------

    fn pragma(&mut self, sys: &mut System, name: &str) -> Result<QueryResult> {
        match name {
            "integrity_check" => {
                let mut problems = Vec::new();
                let mut tables: Vec<TableInfo> = self.tables.values().cloned().collect();
                // hash order varies per process; walk tables in name order
                // so the page-cache access pattern is reproducible
                tables.sort_by(|a, b| a.name.cmp(&b.name));
                for t in &tables {
                    let nrows = match btree::validate(sys, &mut self.pager, t.root) {
                        Ok(n) => n,
                        Err(e) => {
                            problems.push(format!("table {}: {e}", t.name));
                            continue;
                        }
                    };
                    for idx in self.indexes_of(&t.name) {
                        match btree::validate(sys, &mut self.pager, idx.root) {
                            Ok(n) if n != nrows => problems.push(format!(
                                "index {} has {n} entries, table {} has {nrows}",
                                idx.name, t.name
                            )),
                            Ok(_) => {}
                            Err(e) => problems.push(format!("index {}: {e}", idx.name)),
                        }
                    }
                }
                let rows = if problems.is_empty() {
                    vec![vec![SqlValue::Text("ok".into())]]
                } else {
                    problems
                        .into_iter()
                        .map(|p| vec![SqlValue::Text(p)])
                        .collect()
                };
                Ok(QueryResult {
                    columns: vec!["integrity_check".into()],
                    rows,
                    rows_affected: 0,
                })
            }
            "wal_checkpoint" => {
                let done = if self.explicit_txn {
                    false // busy: cannot checkpoint under an open txn
                } else {
                    self.pager.checkpoint(sys)?
                };
                Ok(QueryResult {
                    columns: vec!["wal_checkpoint".into()],
                    rows: vec![vec![SqlValue::Text(
                        if done { "ok" } else { "busy" }.into(),
                    )]],
                    rows_affected: 0,
                })
            }
            _ => Ok(QueryResult::default()), // unknown pragmas are no-ops
        }
    }
}

// ---------------------------------------------------------------------------
// Catalog record encoding
// ---------------------------------------------------------------------------

fn encode_table_meta(t: &TableInfo) -> Vec<SqlValue> {
    let mut rec = vec![
        SqlValue::Text("table".into()),
        SqlValue::Text(t.name.clone()),
        SqlValue::Integer(i64::from(t.root)),
        SqlValue::Integer(t.columns.len() as i64),
    ];
    for c in &t.columns {
        let flags =
            i64::from(c.not_null) | (i64::from(c.primary_key) << 1) | (i64::from(c.unique) << 2);
        rec.push(SqlValue::Text(c.name.clone()));
        rec.push(SqlValue::Text(c.decl_type.clone()));
        rec.push(SqlValue::Integer(flags));
        rec.push(c.default.clone().unwrap_or(SqlValue::Null));
    }
    rec
}

fn decode_table_meta(rec: &[SqlValue]) -> Result<TableInfo> {
    let get_text = |i: usize| -> Result<String> {
        match rec.get(i) {
            Some(SqlValue::Text(s)) => Ok(s.clone()),
            _ => Err(SqlError::Corrupt("catalog text field".into())),
        }
    };
    let get_int = |i: usize| -> Result<i64> {
        match rec.get(i) {
            Some(SqlValue::Integer(v)) => Ok(*v),
            _ => Err(SqlError::Corrupt("catalog int field".into())),
        }
    };
    let name = get_text(1)?;
    let root = get_int(2)? as u32;
    let ncols = get_int(3)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    let mut rowid_alias = None;
    for i in 0..ncols {
        let base = 4 + i * 4;
        let cname = get_text(base)?;
        let decl = get_text(base + 1)?;
        let flags = get_int(base + 2)?;
        let default = match rec.get(base + 3) {
            Some(SqlValue::Null) => None,
            Some(v) => Some(v.clone()),
            None => return Err(SqlError::Corrupt("catalog column default".into())),
        };
        let affinity = Affinity::from_decl(&decl);
        let primary_key = flags & 2 != 0;
        if primary_key && affinity == Affinity::Integer && rowid_alias.is_none() {
            rowid_alias = Some(i);
        }
        columns.push(ColumnInfo {
            name: cname,
            affinity,
            decl_type: decl,
            not_null: flags & 1 != 0,
            primary_key,
            unique: flags & 4 != 0,
            default,
        });
    }
    Ok(TableInfo {
        name,
        root,
        columns,
        rowid_alias,
        next_rowid: None,
    })
}

fn encode_index_meta_rec(i: &IndexInfo) -> Vec<SqlValue> {
    let mut rec = vec![
        SqlValue::Text("index".into()),
        SqlValue::Text(i.name.clone()),
        SqlValue::Text(i.table.clone()),
        SqlValue::Integer(i64::from(i.root)),
        SqlValue::Integer(i64::from(i.unique)),
        SqlValue::Integer(i.col_indices.len() as i64),
    ];
    for &c in &i.col_indices {
        rec.push(SqlValue::Integer(c as i64));
    }
    rec
}

fn decode_index_meta(rec: &[SqlValue]) -> Result<IndexInfo> {
    let text = |i: usize| -> Result<String> {
        match rec.get(i) {
            Some(SqlValue::Text(s)) => Ok(s.clone()),
            _ => Err(SqlError::Corrupt("catalog text field".into())),
        }
    };
    let int = |i: usize| -> Result<i64> {
        match rec.get(i) {
            Some(SqlValue::Integer(v)) => Ok(*v),
            _ => Err(SqlError::Corrupt("catalog int field".into())),
        }
    };
    let n = int(5)? as usize;
    let mut col_indices = Vec::with_capacity(n);
    for i in 0..n {
        col_indices.push(int(6 + i)? as usize);
    }
    Ok(IndexInfo {
        name: text(1)?,
        table: text(2)?,
        root: int(3)? as u32,
        unique: int(4)? != 0,
        col_indices,
    })
}

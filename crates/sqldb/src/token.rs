//! SQL tokenizer.

use crate::error::{Result, SqlError};
use std::fmt;

/// A SQL token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are matched by the
    /// parser; the original spelling is preserved).
    Ident(String),
    /// Quoted identifier (`"name"` / `` `name` ``), never a keyword.
    QuotedIdent(String),
    /// Integer literal.
    Integer(i64),
    /// Float literal.
    Real(f64),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// Blob literal `x'...'`.
    Blob(Vec<u8>),
    /// Punctuation / operator.
    Punct(&'static str),
}

impl Token {
    /// Is this the identifier/keyword `kw` (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    /// Is this the punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(s) if *s == p)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) | Token::QuotedIdent(s) => write!(f, "{s}"),
            Token::Integer(i) => write!(f, "{i}"),
            Token::Real(r) => write!(f, "{r}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Blob(_) => write!(f, "x'…'"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

/// Tokenizes a SQL string.
///
/// # Errors
///
/// [`SqlError::Parse`] on malformed literals or unknown characters.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&b'*') => {
                let end = sql[i + 2..]
                    .find("*/")
                    .ok_or_else(|| SqlError::Parse("unterminated comment".into()))?;
                i += 2 + end + 2;
            }
            '\'' => {
                let (s, ni) = read_string(sql, i)?;
                out.push(Token::Str(s));
                i = ni;
            }
            '"' | '`' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] as char != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(SqlError::Parse("unterminated quoted identifier".into()));
                }
                out.push(Token::QuotedIdent(sql[start..j].to_string()));
                i = j + 1;
            }
            'x' | 'X' if b.get(i + 1) == Some(&b'\'') => {
                let (s, ni) = read_string(sql, i + 1)?;
                let mut bytes = Vec::with_capacity(s.len() / 2);
                if s.len() % 2 != 0 {
                    return Err(SqlError::Parse("odd-length blob literal".into()));
                }
                for pair in s.as_bytes().chunks(2) {
                    let hex = std::str::from_utf8(pair).expect("ascii");
                    bytes.push(
                        u8::from_str_radix(hex, 16)
                            .map_err(|_| SqlError::Parse("bad blob literal".into()))?,
                    );
                }
                out.push(Token::Blob(bytes));
                i = ni;
            }
            '0'..='9' => {
                let start = i;
                let mut is_real = false;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && i > start
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    if b[i] == b'.' || b[i] == b'e' || b[i] == b'E' {
                        is_real = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_real {
                    out.push(Token::Real(
                        text.parse()
                            .map_err(|_| SqlError::Parse(format!("bad number {text}")))?,
                    ));
                } else {
                    out.push(Token::Integer(
                        text.parse()
                            .map_err(|_| SqlError::Parse(format!("bad number {text}")))?,
                    ));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            _ => {
                let two = sql.get(i..i + 2);
                let punct2 = match two {
                    Some("<=") => Some("<="),
                    Some(">=") => Some(">="),
                    Some("<>") => Some("<>"),
                    Some("!=") => Some("!="),
                    Some("||") => Some("||"),
                    Some("==") => Some("=="),
                    _ => None,
                };
                if let Some(p) = punct2 {
                    out.push(Token::Punct(p));
                    i += 2;
                    continue;
                }
                let p = match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    '=' => "=",
                    '<' => "<",
                    '>' => ">",
                    '.' => ".",
                    '?' => "?",
                    _ => return Err(SqlError::Parse(format!("unexpected character `{c}`"))),
                };
                out.push(Token::Punct(p));
                i += 1;
            }
        }
    }
    Ok(out)
}

fn read_string(sql: &str, start: usize) -> Result<(String, usize)> {
    debug_assert_eq!(sql.as_bytes()[start], b'\'');
    let b = sql.as_bytes();
    let mut i = start + 1;
    let mut out = String::new();
    while i < b.len() {
        if b[i] == b'\'' {
            if b.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // keep multi-byte chars intact
            let ch_len = utf8_len(b[i]);
            out.push_str(&sql[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(SqlError::Parse("unterminated string".into()))
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statement() {
        let t = tokenize("SELECT a, b FROM t WHERE a >= 10;").unwrap();
        assert!(t[0].is_kw("select"));
        assert!(t[2].is_punct(","));
        assert_eq!(t[t.len() - 2], Token::Integer(10));
    }

    #[test]
    fn strings_with_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Integer(42)]);
        assert_eq!(tokenize("3.5").unwrap(), vec![Token::Real(3.5)]);
        assert_eq!(tokenize("1e3").unwrap(), vec![Token::Real(1000.0)]);
        assert_eq!(tokenize("2.5e-1").unwrap(), vec![Token::Real(0.25)]);
    }

    #[test]
    fn blob_literals() {
        assert_eq!(
            tokenize("x'AB01'").unwrap(),
            vec![Token::Blob(vec![0xAB, 0x01])]
        );
        assert!(tokenize("x'ABC'").is_err());
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing\n, 2 /* inline */ , 3").unwrap();
        let nums: Vec<_> = t
            .iter()
            .filter(|t| matches!(t, Token::Integer(_)))
            .collect();
        assert_eq!(nums.len(), 3);
    }

    #[test]
    fn two_char_operators() {
        let t = tokenize("a <= b <> c || d != e").unwrap();
        assert!(t[1].is_punct("<="));
        assert!(t[3].is_punct("<>"));
        assert!(t[5].is_punct("||"));
        assert!(t[7].is_punct("!="));
    }

    #[test]
    fn quoted_identifiers() {
        let t = tokenize("\"weird name\"").unwrap();
        assert_eq!(t, vec![Token::QuotedIdent("weird name".into())]);
        let t = tokenize("`tick`").unwrap();
        assert_eq!(t, vec![Token::QuotedIdent("tick".into())]);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("@").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let t = tokenize("'héllo wörld'").unwrap();
        assert_eq!(t, vec![Token::Str("héllo wörld".into())]);
    }
}

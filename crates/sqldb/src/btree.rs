//! B+tree with byte-string keys over the pager.
//!
//! One tree implementation backs both table storage (key = sortable
//! rowid encoding, value = row record) and indexes (key = memcomparable
//! column encoding + rowid, value = empty). Values larger than
//! [`MAX_LOCAL`] spill into overflow page chains, like SQLite's.

use crate::error::{Result, SqlError};
use crate::pager::{Pager, DB_PAGE};
use cubicle_core::System;

/// Maximum value bytes stored inside a leaf cell; longer values go to an
/// overflow chain.
pub const MAX_LOCAL: usize = 1024;

/// Maximum key size (keys must never force a split below 4 cells/page).
pub const MAX_KEY: usize = 512;

const LEAF: u8 = 1;
const INTERIOR: u8 = 2;
const OVERFLOW_DATA: usize = DB_PAGE - 8;

#[derive(Clone, Debug)]
struct LeafCell {
    key: Vec<u8>,
    local: Vec<u8>,
    overflow: u32,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        next: u32,
        cells: Vec<LeafCell>,
    },
    Interior {
        keys: Vec<Vec<u8>>,
        children: Vec<u32>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Leaf { cells, .. } => {
                7 + cells
                    .iter()
                    .map(|c| 8 + c.key.len() + c.local.len())
                    .sum::<usize>()
            }
            Node::Interior { keys, children } => {
                3 + children.len() * 4 + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = vec![0u8; DB_PAGE];
        match self {
            Node::Leaf { next, cells } => {
                out[0] = LEAF;
                out[1..3].copy_from_slice(&(cells.len() as u16).to_le_bytes());
                out[3..7].copy_from_slice(&next.to_le_bytes());
                let mut pos = 7;
                for c in cells {
                    out[pos..pos + 2].copy_from_slice(&(c.key.len() as u16).to_le_bytes());
                    out[pos + 2..pos + 4].copy_from_slice(&(c.local.len() as u16).to_le_bytes());
                    out[pos + 4..pos + 8].copy_from_slice(&c.overflow.to_le_bytes());
                    pos += 8;
                    out[pos..pos + c.key.len()].copy_from_slice(&c.key);
                    pos += c.key.len();
                    out[pos..pos + c.local.len()].copy_from_slice(&c.local);
                    pos += c.local.len();
                }
            }
            Node::Interior { keys, children } => {
                out[0] = INTERIOR;
                out[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                let mut pos = 3;
                for ch in children {
                    out[pos..pos + 4].copy_from_slice(&ch.to_le_bytes());
                    pos += 4;
                }
                for k in keys {
                    out[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    out[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                }
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Result<Node> {
        let kind = data[0];
        let count = u16::from_le_bytes(data[1..3].try_into().expect("2")) as usize;
        match kind {
            LEAF => {
                let next = u32::from_le_bytes(data[3..7].try_into().expect("4"));
                let mut cells = Vec::with_capacity(count);
                let mut pos = 7;
                for _ in 0..count {
                    let klen =
                        u16::from_le_bytes(data[pos..pos + 2].try_into().expect("2")) as usize;
                    let vlen =
                        u16::from_le_bytes(data[pos + 2..pos + 4].try_into().expect("2")) as usize;
                    let overflow =
                        u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4"));
                    pos += 8;
                    let key = data
                        .get(pos..pos + klen)
                        .ok_or_else(|| SqlError::Corrupt("leaf cell key".into()))?
                        .to_vec();
                    pos += klen;
                    let local = data
                        .get(pos..pos + vlen)
                        .ok_or_else(|| SqlError::Corrupt("leaf cell value".into()))?
                        .to_vec();
                    pos += vlen;
                    cells.push(LeafCell {
                        key,
                        local,
                        overflow,
                    });
                }
                Ok(Node::Leaf { next, cells })
            }
            INTERIOR => {
                let mut pos = 3;
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(u32::from_le_bytes(
                        data.get(pos..pos + 4)
                            .ok_or_else(|| SqlError::Corrupt("interior child".into()))?
                            .try_into()
                            .expect("4"),
                    ));
                    pos += 4;
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen =
                        u16::from_le_bytes(data[pos..pos + 2].try_into().expect("2")) as usize;
                    pos += 2;
                    keys.push(
                        data.get(pos..pos + klen)
                            .ok_or_else(|| SqlError::Corrupt("interior key".into()))?
                            .to_vec(),
                    );
                    pos += klen;
                }
                Ok(Node::Interior { keys, children })
            }
            other => Err(SqlError::Corrupt(format!(
                "unknown btree node kind {other}"
            ))),
        }
    }
}

fn read_node(sys: &mut System, pager: &mut Pager, pno: u32) -> Result<Node> {
    let data = pager.page_ref(sys, pno)?;
    Node::decode(data)
}

fn write_node(sys: &mut System, pager: &mut Pager, pno: u32, node: &Node) -> Result<()> {
    pager.write_page(sys, pno, &node.encode())
}

/// Creates an empty tree, returning its root page.
///
/// # Errors
///
/// Pager errors (must run inside a transaction).
pub fn create(sys: &mut System, pager: &mut Pager) -> Result<u32> {
    let root = pager.allocate_page(sys)?;
    write_node(
        sys,
        pager,
        root,
        &Node::Leaf {
            next: 0,
            cells: Vec::new(),
        },
    )?;
    Ok(root)
}

// ---------------------------------------------------------------------------
// Overflow chains
// ---------------------------------------------------------------------------

fn write_overflow(sys: &mut System, pager: &mut Pager, data: &[u8]) -> Result<u32> {
    let mut first = 0u32;
    let mut prev = 0u32;
    for chunk in data.chunks(OVERFLOW_DATA) {
        let pno = pager.allocate_page(sys)?;
        let mut page = vec![0u8; DB_PAGE];
        page[4..6].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
        page[8..8 + chunk.len()].copy_from_slice(chunk);
        pager.write_page(sys, pno, &page)?;
        if prev != 0 {
            let mut prev_page = pager.read_page(sys, prev)?;
            prev_page[..4].copy_from_slice(&pno.to_le_bytes());
            pager.write_page(sys, prev, &prev_page)?;
        } else {
            first = pno;
        }
        prev = pno;
    }
    Ok(first)
}

fn read_overflow(sys: &mut System, pager: &mut Pager, mut pno: u32) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    while pno != 0 {
        let page = pager.page_ref(sys, pno)?;
        let next = u32::from_le_bytes(page[..4].try_into().expect("4"));
        let len = u16::from_le_bytes(page[4..6].try_into().expect("2")) as usize;
        out.extend_from_slice(&page[8..8 + len]);
        pno = next;
    }
    Ok(out)
}

fn free_overflow(sys: &mut System, pager: &mut Pager, mut pno: u32) -> Result<()> {
    while pno != 0 {
        let next = {
            let page = pager.page_ref(sys, pno)?;
            u32::from_le_bytes(page[..4].try_into().expect("4"))
        };
        pager.free_page(sys, pno)?;
        pno = next;
    }
    Ok(())
}

fn make_cell(sys: &mut System, pager: &mut Pager, key: &[u8], value: &[u8]) -> Result<LeafCell> {
    if key.len() > MAX_KEY {
        return Err(SqlError::Misuse(format!(
            "key too large ({} bytes)",
            key.len()
        )));
    }
    if value.len() > MAX_LOCAL {
        let overflow = write_overflow(sys, pager, value)?;
        Ok(LeafCell {
            key: key.to_vec(),
            local: Vec::new(),
            overflow,
        })
    } else {
        Ok(LeafCell {
            key: key.to_vec(),
            local: value.to_vec(),
            overflow: 0,
        })
    }
}

fn cell_value(sys: &mut System, pager: &mut Pager, cell: &LeafCell) -> Result<Vec<u8>> {
    if cell.overflow != 0 {
        read_overflow(sys, pager, cell.overflow)
    } else {
        Ok(cell.local.clone())
    }
}

// ---------------------------------------------------------------------------
// Insert / get / delete
// ---------------------------------------------------------------------------

/// Inserts or replaces `key`. Returns the (possibly new) root page.
///
/// # Errors
///
/// Pager errors; [`SqlError::Misuse`] for oversized keys.
pub fn insert(
    sys: &mut System,
    pager: &mut Pager,
    root: u32,
    key: &[u8],
    value: &[u8],
) -> Result<u32> {
    match insert_rec(sys, pager, root, key, value)? {
        None => Ok(root),
        Some((sep, right)) => {
            let new_root = pager.allocate_page(sys)?;
            write_node(
                sys,
                pager,
                new_root,
                &Node::Interior {
                    keys: vec![sep],
                    children: vec![root, right],
                },
            )?;
            Ok(new_root)
        }
    }
}

fn insert_rec(
    sys: &mut System,
    pager: &mut Pager,
    pno: u32,
    key: &[u8],
    value: &[u8],
) -> Result<Option<(Vec<u8>, u32)>> {
    let node = read_node(sys, pager, pno)?;
    match node {
        Node::Leaf { next, mut cells } => {
            let idx = cells.partition_point(|c| c.key.as_slice() < key);
            if idx < cells.len() && cells[idx].key == key {
                // replace
                if cells[idx].overflow != 0 {
                    free_overflow(sys, pager, cells[idx].overflow)?;
                }
                cells[idx] = make_cell(sys, pager, key, value)?;
            } else {
                let cell = make_cell(sys, pager, key, value)?;
                cells.insert(idx, cell);
            }
            let node = Node::Leaf { next, cells };
            if node.serialized_size() <= DB_PAGE {
                write_node(sys, pager, pno, &node)?;
                return Ok(None);
            }
            // split
            let Node::Leaf { next, mut cells } = node else {
                unreachable!()
            };
            let mid = cells.len() / 2;
            let right_cells = cells.split_off(mid);
            let sep = right_cells[0].key.clone();
            let right_pno = pager.allocate_page(sys)?;
            write_node(
                sys,
                pager,
                right_pno,
                &Node::Leaf {
                    next,
                    cells: right_cells,
                },
            )?;
            write_node(
                sys,
                pager,
                pno,
                &Node::Leaf {
                    next: right_pno,
                    cells,
                },
            )?;
            Ok(Some((sep, right_pno)))
        }
        Node::Interior {
            mut keys,
            mut children,
        } => {
            let idx = keys.partition_point(|k| k.as_slice() <= key);
            let child = children[idx];
            let Some((sep, right)) = insert_rec(sys, pager, child, key, value)? else {
                return Ok(None);
            };
            keys.insert(idx, sep);
            children.insert(idx + 1, right);
            let node = Node::Interior { keys, children };
            if node.serialized_size() <= DB_PAGE {
                write_node(sys, pager, pno, &node)?;
                return Ok(None);
            }
            let Node::Interior {
                mut keys,
                mut children,
            } = node
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let promote = keys[mid].clone();
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // the promoted key leaves this node
            let right_children = children.split_off(mid + 1);
            let right_pno = pager.allocate_page(sys)?;
            write_node(
                sys,
                pager,
                right_pno,
                &Node::Interior {
                    keys: right_keys,
                    children: right_children,
                },
            )?;
            write_node(sys, pager, pno, &Node::Interior { keys, children })?;
            Ok(Some((promote, right_pno)))
        }
    }
}

/// Looks up `key`.
///
/// # Errors
///
/// Pager errors or corruption.
pub fn get(sys: &mut System, pager: &mut Pager, root: u32, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut pno = root;
    loop {
        match read_node(sys, pager, pno)? {
            Node::Leaf { cells, .. } => {
                let idx = cells.partition_point(|c| c.key.as_slice() < key);
                if idx < cells.len() && cells[idx].key == key {
                    return Ok(Some(cell_value(sys, pager, &cells[idx])?));
                }
                return Ok(None);
            }
            Node::Interior { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                pno = children[idx];
            }
        }
    }
}

/// Deletes `key`. Returns `true` if it was present. Leaves are allowed
/// to underflow (lazy deletion, no rebalancing — freed space is reused
/// by later inserts).
///
/// # Errors
///
/// Pager errors or corruption.
pub fn delete(sys: &mut System, pager: &mut Pager, root: u32, key: &[u8]) -> Result<bool> {
    let mut pno = root;
    loop {
        match read_node(sys, pager, pno)? {
            Node::Leaf { next, mut cells } => {
                let idx = cells.partition_point(|c| c.key.as_slice() < key);
                if idx < cells.len() && cells[idx].key == key {
                    let cell = cells.remove(idx);
                    if cell.overflow != 0 {
                        free_overflow(sys, pager, cell.overflow)?;
                    }
                    write_node(sys, pager, pno, &Node::Leaf { next, cells })?;
                    return Ok(true);
                }
                return Ok(false);
            }
            Node::Interior { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                pno = children[idx];
            }
        }
    }
}

/// Frees every page of the tree (DROP TABLE / DROP INDEX).
///
/// # Errors
///
/// Pager errors or corruption.
pub fn free_tree(sys: &mut System, pager: &mut Pager, root: u32) -> Result<()> {
    match read_node(sys, pager, root)? {
        Node::Leaf { cells, .. } => {
            for c in &cells {
                if c.overflow != 0 {
                    free_overflow(sys, pager, c.overflow)?;
                }
            }
        }
        Node::Interior { children, .. } => {
            for child in children {
                free_tree(sys, pager, child)?;
            }
        }
    }
    pager.free_page(sys, root)
}

/// Returns the largest key in the tree, or `None` when empty.
///
/// # Errors
///
/// Pager errors or corruption.
pub fn last_key(sys: &mut System, pager: &mut Pager, root: u32) -> Result<Option<Vec<u8>>> {
    let mut pno = root;
    loop {
        match read_node(sys, pager, pno)? {
            Node::Leaf { cells, .. } => {
                if let Some(cell) = cells.last() {
                    return Ok(Some(cell.key.clone()));
                }
                // Lazy deletion can leave the rightmost leaf empty; fall
                // back to a full scan remembering the last key seen.
                let mut cur = Cursor::seek(sys, pager, root, None)?;
                let mut last = None;
                while let Some((key, _)) = cur.next(sys, pager)? {
                    last = Some(key);
                }
                return Ok(last);
            }
            Node::Interior { children, .. } => {
                pno = *children.last().expect("interior has children");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cursors
// ---------------------------------------------------------------------------

/// Forward cursor over a tree's entries in key order.
#[derive(Debug)]
pub struct Cursor {
    leaf: u32,
    idx: usize,
    cached_leaf: u32,
    cells: Vec<LeafCell>,
    next_leaf: u32,
}

impl Cursor {
    /// Positions at the first key `>= start` (or the smallest key when
    /// `start` is `None`).
    ///
    /// # Errors
    ///
    /// Pager errors or corruption.
    pub fn seek(
        sys: &mut System,
        pager: &mut Pager,
        root: u32,
        start: Option<&[u8]>,
    ) -> Result<Cursor> {
        let mut pno = root;
        loop {
            match read_node(sys, pager, pno)? {
                Node::Leaf { next, cells } => {
                    let idx = match start {
                        Some(key) => cells.partition_point(|c| c.key.as_slice() < key),
                        None => 0,
                    };
                    return Ok(Cursor {
                        leaf: pno,
                        idx,
                        cached_leaf: pno,
                        cells,
                        next_leaf: next,
                    });
                }
                Node::Interior { keys, children } => {
                    let idx = match start {
                        Some(key) => keys.partition_point(|k| k.as_slice() <= key),
                        None => 0,
                    };
                    pno = children[idx];
                }
            }
        }
    }

    /// Returns the next `(key, value)`, or `None` at the end.
    ///
    /// # Errors
    ///
    /// Pager errors or corruption.
    pub fn next(
        &mut self,
        sys: &mut System,
        pager: &mut Pager,
    ) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            if self.cached_leaf != self.leaf {
                let Node::Leaf { next, cells } = read_node(sys, pager, self.leaf)? else {
                    return Err(SqlError::Corrupt("cursor leaf is not a leaf".into()));
                };
                self.cells = cells;
                self.next_leaf = next;
                self.cached_leaf = self.leaf;
            }
            if self.idx < self.cells.len() {
                let idx = self.idx;
                self.idx += 1;
                let cell = &self.cells[idx];
                // Inline values skip the extra cell clone on this hot path.
                if cell.overflow == 0 {
                    return Ok(Some((cell.key.clone(), cell.local.clone())));
                }
                let key = cell.key.clone();
                let value = read_overflow(sys, pager, cell.overflow)?;
                return Ok(Some((key, value)));
            }
            if self.next_leaf == 0 {
                return Ok(None);
            }
            self.leaf = self.next_leaf;
            self.cached_leaf = u32::MAX; // force reload
            self.idx = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Integrity check
// ---------------------------------------------------------------------------

/// Validates key ordering and structure; returns the number of entries.
///
/// # Errors
///
/// [`SqlError::Corrupt`] describing the first violation found.
pub fn validate(sys: &mut System, pager: &mut Pager, root: u32) -> Result<u64> {
    fn walk(
        sys: &mut System,
        pager: &mut Pager,
        pno: u32,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Result<u64> {
        match read_node(sys, pager, pno)? {
            Node::Leaf { cells, .. } => {
                for w in cells.windows(2) {
                    if w[0].key >= w[1].key {
                        return Err(SqlError::Corrupt("leaf keys out of order".into()));
                    }
                }
                for c in &cells {
                    if lo.is_some_and(|l| c.key.as_slice() < l)
                        || hi.is_some_and(|h| c.key.as_slice() >= h)
                    {
                        return Err(SqlError::Corrupt(
                            "leaf key outside separator bounds".into(),
                        ));
                    }
                }
                Ok(cells.len() as u64)
            }
            Node::Interior { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(SqlError::Corrupt("interior arity mismatch".into()));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(SqlError::Corrupt("interior keys out of order".into()));
                    }
                }
                let mut count = 0;
                for (i, &child) in children.iter().enumerate() {
                    let clo = if i == 0 {
                        lo
                    } else {
                        Some(keys[i - 1].as_slice())
                    };
                    let chi = if i == keys.len() {
                        hi
                    } else {
                        Some(keys[i].as_slice())
                    };
                    count += walk(sys, pager, child, clo, chi)?;
                }
                Ok(count)
            }
        }
    }
    walk(sys, pager, root, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HostEnv;
    use cubicle_core::{IsolationMode, System};

    fn setup() -> (System, Pager) {
        let mut sys = System::new(IsolationMode::Unikraft);
        let env = HostEnv::new();
        let mut pager = Pager::open(&mut sys, Box::new(env), "/bt.db", 64).unwrap();
        pager.begin(&mut sys).unwrap();
        (sys, pager)
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        for i in 0..100u64 {
            root = insert(
                &mut sys,
                &mut pager,
                root,
                &k(i),
                format!("v{i}").as_bytes(),
            )
            .unwrap();
        }
        for i in 0..100u64 {
            let v = get(&mut sys, &mut pager, root, &k(i)).unwrap().unwrap();
            assert_eq!(v, format!("v{i}").as_bytes());
        }
        assert!(get(&mut sys, &mut pager, root, &k(1000)).unwrap().is_none());
    }

    #[test]
    fn splits_preserve_all_keys() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        // values sized so leaves hold ~40 cells → multiple levels
        let val = vec![0xAB; 90];
        for i in 0..5_000u64 {
            // insertion order deliberately scrambled
            let key = k(i.wrapping_mul(2_654_435_761) % 5_000);
            root = insert(&mut sys, &mut pager, root, &key, &val).unwrap();
        }
        let count = validate(&mut sys, &mut pager, root).unwrap();
        assert_eq!(count, 5_000);
    }

    #[test]
    fn replace_updates_in_place() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        root = insert(&mut sys, &mut pager, root, b"key", b"old").unwrap();
        root = insert(&mut sys, &mut pager, root, b"key", b"new").unwrap();
        assert_eq!(
            get(&mut sys, &mut pager, root, b"key").unwrap().unwrap(),
            b"new"
        );
        assert_eq!(validate(&mut sys, &mut pager, root).unwrap(), 1);
    }

    #[test]
    fn delete_removes() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        for i in 0..500u64 {
            root = insert(&mut sys, &mut pager, root, &k(i), b"x").unwrap();
        }
        for i in (0..500u64).step_by(2) {
            assert!(delete(&mut sys, &mut pager, root, &k(i)).unwrap());
        }
        assert!(
            !delete(&mut sys, &mut pager, root, &k(0)).unwrap(),
            "already gone"
        );
        assert_eq!(validate(&mut sys, &mut pager, root).unwrap(), 250);
        for i in 0..500u64 {
            let present = get(&mut sys, &mut pager, root, &k(i)).unwrap().is_some();
            assert_eq!(present, i % 2 == 1, "key {i}");
        }
    }

    #[test]
    fn cursor_scans_in_order() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        for i in (0..1_000u64).rev() {
            root = insert(&mut sys, &mut pager, root, &k(i), &i.to_le_bytes()).unwrap();
        }
        let mut cur = Cursor::seek(&mut sys, &mut pager, root, None).unwrap();
        let mut seen = 0u64;
        while let Some((key, val)) = cur.next(&mut sys, &mut pager).unwrap() {
            assert_eq!(key, k(seen));
            assert_eq!(val, seen.to_le_bytes());
            seen += 1;
        }
        assert_eq!(seen, 1_000);
    }

    #[test]
    fn cursor_seek_starts_midway() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        for i in 0..100u64 {
            root = insert(&mut sys, &mut pager, root, &k(i * 2), b"v").unwrap();
        }
        // seek to a key between entries
        let mut cur = Cursor::seek(&mut sys, &mut pager, root, Some(&k(51))).unwrap();
        let (key, _) = cur.next(&mut sys, &mut pager).unwrap().unwrap();
        assert_eq!(key, k(52));
    }

    #[test]
    fn overflow_values_round_trip() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        root = insert(&mut sys, &mut pager, root, b"big", &big).unwrap();
        root = insert(&mut sys, &mut pager, root, b"small", b"s").unwrap();
        assert_eq!(
            get(&mut sys, &mut pager, root, b"big").unwrap().unwrap(),
            big
        );
        assert_eq!(
            get(&mut sys, &mut pager, root, b"small").unwrap().unwrap(),
            b"s"
        );
        // replacing the big value frees its chain (pages get reused)
        let before = pager.page_count();
        root = insert(&mut sys, &mut pager, root, b"big", b"now small").unwrap();
        let big2: Vec<u8> = vec![7; 20_000];
        root = insert(&mut sys, &mut pager, root, b"big2", &big2).unwrap();
        assert!(
            pager.page_count() <= before + 1,
            "freed overflow pages are reused"
        );
        assert_eq!(
            get(&mut sys, &mut pager, root, b"big2").unwrap().unwrap(),
            big2
        );
    }

    #[test]
    fn oversized_key_rejected() {
        let (mut sys, mut pager) = setup();
        let root = create(&mut sys, &mut pager).unwrap();
        let huge_key = vec![1u8; MAX_KEY + 1];
        assert!(matches!(
            insert(&mut sys, &mut pager, root, &huge_key, b"v"),
            Err(SqlError::Misuse(_))
        ));
    }

    #[test]
    fn free_tree_recycles_pages() {
        let (mut sys, mut pager) = setup();
        let mut root = create(&mut sys, &mut pager).unwrap();
        for i in 0..2_000u64 {
            root = insert(&mut sys, &mut pager, root, &k(i), &[9u8; 100]).unwrap();
        }
        let peak = pager.page_count();
        free_tree(&mut sys, &mut pager, root).unwrap();
        let mut root2 = create(&mut sys, &mut pager).unwrap();
        for i in 0..2_000u64 {
            root2 = insert(&mut sys, &mut pager, root2, &k(i), &[9u8; 100]).unwrap();
        }
        assert!(
            pager.page_count() <= peak + 2,
            "second tree reuses freed pages"
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let env = HostEnv::new();
        let root;
        {
            let mut pager = Pager::open(&mut sys, Box::new(env.clone()), "/p.db", 64).unwrap();
            pager.begin(&mut sys).unwrap();
            let mut r = create(&mut sys, &mut pager).unwrap();
            for i in 0..300u64 {
                r = insert(&mut sys, &mut pager, r, &k(i), &i.to_le_bytes()).unwrap();
            }
            pager.set_schema_root(&mut sys, r).unwrap();
            pager.commit(&mut sys).unwrap();
            root = r;
        }
        let mut pager = Pager::open(&mut sys, Box::new(env), "/p.db", 64).unwrap();
        assert_eq!(pager.schema_root(), root);
        assert_eq!(validate(&mut sys, &mut pager, root).unwrap(), 300);
        for i in 0..300u64 {
            assert!(get(&mut sys, &mut pager, root, &k(i)).unwrap().is_some());
        }
    }
}

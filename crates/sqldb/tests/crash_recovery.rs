//! Failure injection: transactions that die mid-flight over the real
//! cubicle stack must be rolled back by journal recovery on reopen.

use cubicle_core::{impl_component, ComponentImage, CubicleId, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_sqldb::storage::CubicleEnv;
use cubicle_sqldb::{Database, SqlValue};
use cubicle_ukbase::boot_base;
use cubicle_vfs::{Vfs, VfsPort, VfsProxy};

struct App;
impl_component!(App);

struct Stack {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    ramfs: CubicleId,
}

fn boot() -> Stack {
    let mut sys = System::new(IsolationMode::Full);
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    let app = sys
        .load(
            ComponentImage::new("SQLITE", CodeImage::plain(4096)).heap_pages(128),
            Box::new(App),
        )
        .unwrap();
    Stack {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).unwrap(),
        ramfs: ramfs_loaded.cid,
    }
}

fn open_db(stack: &mut Stack, cache: usize) -> Database {
    let (app, vfs, ramfs) = (stack.app, stack.vfs, stack.ramfs);
    stack.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &[ramfs]).unwrap();
        Database::open_with_cache(sys, Box::new(CubicleEnv::new(port)), "/crash.db", cache).unwrap()
    })
}

#[test]
fn crash_mid_transaction_recovers_to_committed_state() {
    let mut stack = boot();
    let mut db = open_db(&mut stack, 64);
    let app = stack.app;
    stack.sys.run_in_cubicle(app, |sys| {
        db.execute(sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute(sys, "INSERT INTO t VALUES (1, 'committed')")
            .unwrap();
        // open a transaction, mutate heavily, then "crash" by dropping
        // the connection without COMMIT/ROLLBACK
        db.execute(sys, "BEGIN").unwrap();
        for i in 2..200 {
            db.execute(sys, &format!("INSERT INTO t VALUES ({i}, 'doomed')"))
                .unwrap();
        }
        db.execute(sys, "UPDATE t SET v = 'mangled' WHERE id = 1")
            .unwrap();
    });
    drop(db); // crash: journal file is left behind in RAMFS

    // a fresh connection must replay the journal
    let mut db2 = open_db(&mut stack, 64);
    stack.sys.run_in_cubicle(app, |sys| {
        let rows = db2.query(sys, "SELECT id, v FROM t").unwrap();
        assert_eq!(
            rows,
            vec![vec![
                SqlValue::Integer(1),
                SqlValue::Text("committed".into())
            ]]
        );
        let check = db2.query(sys, "PRAGMA integrity_check").unwrap();
        assert_eq!(check[0][0], SqlValue::Text("ok".into()));
        // and the database is fully usable afterwards
        db2.execute(sys, "INSERT INTO t VALUES (2, 'after recovery')")
            .unwrap();
        let n = db2.query(sys, "SELECT count(*) FROM t").unwrap();
        assert_eq!(n[0][0], SqlValue::Integer(2));
    });
}

#[test]
fn crash_with_tiny_cache_and_dirty_evictions_recovers() {
    // With a tiny page cache, the doomed transaction's pages hit the
    // database file through evictions *before* the crash — exactly the
    // case the journal's old-page images exist for.
    let mut stack = boot();
    let mut db = open_db(&mut stack, 8);
    let app = stack.app;
    stack.sys.run_in_cubicle(app, |sys| {
        db.execute(sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, blob TEXT)")
            .unwrap();
        db.execute(sys, "BEGIN").unwrap();
        for i in 0..50 {
            db.execute(
                sys,
                &format!("INSERT INTO t VALUES ({i}, '{}')", "x".repeat(400)),
            )
            .unwrap();
        }
        db.execute(sys, "COMMIT").unwrap();
        db.execute(sys, "BEGIN").unwrap();
        for i in 0..50 {
            db.execute(
                sys,
                &format!("UPDATE t SET blob = 'overwritten' WHERE id = {i}"),
            )
            .unwrap();
        }
        let evictions = db.pager_stats().evictions;
        assert!(
            evictions > 0,
            "the test must actually evict dirty pages mid-txn"
        );
    });
    drop(db); // crash

    let mut db2 = open_db(&mut stack, 8);
    stack.sys.run_in_cubicle(app, |sys| {
        let rows = db2
            .query(sys, "SELECT count(*) FROM t WHERE blob = 'overwritten'")
            .unwrap();
        assert_eq!(
            rows[0][0],
            SqlValue::Integer(0),
            "doomed updates rolled back"
        );
        let rows = db2.query(sys, "SELECT count(*) FROM t").unwrap();
        assert_eq!(rows[0][0], SqlValue::Integer(50), "committed rows survive");
        let check = db2.query(sys, "PRAGMA integrity_check").unwrap();
        assert_eq!(check[0][0], SqlValue::Text("ok".into()));
    });
}

#[test]
fn repeated_crashes_are_idempotent() {
    let mut stack = boot();
    let app = stack.app;
    for round in 0..3 {
        let mut db = open_db(&mut stack, 32);
        stack.sys.run_in_cubicle(app, |sys| {
            db.execute(sys, "CREATE TABLE IF NOT EXISTS t(v INTEGER)")
                .unwrap();
            db.execute(sys, &format!("INSERT INTO t VALUES ({round})"))
                .unwrap();
            db.execute(sys, "BEGIN").unwrap();
            db.execute(sys, "INSERT INTO t VALUES (999)").unwrap();
            // crash inside the txn every round
        });
        drop(db);
    }
    let mut db = open_db(&mut stack, 32);
    stack.sys.run_in_cubicle(app, |sys| {
        let rows = db.query(sys, "SELECT v FROM t ORDER BY v").unwrap();
        let vals: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(
            vals,
            vec![0, 1, 2],
            "exactly the autocommitted rows survive"
        );
    });
}

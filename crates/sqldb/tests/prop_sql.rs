//! Randomized tests at the SQL level: the engine must agree with a naive
//! in-memory model, and indexed and unindexed plans must agree with
//! each other.
//!
//! Formerly proptest-based; rewritten over the in-tree deterministic
//! [`Rng64`] so the suite builds fully offline.

use cubicle_core::{IsolationMode, System};
use cubicle_mpk::rng::Rng64;
use cubicle_sqldb::storage::HostEnv;
use cubicle_sqldb::{Database, SqlValue};

fn setup() -> (System, Database) {
    let mut sys = System::new(IsolationMode::Unikraft);
    let db = Database::open(&mut sys, Box::new(HostEnv::new()), "/prop.db").unwrap();
    (sys, db)
}

#[test]
fn indexed_and_unindexed_plans_agree() {
    for case in 0..12u64 {
        let mut rng = Rng64::new(0x1DE_0000 + case);
        let rows: Vec<(i64, i64)> = (0..rng.range_usize(1, 120))
            .map(|_| (rng.range_i64(0, 50), rng.range_i64(0, 1000)))
            .collect();
        let probe = rng.range_i64(0, 50);
        let lo = rng.range_i64(0, 25);
        let span = rng.range_i64(0, 30);

        let (mut sys, mut db) = setup();
        // two identical tables, one indexed
        db.execute(&mut sys, "CREATE TABLE plain(a INTEGER, b INTEGER)")
            .unwrap();
        db.execute(&mut sys, "CREATE TABLE fast(a INTEGER, b INTEGER)")
            .unwrap();
        db.execute(&mut sys, "CREATE INDEX ifast ON fast(a)")
            .unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &(a, b) in &rows {
            db.execute(&mut sys, &format!("INSERT INTO plain VALUES ({a}, {b})"))
                .unwrap();
            db.execute(&mut sys, &format!("INSERT INTO fast VALUES ({a}, {b})"))
                .unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        for cond in [
            format!("a = {probe}"),
            format!("a BETWEEN {lo} AND {}", lo + span),
            format!("a >= {lo}"),
            format!("a < {probe} AND b % 2 = 0"),
        ] {
            let p = db
                .query(
                    &mut sys,
                    &format!("SELECT a, b FROM plain WHERE {cond} ORDER BY a, b"),
                )
                .unwrap();
            let f = db
                .query(
                    &mut sys,
                    &format!("SELECT a, b FROM fast WHERE {cond} ORDER BY a, b"),
                )
                .unwrap();
            assert_eq!(p, f, "case {case}, condition `{cond}`");
        }
    }
}

#[test]
fn aggregates_agree_with_model() {
    for case in 0..12u64 {
        let mut rng = Rng64::new(0xA66_0000 + case);
        let rows: Vec<(i64, i64)> = (0..rng.range_usize(0, 80))
            .map(|_| (rng.range_i64(0, 8), rng.range_i64(-500, 500)))
            .collect();

        let (mut sys, mut db) = setup();
        db.execute(&mut sys, "CREATE TABLE t(g INTEGER, v INTEGER)")
            .unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &(g, v) in &rows {
            db.execute(&mut sys, &format!("INSERT INTO t VALUES ({g}, {v})"))
                .unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        let got = db
            .query(
                &mut sys,
                "SELECT g, count(*), sum(v), min(v), max(v) FROM t GROUP BY g ORDER BY g",
            )
            .unwrap();

        use std::collections::BTreeMap;
        let mut model: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for &(g, v) in &rows {
            model.entry(g).or_default().push(v);
        }
        assert_eq!(got.len(), model.len(), "case {case}");
        for (row, (g, vs)) in got.iter().zip(model.iter()) {
            assert_eq!(row[0], SqlValue::Integer(*g), "case {case}");
            assert_eq!(row[1], SqlValue::Integer(vs.len() as i64), "case {case}");
            assert_eq!(
                row[2],
                SqlValue::Integer(vs.iter().sum::<i64>()),
                "case {case}"
            );
            assert_eq!(
                row[3],
                SqlValue::Integer(*vs.iter().min().unwrap()),
                "case {case}"
            );
            assert_eq!(
                row[4],
                SqlValue::Integer(*vs.iter().max().unwrap()),
                "case {case}"
            );
        }
    }
}

#[test]
fn update_delete_agree_with_model() {
    for case in 0..12u64 {
        let mut rng = Rng64::new(0x0BD_0000 + case);
        let rows: Vec<i64> = (0..rng.range_usize(1, 60))
            .map(|_| rng.range_i64(-100, 100))
            .collect();
        let threshold = rng.range_i64(-50, 50);
        let delta = rng.range_i64(-10, 10);

        let (mut sys, mut db) = setup();
        db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &v in &rows {
            db.execute(&mut sys, &format!("INSERT INTO t VALUES ({v})"))
                .unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        db.execute(
            &mut sys,
            &format!("UPDATE t SET v = v + {delta} WHERE v < {threshold}"),
        )
        .unwrap();
        db.execute(
            &mut sys,
            &format!("DELETE FROM t WHERE v > {}", threshold + 20),
        )
        .unwrap();

        let mut model: Vec<i64> = rows
            .iter()
            .map(|&v| if v < threshold { v + delta } else { v })
            .filter(|&v| v <= threshold + 20)
            .collect();
        model.sort_unstable();

        let got: Vec<i64> = db
            .query(&mut sys, "SELECT v FROM t ORDER BY v")
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(got, model, "case {case}");

        let check = db.query(&mut sys, "PRAGMA integrity_check").unwrap();
        assert_eq!(check[0][0], SqlValue::Text("ok".into()), "case {case}");
    }
}

#[test]
fn tokenizer_never_panics() {
    // printable-unicode-ish soup, heavy on SQL metacharacters
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '9', ' ', '\t', '\n', '\'', '"', '(', ')', ',', ';', '*', '=', '<', '>',
        '.', '+', '-', '%', '_', '|', '&', '/', '\\', '`', '[', ']', '{', '}', '!', '?', '#', '@',
        '~', '^', 'é', 'λ', '中', '🦀', '\u{0}', '\u{7f}',
    ];
    let mut rng = Rng64::new(0x70C3);
    for _ in 0..500 {
        let input: String = (0..rng.range_usize(0, 200))
            .map(|_| *rng.pick(ALPHABET))
            .collect();
        let _ = cubicle_sqldb::token::tokenize(&input);
    }
}

#[test]
fn parser_never_panics() {
    const ALPHABET: &[char] = &[
        'a', 'b', 'S', 'T', '0', '7', ' ', ',', '(', ')', '\'', '*', '=', '<', '>', '.', ';', '+',
        '-',
    ];
    let mut rng = Rng64::new(0xBA25E);
    for _ in 0..500 {
        let input: String = (0..rng.range_usize(0, 120))
            .map(|_| *rng.pick(ALPHABET))
            .collect();
        let _ = cubicle_sqldb::parser::parse_all(&input);
    }
}

//! Property tests at the SQL level: the engine must agree with a naive
//! in-memory model, and indexed and unindexed plans must agree with
//! each other.

use cubicle_core::{IsolationMode, System};
use cubicle_sqldb::storage::HostEnv;
use cubicle_sqldb::{Database, SqlValue};
use proptest::prelude::*;

fn setup() -> (System, Database) {
    let mut sys = System::new(IsolationMode::Unikraft);
    let db = Database::open(&mut sys, Box::new(HostEnv::new()), "/prop.db").unwrap();
    (sys, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_and_unindexed_plans_agree(
        rows in proptest::collection::vec((0i64..50, 0i64..1000), 1..120),
        probe in 0i64..50,
        lo in 0i64..25,
        span in 0i64..30,
    ) {
        let (mut sys, mut db) = setup();
        // two identical tables, one indexed
        db.execute(&mut sys, "CREATE TABLE plain(a INTEGER, b INTEGER)").unwrap();
        db.execute(&mut sys, "CREATE TABLE fast(a INTEGER, b INTEGER)").unwrap();
        db.execute(&mut sys, "CREATE INDEX ifast ON fast(a)").unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &(a, b) in &rows {
            db.execute(&mut sys, &format!("INSERT INTO plain VALUES ({a}, {b})")).unwrap();
            db.execute(&mut sys, &format!("INSERT INTO fast VALUES ({a}, {b})")).unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        for cond in [
            format!("a = {probe}"),
            format!("a BETWEEN {lo} AND {}", lo + span),
            format!("a >= {lo}"),
            format!("a < {probe} AND b % 2 = 0"),
        ] {
            let p = db
                .query(&mut sys, &format!("SELECT a, b FROM plain WHERE {cond} ORDER BY a, b"))
                .unwrap();
            let f = db
                .query(&mut sys, &format!("SELECT a, b FROM fast WHERE {cond} ORDER BY a, b"))
                .unwrap();
            prop_assert_eq!(&p, &f, "condition `{}`", cond);
        }
    }

    #[test]
    fn aggregates_agree_with_model(
        rows in proptest::collection::vec((0i64..8, -500i64..500), 0..80),
    ) {
        let (mut sys, mut db) = setup();
        db.execute(&mut sys, "CREATE TABLE t(g INTEGER, v INTEGER)").unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &(g, v) in &rows {
            db.execute(&mut sys, &format!("INSERT INTO t VALUES ({g}, {v})")).unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        let got = db
            .query(&mut sys, "SELECT g, count(*), sum(v), min(v), max(v) FROM t GROUP BY g ORDER BY g")
            .unwrap();

        use std::collections::BTreeMap;
        let mut model: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for &(g, v) in &rows {
            model.entry(g).or_default().push(v);
        }
        prop_assert_eq!(got.len(), model.len());
        for (row, (g, vs)) in got.iter().zip(model.iter()) {
            prop_assert_eq!(&row[0], &SqlValue::Integer(*g));
            prop_assert_eq!(&row[1], &SqlValue::Integer(vs.len() as i64));
            prop_assert_eq!(&row[2], &SqlValue::Integer(vs.iter().sum::<i64>()));
            prop_assert_eq!(&row[3], &SqlValue::Integer(*vs.iter().min().unwrap()));
            prop_assert_eq!(&row[4], &SqlValue::Integer(*vs.iter().max().unwrap()));
        }
    }

    #[test]
    fn update_delete_agree_with_model(
        rows in proptest::collection::vec(-100i64..100, 1..60),
        threshold in -50i64..50,
        delta in -10i64..10,
    ) {
        let (mut sys, mut db) = setup();
        db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
        db.execute(&mut sys, "BEGIN").unwrap();
        for &v in &rows {
            db.execute(&mut sys, &format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        db.execute(&mut sys, "COMMIT").unwrap();

        db.execute(&mut sys, &format!("UPDATE t SET v = v + {delta} WHERE v < {threshold}"))
            .unwrap();
        db.execute(&mut sys, &format!("DELETE FROM t WHERE v > {}", threshold + 20)).unwrap();

        let mut model: Vec<i64> = rows
            .iter()
            .map(|&v| if v < threshold { v + delta } else { v })
            .filter(|&v| v <= threshold + 20)
            .collect();
        model.sort_unstable();

        let got: Vec<i64> = db
            .query(&mut sys, "SELECT v FROM t ORDER BY v")
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        prop_assert_eq!(got, model);

        let check = db.query(&mut sys, "PRAGMA integrity_check").unwrap();
        prop_assert_eq!(&check[0][0], &SqlValue::Text("ok".into()));
    }

    #[test]
    fn tokenizer_never_panics(input in "\\PC{0,200}") {
        let _ = cubicle_sqldb::token::tokenize(&input);
    }

    #[test]
    fn parser_never_panics(input in "[a-zA-Z0-9 ,()'*=<>.;+-]{0,120}") {
        let _ = cubicle_sqldb::parser::parse_all(&input);
    }
}

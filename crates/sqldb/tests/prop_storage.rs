//! Randomized tests of the storage layers.
//!
//! Formerly proptest-based; rewritten over the in-tree deterministic
//! [`Rng64`] so the suite builds fully offline.

use cubicle_core::{IsolationMode, System};
use cubicle_mpk::rng::Rng64;
use cubicle_sqldb::btree;
use cubicle_sqldb::pager::{Pager, DB_PAGE};
use cubicle_sqldb::record::{decode_record, encode_index_key, encode_record};
use cubicle_sqldb::storage::HostEnv;
use cubicle_sqldb::SqlValue;
use std::collections::BTreeMap;

fn sys() -> System {
    System::new(IsolationMode::Unikraft)
}

const TEXT_CHARS: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'M', 'Z', '0', '5', '9', ' ', '_', '%', '-',
];

fn rand_value(rng: &mut Rng64) -> SqlValue {
    match rng.range_usize(0, 5) {
        0 => SqlValue::Null,
        1 => SqlValue::Integer(rng.next_u64() as i64),
        // avoid NaN: total_cmp treats NaN arbitrarily
        2 => SqlValue::Real(rng.range_i64(-1_000_000_000, 1_000_000_000) as f64 / 7.0),
        3 => {
            let len = rng.range_usize(0, 40);
            SqlValue::Text((0..len).map(|_| *rng.pick(TEXT_CHARS)).collect())
        }
        _ => {
            let len = rng.range_usize(0, 48);
            SqlValue::Blob(rng.bytes(len))
        }
    }
}

#[test]
fn record_encoding_round_trips() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x4EC0_0000 + case);
        let values: Vec<SqlValue> = (0..rng.range_usize(0, 12))
            .map(|_| rand_value(&mut rng))
            .collect();
        let enc = encode_record(&values);
        let dec = decode_record(&enc).unwrap();
        assert_eq!(values, dec, "case {case}");
    }
}

#[test]
fn index_key_order_matches_value_order() {
    let mut rng = Rng64::new(0x1DE2_0001);
    for case in 0..256 {
        let a = rand_value(&mut rng);
        let b = rand_value(&mut rng);
        let ka = encode_index_key(std::slice::from_ref(&a), None);
        let kb = encode_index_key(std::slice::from_ref(&b), None);
        let vo = a.total_cmp(&b);
        if vo != std::cmp::Ordering::Equal {
            assert_eq!(ka.cmp(&kb), vo, "case {case}: {a:?} vs {b:?}");
        }
    }
}

#[test]
fn btree_agrees_with_model() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0xB7EE_0000 + case);
        let mut s = sys();
        let env = HostEnv::new();
        let mut pager = Pager::open(&mut s, Box::new(env), "/prop.db", 32).unwrap();
        pager.begin(&mut s).unwrap();
        let mut root = btree::create(&mut s, &mut pager).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.range_usize(1, 120) {
            let op = rng.range_u64(0, 3) as u8;
            let key = rng.range_u64(0, 200).to_be_bytes().to_vec();
            match op {
                0 => {
                    let len = rng.range_usize(0, 64);
                    let val = rng.bytes(len);
                    root = btree::insert(&mut s, &mut pager, root, &key, &val).unwrap();
                    model.insert(key, val);
                }
                1 => {
                    let removed = btree::delete(&mut s, &mut pager, root, &key).unwrap();
                    assert_eq!(removed, model.remove(&key).is_some(), "case {case}");
                }
                _ => {
                    let got = btree::get(&mut s, &mut pager, root, &key).unwrap();
                    assert_eq!(got.as_ref(), model.get(&key), "case {case}");
                }
            }
        }
        // final full-scan equivalence
        let mut cur = btree::Cursor::seek(&mut s, &mut pager, root, None).unwrap();
        let mut scanned = Vec::new();
        while let Some((k, v)) = cur.next(&mut s, &mut pager).unwrap() {
            scanned.push((k, v));
        }
        let expect: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(scanned, expect, "case {case}");
        assert!(
            btree::validate(&mut s, &mut pager, root).is_ok(),
            "case {case}"
        );
    }
}

#[test]
fn pager_transactions_are_atomic() {
    for case in 0..64u64 {
        let mut rng = Rng64::new(0x7A6E_0000 + case);
        let committed: Vec<(u32, u8)> = (0..rng.range_usize(1, 12))
            .map(|_| (rng.range_u64(1, 20) as u32, rng.next_u32() as u8))
            .collect();
        let aborted: Vec<(u32, u8)> = (0..rng.range_usize(1, 12))
            .map(|_| (rng.range_u64(1, 20) as u32, rng.next_u32() as u8))
            .collect();

        let mut s = sys();
        let env = HostEnv::new();
        let mut pager = Pager::open(&mut s, Box::new(env.clone()), "/txn.db", 8).unwrap();
        // committed transaction
        pager.begin(&mut s).unwrap();
        let mut pages = Vec::new();
        for _ in 0..20 {
            pages.push(pager.allocate_page(&mut s).unwrap());
        }
        let mut expect: BTreeMap<u32, u8> = BTreeMap::new();
        for &(slot, byte) in &committed {
            let pno = pages[slot as usize % pages.len()];
            let mut data = vec![0u8; DB_PAGE];
            data[0] = byte;
            pager.write_page(&mut s, pno, &data).unwrap();
            expect.insert(pno, byte);
        }
        pager.commit(&mut s).unwrap();
        // aborted transaction scribbles over the same pages
        pager.begin(&mut s).unwrap();
        for &(slot, byte) in &aborted {
            let pno = pages[slot as usize % pages.len()];
            let mut data = vec![0u8; DB_PAGE];
            data[0] = byte.wrapping_add(101);
            pager.write_page(&mut s, pno, &data).unwrap();
        }
        pager.rollback(&mut s).unwrap();
        // every page shows exactly the committed state
        for (&pno, &byte) in &expect {
            let got = pager.read_page(&mut s, pno).unwrap();
            assert_eq!(got[0], byte, "case {case}, page {pno}");
        }
        // and the same holds after a clean reopen
        drop(pager);
        let mut pager = Pager::open(&mut s, Box::new(env), "/txn.db", 8).unwrap();
        for (&pno, &byte) in &expect {
            let got = pager.read_page(&mut s, pno).unwrap();
            assert_eq!(got[0], byte, "case {case}, page {pno} after reopen");
        }
    }
}

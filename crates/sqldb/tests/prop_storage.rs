//! Property-based tests of the storage layers (proptest).

use cubicle_core::{IsolationMode, System};
use cubicle_sqldb::btree;
use cubicle_sqldb::pager::{Pager, DB_PAGE};
use cubicle_sqldb::record::{decode_record, encode_index_key, encode_record};
use cubicle_sqldb::storage::HostEnv;
use cubicle_sqldb::SqlValue;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn sys() -> System {
    System::new(IsolationMode::Unikraft)
}

fn arb_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<i64>().prop_map(SqlValue::Integer),
        // avoid NaN: total_cmp treats NaN arbitrarily
        (-1e15f64..1e15f64).prop_map(SqlValue::Real),
        "[a-zA-Z0-9 _%\\-]{0,40}".prop_map(SqlValue::Text),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(SqlValue::Blob),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_encoding_round_trips(values in proptest::collection::vec(arb_value(), 0..12)) {
        let enc = encode_record(&values);
        let dec = decode_record(&enc).unwrap();
        prop_assert_eq!(values, dec);
    }

    #[test]
    fn index_key_order_matches_value_order(a in arb_value(), b in arb_value()) {
        let ka = encode_index_key(std::slice::from_ref(&a), None);
        let kb = encode_index_key(std::slice::from_ref(&b), None);
        let vo = a.total_cmp(&b);
        if vo != std::cmp::Ordering::Equal {
            prop_assert_eq!(ka.cmp(&kb), vo, "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn btree_agrees_with_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u64..200, proptest::collection::vec(any::<u8>(), 0..64)),
            1..120,
        )
    ) {
        let mut s = sys();
        let env = HostEnv::new();
        let mut pager = Pager::open(&mut s, Box::new(env), "/prop.db", 32).unwrap();
        pager.begin(&mut s).unwrap();
        let mut root = btree::create(&mut s, &mut pager).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (op, key_num, val) in ops {
            let key = key_num.to_be_bytes().to_vec();
            match op {
                0 => {
                    root = btree::insert(&mut s, &mut pager, root, &key, &val).unwrap();
                    model.insert(key, val);
                }
                1 => {
                    let removed = btree::delete(&mut s, &mut pager, root, &key).unwrap();
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
                _ => {
                    let got = btree::get(&mut s, &mut pager, root, &key).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key));
                }
            }
        }
        // final full-scan equivalence
        let mut cur = btree::Cursor::seek(&mut s, &mut pager, root, None).unwrap();
        let mut scanned = Vec::new();
        while let Some((k, v)) = cur.next(&mut s, &mut pager).unwrap() {
            scanned.push((k, v));
        }
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
        prop_assert!(btree::validate(&mut s, &mut pager, root).is_ok());
    }

    #[test]
    fn pager_transactions_are_atomic(
        committed in proptest::collection::vec((1u32..20, any::<u8>()), 1..12),
        aborted in proptest::collection::vec((1u32..20, any::<u8>()), 1..12),
    ) {
        let mut s = sys();
        let env = HostEnv::new();
        let mut pager = Pager::open(&mut s, Box::new(env.clone()), "/txn.db", 8).unwrap();
        // committed transaction
        pager.begin(&mut s).unwrap();
        let mut pages = Vec::new();
        for _ in 0..20 {
            pages.push(pager.allocate_page(&mut s).unwrap());
        }
        let mut expect: BTreeMap<u32, u8> = BTreeMap::new();
        for &(slot, byte) in &committed {
            let pno = pages[slot as usize % pages.len()];
            let mut data = vec![0u8; DB_PAGE];
            data[0] = byte;
            pager.write_page(&mut s, pno, &data).unwrap();
            expect.insert(pno, byte);
        }
        pager.commit(&mut s).unwrap();
        // aborted transaction scribbles over the same pages
        pager.begin(&mut s).unwrap();
        for &(slot, byte) in &aborted {
            let pno = pages[slot as usize % pages.len()];
            let mut data = vec![0u8; DB_PAGE];
            data[0] = byte.wrapping_add(101);
            pager.write_page(&mut s, pno, &data).unwrap();
        }
        pager.rollback(&mut s).unwrap();
        // every page shows exactly the committed state
        for (&pno, &byte) in &expect {
            let got = pager.read_page(&mut s, pno).unwrap();
            prop_assert_eq!(got[0], byte, "page {}", pno);
        }
        // and the same holds after a clean reopen
        drop(pager);
        let mut pager = Pager::open(&mut s, Box::new(env), "/txn.db", 8).unwrap();
        for (&pno, &byte) in &expect {
            let got = pager.read_page(&mut s, pno).unwrap();
            prop_assert_eq!(got[0], byte, "page {} after reopen", pno);
        }
    }
}

//! End-to-end SQL tests of the engine over the in-process storage
//! environment (no isolation — pure engine semantics).

use cubicle_core::{IsolationMode, System};
use cubicle_sqldb::storage::HostEnv;
use cubicle_sqldb::{Database, SqlError, SqlValue};

fn setup() -> (System, Database) {
    let mut sys = System::new(IsolationMode::Unikraft);
    let db = Database::open(&mut sys, Box::new(HostEnv::new()), "/test.db").unwrap();
    (sys, db)
}

fn ints(rows: &[Vec<SqlValue>]) -> Vec<i64> {
    rows.iter().map(|r| r[0].as_i64().unwrap()).collect()
}

#[test]
fn create_insert_select() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(a INTEGER, b TEXT)")
        .unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO t VALUES (1,'one'), (2,'two'), (3,'three')",
    )
    .unwrap();
    let rows = db.query(&mut sys, "SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(
        rows[0],
        vec![SqlValue::Integer(1), SqlValue::Text("one".into())]
    );
    assert_eq!(
        rows[2],
        vec![SqlValue::Integer(3), SqlValue::Text("three".into())]
    );
}

#[test]
fn select_star_and_rowid() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(x TEXT)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES ('a'), ('b')")
        .unwrap();
    let rows = db
        .query(&mut sys, "SELECT rowid, x FROM t ORDER BY rowid")
        .unwrap();
    assert_eq!(rows[0][0], SqlValue::Integer(1));
    assert_eq!(rows[1][0], SqlValue::Integer(2));
    let star = db.query(&mut sys, "SELECT * FROM t").unwrap();
    assert_eq!(star.len(), 2);
    assert_eq!(star[0].len(), 1);
}

#[test]
fn integer_primary_key_is_rowid_alias() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (100, 'x')")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t(v) VALUES ('auto')")
        .unwrap();
    let rows = db.query(&mut sys, "SELECT id FROM t ORDER BY id").unwrap();
    assert_eq!(
        ints(&rows),
        vec![100, 101],
        "auto rowid continues after explicit"
    );
    // duplicate pk
    let err = db.execute(&mut sys, "INSERT INTO t VALUES (100, 'dup')");
    assert!(matches!(err, Err(SqlError::Constraint(_))));
}

#[test]
fn where_filters_and_operators() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE n(v INTEGER)").unwrap();
    let values: Vec<String> = (1..=20).map(|i| format!("({i})")).collect();
    db.execute(
        &mut sys,
        &format!("INSERT INTO n VALUES {}", values.join(",")),
    )
    .unwrap();
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE v < 5")
            .unwrap()
            .len(),
        4
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE v BETWEEN 5 AND 10")
            .unwrap()
            .len(),
        6
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE v % 2 = 0")
            .unwrap()
            .len(),
        10
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE v IN (1, 7, 99)")
            .unwrap()
            .len(),
        2
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE v > 18 OR v <= 2")
            .unwrap()
            .len(),
        4
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM n WHERE NOT (v > 2)")
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn null_semantics() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (1), (NULL), (3)")
        .unwrap();
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM t WHERE v IS NULL")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM t WHERE v IS NOT NULL")
            .unwrap()
            .len(),
        2
    );
    // NULL never equals anything
    assert_eq!(
        db.query(&mut sys, "SELECT v FROM t WHERE v = NULL")
            .unwrap()
            .len(),
        0
    );
    // NULLs sort first
    let rows = db.query(&mut sys, "SELECT v FROM t ORDER BY v").unwrap();
    assert_eq!(rows[0][0], SqlValue::Null);
}

#[test]
fn like_patterns() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(s TEXT)").unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO t VALUES ('apple'), ('apricot'), ('banana'), ('Avocado')",
    )
    .unwrap();
    assert_eq!(
        db.query(&mut sys, "SELECT s FROM t WHERE s LIKE 'ap%'")
            .unwrap()
            .len(),
        2
    );
    assert_eq!(
        db.query(&mut sys, "SELECT s FROM t WHERE s LIKE 'a%'")
            .unwrap()
            .len(),
        3,
        "case-insensitive"
    );
    assert_eq!(
        db.query(&mut sys, "SELECT s FROM t WHERE s LIKE '_anana'")
            .unwrap()
            .len(),
        1
    );
    assert_eq!(
        db.query(&mut sys, "SELECT s FROM t WHERE s NOT LIKE '%a%'")
            .unwrap()
            .len(),
        0
    );
}

#[test]
fn update_and_delete() {
    let (mut sys, mut db) = setup();
    db.execute(
        &mut sys,
        "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)",
    )
    .unwrap();
    for i in 1..=10 {
        db.execute(&mut sys, &format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    let r = db
        .execute(&mut sys, "UPDATE t SET v = v * 10 WHERE id <= 3")
        .unwrap();
    assert_eq!(r.rows_affected, 3);
    let rows = db
        .query(&mut sys, "SELECT v FROM t WHERE id <= 3 ORDER BY id")
        .unwrap();
    assert_eq!(ints(&rows), vec![10, 20, 30]);

    let r = db.execute(&mut sys, "DELETE FROM t WHERE v > 25").unwrap();
    assert_eq!(r.rows_affected, 1, "only v=30 exceeds 25");
    let remaining = db.query(&mut sys, "SELECT count(*) FROM t").unwrap();
    assert_eq!(ints(&remaining), vec![9]);
}

#[test]
fn aggregates() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(g TEXT, v INTEGER)")
        .unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO t VALUES ('a',1),('a',2),('b',10),('b',20),('b',NULL)",
    )
    .unwrap();
    let rows = db
        .query(
            &mut sys,
            "SELECT count(*), count(v), sum(v), min(v), max(v), avg(v) FROM t",
        )
        .unwrap();
    assert_eq!(
        rows[0],
        vec![
            SqlValue::Integer(5),
            SqlValue::Integer(4),
            SqlValue::Integer(33),
            SqlValue::Integer(1),
            SqlValue::Integer(20),
            SqlValue::Real(33.0 / 4.0),
        ]
    );
    let rows = db
        .query(
            &mut sys,
            "SELECT g, count(*), sum(v) FROM t GROUP BY g ORDER BY g",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(
        rows[0],
        vec!["a".into(), SqlValue::Integer(2), SqlValue::Integer(3)]
    );
    assert_eq!(
        rows[1],
        vec!["b".into(), SqlValue::Integer(3), SqlValue::Integer(30)]
    );
}

#[test]
fn aggregate_on_empty_table() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
    let rows = db
        .query(&mut sys, "SELECT count(*), sum(v) FROM t")
        .unwrap();
    assert_eq!(rows, vec![vec![SqlValue::Integer(0), SqlValue::Null]]);
}

#[test]
fn order_by_limit_offset_distinct() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (3),(1),(2),(3),(1)")
        .unwrap();
    let rows = db
        .query(&mut sys, "SELECT v FROM t ORDER BY v DESC")
        .unwrap();
    assert_eq!(ints(&rows), vec![3, 3, 2, 1, 1]);
    let rows = db
        .query(&mut sys, "SELECT DISTINCT v FROM t ORDER BY v")
        .unwrap();
    assert_eq!(ints(&rows), vec![1, 2, 3]);
    let rows = db
        .query(&mut sys, "SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(ints(&rows), vec![1, 2]);
}

#[test]
fn joins() {
    let (mut sys, mut db) = setup();
    db.execute(
        &mut sys,
        "CREATE TABLE users(id INTEGER PRIMARY KEY, name TEXT)",
    )
    .unwrap();
    db.execute(
        &mut sys,
        "CREATE TABLE orders(id INTEGER PRIMARY KEY, user_id INTEGER, total INTEGER)",
    )
    .unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO users VALUES (1,'ann'),(2,'bob'),(3,'eve')",
    )
    .unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO orders VALUES (1,1,10),(2,1,20),(3,2,5)",
    )
    .unwrap();
    let rows = db
        .query(
            &mut sys,
            "SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id = u.id \
             ORDER BY o.total",
        )
        .unwrap();
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], vec!["bob".into(), SqlValue::Integer(5)]);
    // aggregate over join
    let rows = db
        .query(
            &mut sys,
            "SELECT u.name, sum(o.total) FROM users u, orders o \
             WHERE o.user_id = u.id GROUP BY u.name ORDER BY u.name",
        )
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec!["ann".into(), SqlValue::Integer(30)],
            vec!["bob".into(), SqlValue::Integer(5)],
        ]
    );
    // three-way join
    db.execute(&mut sys, "CREATE TABLE tags(order_id INTEGER, tag TEXT)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO tags VALUES (1,'rush'),(3,'gift')")
        .unwrap();
    let rows = db
        .query(
            &mut sys,
            "SELECT u.name, t.tag FROM users u, orders o, tags t \
             WHERE o.user_id = u.id AND t.order_id = o.id ORDER BY t.tag",
        )
        .unwrap();
    assert_eq!(
        rows,
        vec![
            vec!["bob".into(), "gift".into()],
            vec!["ann".into(), "rush".into()],
        ]
    );
}

#[test]
fn indexes_used_for_lookups() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(a INTEGER, b TEXT)")
        .unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..2000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO t VALUES ({}, 'v{}')", i % 500, i),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();
    db.execute(&mut sys, "CREATE INDEX ia ON t(a)").unwrap();

    let rows = db
        .query(&mut sys, "SELECT count(*) FROM t WHERE a = 7")
        .unwrap();
    assert_eq!(ints(&rows), vec![4]);
    let rows = db
        .query(&mut sys, "SELECT count(*) FROM t WHERE a BETWEEN 10 AND 12")
        .unwrap();
    assert_eq!(ints(&rows), vec![12]);
    // sanity: the same answer as an unindexed predicate on b
    let rows = db
        .query(&mut sys, "SELECT count(*) FROM t WHERE b = 'v7'")
        .unwrap();
    assert_eq!(ints(&rows), vec![1]);
}

#[test]
fn unique_constraints() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(email TEXT UNIQUE, n INTEGER)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES ('a@x', 1)")
        .unwrap();
    let err = db.execute(&mut sys, "INSERT INTO t VALUES ('a@x', 2)");
    assert!(matches!(err, Err(SqlError::Constraint(_))));
    // NULLs do not collide
    db.execute(&mut sys, "INSERT INTO t VALUES (NULL, 3)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (NULL, 4)")
        .unwrap();
    // unique index created explicitly
    db.execute(&mut sys, "CREATE UNIQUE INDEX un ON t(n)")
        .unwrap();
    let err = db.execute(&mut sys, "INSERT INTO t VALUES ('b@x', 3)");
    assert!(matches!(err, Err(SqlError::Constraint(_))));
}

#[test]
fn not_null_and_defaults() {
    let (mut sys, mut db) = setup();
    db.execute(
        &mut sys,
        "CREATE TABLE t(a INTEGER NOT NULL, b TEXT DEFAULT 'dflt')",
    )
    .unwrap();
    let err = db.execute(&mut sys, "INSERT INTO t(b) VALUES ('x')");
    assert!(matches!(err, Err(SqlError::Constraint(_))));
    db.execute(&mut sys, "INSERT INTO t(a) VALUES (1)").unwrap();
    let rows = db.query(&mut sys, "SELECT b FROM t").unwrap();
    assert_eq!(rows[0][0], SqlValue::Text("dflt".into()));
}

#[test]
fn transactions_commit_and_rollback() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (1)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (2)").unwrap();
    db.execute(&mut sys, "ROLLBACK").unwrap();
    assert_eq!(
        db.query(&mut sys, "SELECT count(*) FROM t").unwrap()[0][0],
        SqlValue::Integer(0)
    );

    db.execute(&mut sys, "BEGIN").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (3)").unwrap();
    db.execute(&mut sys, "COMMIT").unwrap();
    assert_eq!(
        db.query(&mut sys, "SELECT count(*) FROM t").unwrap()[0][0],
        SqlValue::Integer(1)
    );
}

#[test]
fn failed_statement_rolls_back_atomically() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER UNIQUE)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (1)").unwrap();
    // multi-row insert that fails midway must leave no partial rows
    let err = db.execute(&mut sys, "INSERT INTO t VALUES (2), (1), (3)");
    assert!(err.is_err());
    let rows = db.query(&mut sys, "SELECT v FROM t ORDER BY v").unwrap();
    assert_eq!(ints(&rows), vec![1], "partial insert rolled back");
}

#[test]
fn rollback_of_ddl() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "BEGIN").unwrap();
    db.execute(&mut sys, "CREATE TABLE temp_t(v INTEGER)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO temp_t VALUES (1)")
        .unwrap();
    db.execute(&mut sys, "ROLLBACK").unwrap();
    let err = db.query(&mut sys, "SELECT * FROM temp_t");
    assert!(matches!(err, Err(SqlError::NoSuchTable(_))));
}

#[test]
fn persistence_across_reopen() {
    let mut sys = System::new(IsolationMode::Unikraft);
    let env = HostEnv::new();
    {
        let mut db = Database::open(&mut sys, Box::new(env.clone()), "/p.db").unwrap();
        db.execute(&mut sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute(&mut sys, "CREATE INDEX iv ON t(v)").unwrap();
        db.execute(&mut sys, "INSERT INTO t VALUES (1,'hello'), (2,'world')")
            .unwrap();
    }
    let mut db = Database::open(&mut sys, Box::new(env), "/p.db").unwrap();
    let rows = db.query(&mut sys, "SELECT v FROM t WHERE id = 2").unwrap();
    assert_eq!(rows[0][0], SqlValue::Text("world".into()));
    let rows = db
        .query(&mut sys, "SELECT id FROM t WHERE v = 'hello'")
        .unwrap();
    assert_eq!(ints(&rows), vec![1]);
    let check = db.query(&mut sys, "PRAGMA integrity_check").unwrap();
    assert_eq!(check[0][0], SqlValue::Text("ok".into()));
}

#[test]
fn drop_table_and_index() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v INTEGER)").unwrap();
    db.execute(&mut sys, "CREATE INDEX iv ON t(v)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (1)").unwrap();
    db.execute(&mut sys, "DROP INDEX iv").unwrap();
    db.execute(&mut sys, "DROP TABLE t").unwrap();
    assert!(matches!(
        db.query(&mut sys, "SELECT * FROM t"),
        Err(SqlError::NoSuchTable(_))
    ));
    db.execute(&mut sys, "DROP TABLE IF EXISTS t").unwrap();
    assert!(db.execute(&mut sys, "DROP TABLE t").is_err());
    // name can be reused
    db.execute(&mut sys, "CREATE TABLE t(other TEXT)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES ('x')").unwrap();
}

#[test]
fn scalar_functions() {
    let (mut sys, mut db) = setup();
    let rows = db
        .query(
            &mut sys,
            "SELECT length('héllo'), abs(-5), upper('ab'), lower('AB'), \
             substr('abcdef', 2, 3), coalesce(NULL, NULL, 7), ifnull(NULL, 3), \
             nullif(1, 1), min(3, 1, 2), max(3, 1, 2), round(2.567, 2)",
        )
        .unwrap();
    assert_eq!(
        rows[0],
        vec![
            SqlValue::Integer(5),
            SqlValue::Integer(5),
            SqlValue::Text("AB".into()),
            SqlValue::Text("ab".into()),
            SqlValue::Text("bcd".into()),
            SqlValue::Integer(7),
            SqlValue::Integer(3),
            SqlValue::Null,
            SqlValue::Integer(1),
            SqlValue::Integer(3),
            SqlValue::Real(2.57),
        ]
    );
}

#[test]
fn expressions_in_select() {
    let (mut sys, mut db) = setup();
    let rows = db
        .query(
            &mut sys,
            "SELECT 1 + 2 * 3, 10 / 4, 10.0 / 4, 'a' || 'b', 7 % 3",
        )
        .unwrap();
    assert_eq!(
        rows[0],
        vec![
            SqlValue::Integer(7),
            SqlValue::Integer(2),
            SqlValue::Real(2.5),
            SqlValue::Text("ab".into()),
            SqlValue::Integer(1),
        ]
    );
    // division by zero yields NULL
    let rows = db.query(&mut sys, "SELECT 1 / 0, 1 % 0").unwrap();
    assert_eq!(rows[0], vec![SqlValue::Null, SqlValue::Null]);
}

#[test]
fn affinity_applied_on_insert() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(i INTEGER, r REAL, s TEXT)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES ('42', 5, 99)")
        .unwrap();
    let rows = db.query(&mut sys, "SELECT i, r, s FROM t").unwrap();
    assert_eq!(
        rows[0],
        vec![
            SqlValue::Integer(42),
            SqlValue::Real(5.0),
            SqlValue::Text("99".into())
        ]
    );
}

#[test]
fn errors_name_the_object() {
    let (mut sys, mut db) = setup();
    assert!(matches!(
        db.query(&mut sys, "SELECT * FROM missing"),
        Err(SqlError::NoSuchTable(t)) if t == "missing"
    ));
    db.execute(&mut sys, "CREATE TABLE t(a INTEGER)").unwrap();
    assert!(matches!(
        db.query(&mut sys, "SELECT nope FROM t"),
        Err(SqlError::NoSuchColumn(_))
    ));
    assert!(matches!(
        db.execute(&mut sys, "CREATE TABLE t(b INTEGER)"),
        Err(SqlError::AlreadyExists(_))
    ));
}

#[test]
fn large_text_values_overflow_pages() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(v TEXT)").unwrap();
    let big = "z".repeat(10_000);
    db.execute(&mut sys, &format!("INSERT INTO t VALUES ('{big}')"))
        .unwrap();
    let rows = db.query(&mut sys, "SELECT length(v), v FROM t").unwrap();
    assert_eq!(rows[0][0], SqlValue::Integer(10_000));
    assert_eq!(rows[0][1], SqlValue::Text(big));
}

#[test]
fn thousand_row_workload_with_integrity() {
    let (mut sys, mut db) = setup();
    db.execute(
        &mut sys,
        "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER, s TEXT)",
    )
    .unwrap();
    db.execute(&mut sys, "CREATE INDEX iv ON t(v)").unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..1000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO t VALUES ({i}, {}, 'row{i}')", (i * 37) % 100),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();
    db.execute(&mut sys, "UPDATE t SET v = v + 1000 WHERE v < 50")
        .unwrap();
    db.execute(&mut sys, "DELETE FROM t WHERE id % 10 = 0")
        .unwrap();
    let rows = db.query(&mut sys, "SELECT count(*) FROM t").unwrap();
    assert_eq!(ints(&rows), vec![900]);
    let check = db.query(&mut sys, "PRAGMA integrity_check").unwrap();
    assert_eq!(
        check[0][0],
        SqlValue::Text("ok".into()),
        "indexes stay in sync"
    );
}

#[test]
fn alter_table_rename() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE old_name(v INTEGER)")
        .unwrap();
    db.execute(&mut sys, "CREATE INDEX iv ON old_name(v)")
        .unwrap();
    db.execute(&mut sys, "INSERT INTO old_name VALUES (42)")
        .unwrap();
    db.execute(&mut sys, "ALTER TABLE old_name RENAME TO new_name")
        .unwrap();
    assert!(matches!(
        db.query(&mut sys, "SELECT * FROM old_name"),
        Err(SqlError::NoSuchTable(_))
    ));
    let rows = db
        .query(&mut sys, "SELECT v FROM new_name WHERE v = 42")
        .unwrap();
    assert_eq!(ints(&rows), vec![42], "index follows the renamed table");
    // renaming onto an existing name fails
    db.execute(&mut sys, "CREATE TABLE other(x INTEGER)")
        .unwrap();
    assert!(matches!(
        db.execute(&mut sys, "ALTER TABLE new_name RENAME TO other"),
        Err(SqlError::AlreadyExists(_))
    ));
}

#[test]
fn alter_table_add_column() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(a INTEGER)").unwrap();
    db.execute(&mut sys, "INSERT INTO t VALUES (1), (2)")
        .unwrap();
    db.execute(&mut sys, "ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'new'")
        .unwrap();
    // old rows read the default, new rows store real values
    db.execute(&mut sys, "INSERT INTO t VALUES (3, 'explicit')")
        .unwrap();
    let rows = db.query(&mut sys, "SELECT a, b FROM t ORDER BY a").unwrap();
    assert_eq!(
        rows[0],
        vec![SqlValue::Integer(1), SqlValue::Text("new".into())]
    );
    assert_eq!(
        rows[2],
        vec![SqlValue::Integer(3), SqlValue::Text("explicit".into())]
    );
    // filtering on the added column works over old rows too
    let rows = db
        .query(&mut sys, "SELECT count(*) FROM t WHERE b = 'new'")
        .unwrap();
    assert_eq!(ints(&rows), vec![2]);
    // updating an old (short) row materialises the new width
    db.execute(&mut sys, "UPDATE t SET b = 'upd' WHERE a = 1")
        .unwrap();
    let rows = db.query(&mut sys, "SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(rows[0][0], SqlValue::Text("upd".into()));
    let check = db.query(&mut sys, "PRAGMA integrity_check").unwrap();
    assert_eq!(check[0][0], SqlValue::Text("ok".into()));
}

#[test]
fn alter_add_column_constraints() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(a INTEGER)").unwrap();
    assert!(
        db.execute(&mut sys, "ALTER TABLE t ADD COLUMN a TEXT")
            .is_err(),
        "duplicate"
    );
    assert!(
        db.execute(&mut sys, "ALTER TABLE t ADD COLUMN b INTEGER NOT NULL")
            .is_err(),
        "NOT NULL without default"
    );
    assert!(
        db.execute(&mut sys, "ALTER TABLE t ADD COLUMN c INTEGER PRIMARY KEY")
            .is_err(),
        "no new primary keys"
    );
    db.execute(
        &mut sys,
        "ALTER TABLE t ADD COLUMN d INTEGER NOT NULL DEFAULT 0",
    )
    .unwrap();
}

#[test]
fn having_filters_groups() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE t(g INTEGER, v INTEGER)")
        .unwrap();
    db.execute(
        &mut sys,
        "INSERT INTO t VALUES (1,10),(1,20),(2,5),(3,1),(3,2),(3,3)",
    )
    .unwrap();
    let rows = db
        .query(
            &mut sys,
            "SELECT g, count(*) FROM t GROUP BY g HAVING count(*) >= 2 ORDER BY g",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], SqlValue::Integer(1));
    assert_eq!(rows[1][0], SqlValue::Integer(3));
    // HAVING over an aggregate not in the select list
    let rows = db
        .query(
            &mut sys,
            "SELECT g FROM t GROUP BY g HAVING sum(v) > 20 ORDER BY g",
        )
        .unwrap();
    assert_eq!(ints(&rows), vec![1]);
    // HAVING without aggregation is a misuse error
    assert!(db.query(&mut sys, "SELECT v FROM t HAVING v > 1").is_err());
}

#[test]
fn planner_uses_indexes_instead_of_scanning() {
    // Observable effect: a point query via an index touches far fewer
    // pages than a full scan of the same table.
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE big(a INTEGER, payload TEXT)")
        .unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..3000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO big VALUES ({i}, '{}')", "p".repeat(100)),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();
    db.execute(&mut sys, "CREATE INDEX ia ON big(a)").unwrap();

    let pages_touched = |db: &mut Database, sys: &mut System, sql: &str| {
        let before = db.pager_stats();
        db.query(sys, sql).unwrap();
        let after = db.pager_stats();
        (after.hits + after.misses) - (before.hits + before.misses)
    };
    let indexed = pages_touched(&mut db, &mut sys, "SELECT payload FROM big WHERE a = 1500");
    let scanned = pages_touched(
        &mut db,
        &mut sys,
        "SELECT payload FROM big WHERE payload = 'z'",
    );
    assert!(
        indexed * 10 < scanned,
        "index probe ({indexed} pages) must beat full scan ({scanned} pages)"
    );
    // rowid access beats even the index (no index btree walk)
    let by_rowid = pages_touched(
        &mut db,
        &mut sys,
        "SELECT payload FROM big WHERE rowid = 1500",
    );
    assert!(by_rowid <= indexed);
}

#[test]
fn join_probes_inner_table_by_index() {
    let (mut sys, mut db) = setup();
    db.execute(&mut sys, "CREATE TABLE outer_t(k INTEGER)")
        .unwrap();
    db.execute(&mut sys, "CREATE TABLE inner_t(k INTEGER, v TEXT)")
        .unwrap();
    db.execute(&mut sys, "CREATE INDEX ik ON inner_t(k)")
        .unwrap();
    db.execute(&mut sys, "BEGIN").unwrap();
    for i in 0..40 {
        db.execute(&mut sys, &format!("INSERT INTO outer_t VALUES ({i})"))
            .unwrap();
    }
    for i in 0..2000 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO inner_t VALUES ({}, 'v{i}')", i % 500),
        )
        .unwrap();
    }
    db.execute(&mut sys, "COMMIT").unwrap();
    let before = db.pager_stats();
    let rows = db
        .query(
            &mut sys,
            "SELECT count(*) FROM outer_t o, inner_t i WHERE i.k = o.k",
        )
        .unwrap();
    let after = db.pager_stats();
    assert_eq!(ints(&rows), vec![160], "40 outer keys × 4 matches each");
    let touched = (after.hits + after.misses) - (before.hits + before.misses);
    // nested loop WITHOUT the index would touch ~40 × full-table pages
    // (tens of thousands); with probes it stays small
    assert!(
        touched < 5_000,
        "join touched {touched} pages — index probe not used?"
    );
}

//! The paper's Figure 8 deployment: SQLITE → VFSCORE → RAMFS (+ ALLOC,
//! TIME, PLAT, shared LIBC), with the engine's every file operation a
//! windowed cross-cubicle call.

use cubicle_core::{impl_component, ComponentImage, CubicleId, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_sqldb::storage::CubicleEnv;
use cubicle_sqldb::{Database, SqlValue};
use cubicle_ukbase::boot_base;
use cubicle_vfs::{Vfs, VfsPort, VfsProxy};

struct SqliteApp;
impl_component!(SqliteApp);

struct Deployment {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    ramfs_cid: CubicleId,
}

fn boot(mode: IsolationMode) -> Deployment {
    let mut sys = System::new(mode);
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    let app = sys
        .load(
            ComponentImage::new("SQLITE", CodeImage::plain(64 * 1024)).heap_pages(256),
            Box::new(SqliteApp),
        )
        .unwrap();
    sys.mark_boot_complete();
    Deployment {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).unwrap(),
        ramfs_cid: ramfs_loaded.cid,
    }
}

fn open_db(dep: &mut Deployment) -> Database {
    let (app, vfs, ramfs) = (dep.app, dep.vfs, dep.ramfs_cid);
    dep.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &[ramfs]).unwrap();
        Database::open(sys, Box::new(CubicleEnv::new(port)), "/app.db").unwrap()
    })
}

fn in_app<T>(
    dep: &mut Deployment,
    db: &mut Database,
    f: impl FnOnce(&mut System, &mut Database) -> T,
) -> T {
    let app = dep.app;
    dep.sys.run_in_cubicle(app, |sys| f(sys, db))
}

#[test]
fn sql_over_the_cubicle_stack() {
    let mut dep = boot(IsolationMode::Full);
    let mut db = open_db(&mut dep);
    in_app(&mut dep, &mut db, |sys, db| {
        db.execute(sys, "CREATE TABLE kv(k TEXT UNIQUE, v INTEGER)")
            .unwrap();
        db.execute(sys, "INSERT INTO kv VALUES ('alpha', 1), ('beta', 2)")
            .unwrap();
        let rows = db.query(sys, "SELECT v FROM kv WHERE k = 'beta'").unwrap();
        assert_eq!(rows, vec![vec![SqlValue::Integer(2)]]);
    });
    // the data went through real windows: faults were resolved
    assert!(
        dep.sys.stats().faults_resolved > 0,
        "trap-and-map must have run"
    );
    assert_eq!(dep.sys.stats().faults_denied, 0, "no isolation violations");
}

#[test]
fn figure8_cubicle_graph_edges() {
    let mut dep = boot(IsolationMode::Full);
    let mut db = open_db(&mut dep);
    in_app(&mut dep, &mut db, |sys, db| {
        db.execute(sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, s TEXT)")
            .unwrap();
        db.execute(sys, "BEGIN").unwrap();
        for i in 0..200 {
            db.execute(
                sys,
                &format!("INSERT INTO t VALUES ({i}, 'row number {i}')"),
            )
            .unwrap();
        }
        db.execute(sys, "COMMIT").unwrap();
        // Fold the WAL back into the db file through the same windowed
        // stack (the write-back half of the commit path).
        let ck = db.query(sys, "PRAGMA wal_checkpoint").unwrap();
        assert_eq!(ck[0][0], SqlValue::Text("ok".into()));
        let rows = db.query(sys, "SELECT count(*) FROM t").unwrap();
        assert_eq!(rows[0][0], SqlValue::Integer(200));
    });
    let sys = &dep.sys;
    let (_, stats) = sys.since_boot();
    let vfs = sys.find_cubicle("VFSCORE").unwrap();
    let ramfs = sys.find_cubicle("RAMFS").unwrap();
    let alloc = sys.find_cubicle("ALLOC").unwrap();
    // Figure 8 shape: hot SQLITE→VFSCORE and VFSCORE→RAMFS edges, sparse
    // RAMFS→ALLOC, and no direct SQLITE→RAMFS edge.
    assert!(
        stats.edge(dep.app, vfs) > 20,
        "hot edge, got {}",
        stats.edge(dep.app, vfs)
    );
    assert!(
        stats.edge(vfs, ramfs) > 20,
        "hot edge, got {}",
        stats.edge(vfs, ramfs)
    );
    assert!(stats.edge(ramfs, alloc) >= 1);
    assert_eq!(stats.edge(dep.app, ramfs), 0);
    assert!(stats.edge(ramfs, alloc) * 10 < stats.edge(vfs, ramfs));
}

#[test]
fn persistence_via_ramfs_across_reopen() {
    let mut dep = boot(IsolationMode::Full);
    let mut db = open_db(&mut dep);
    in_app(&mut dep, &mut db, |sys, db| {
        db.execute(sys, "CREATE TABLE t(v TEXT)").unwrap();
        db.execute(sys, "INSERT INTO t VALUES ('persisted')")
            .unwrap();
    });
    drop(db);
    // reopen a fresh connection over the same RAMFS
    let mut db2 = open_db(&mut dep);
    in_app(&mut dep, &mut db2, |sys, db| {
        let rows = db.query(sys, "SELECT v FROM t").unwrap();
        assert_eq!(rows, vec![vec![SqlValue::Text("persisted".into())]]);
        let check = db.query(sys, "PRAGMA integrity_check").unwrap();
        assert_eq!(check[0][0], SqlValue::Text("ok".into()));
    });
}

#[test]
fn transactions_and_rollback_through_the_stack() {
    let mut dep = boot(IsolationMode::Full);
    let mut db = open_db(&mut dep);
    in_app(&mut dep, &mut db, |sys, db| {
        db.execute(sys, "CREATE TABLE t(v INTEGER)").unwrap();
        db.execute(sys, "BEGIN").unwrap();
        db.execute(sys, "INSERT INTO t VALUES (1)").unwrap();
        db.execute(sys, "ROLLBACK").unwrap();
        assert_eq!(
            db.query(sys, "SELECT count(*) FROM t").unwrap()[0][0],
            SqlValue::Integer(0)
        );
        db.execute(sys, "INSERT INTO t VALUES (2)").unwrap();
        assert_eq!(
            db.query(sys, "SELECT count(*) FROM t").unwrap()[0][0],
            SqlValue::Integer(1)
        );
    });
}

#[test]
fn same_results_in_all_isolation_modes() {
    let mut reference: Option<Vec<Vec<SqlValue>>> = None;
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut dep = boot(mode);
        let mut db = open_db(&mut dep);
        let rows = in_app(&mut dep, &mut db, |sys, db| {
            db.execute(sys, "CREATE TABLE t(a INTEGER, b TEXT)")
                .unwrap();
            db.execute(sys, "CREATE INDEX ia ON t(a)").unwrap();
            for i in 0..50 {
                db.execute(sys, &format!("INSERT INTO t VALUES ({}, 'x{i}')", i % 7))
                    .unwrap();
            }
            db.query(sys, "SELECT a, count(*) FROM t GROUP BY a ORDER BY a")
                .unwrap()
        });
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(&rows, r, "{mode:?} must not change results"),
        }
    }
}

#[test]
fn isolation_costs_are_ordered_for_sql_work() {
    // The Figure 6 premise at miniature scale: the same SQL workload gets
    // monotonically more expensive as isolation mechanisms are enabled.
    fn cycles(mode: IsolationMode) -> u64 {
        let mut dep = boot(mode);
        let mut db = open_db(&mut dep);
        in_app(&mut dep, &mut db, |sys, db| {
            let t0 = sys.now();
            db.execute(sys, "CREATE TABLE t(v INTEGER)").unwrap();
            for i in 0..50 {
                db.execute(sys, &format!("INSERT INTO t VALUES ({i})"))
                    .unwrap();
            }
            db.query(sys, "SELECT sum(v) FROM t").unwrap();
            sys.now() - t0
        })
    }
    let unikraft = cycles(IsolationMode::Unikraft);
    let no_mpk = cycles(IsolationMode::NoMpk);
    let no_acl = cycles(IsolationMode::NoAcl);
    let full = cycles(IsolationMode::Full);
    assert!(unikraft < no_mpk, "{unikraft} < {no_mpk}");
    assert!(no_mpk < no_acl, "{no_mpk} < {no_acl}");
    assert!(no_acl < full, "{no_acl} < {full}");
}

//! Torn-write property test: truncate the WAL at **every byte boundary**
//! of a seeded multi-transaction run and assert that recovery yields
//! exactly the committed prefix — never a torn frame, never a lost
//! committed transaction, never a panic.

use cubicle_core::{IsolationMode, System};
use cubicle_sqldb::pager::{Pager, DB_PAGE};
use cubicle_sqldb::storage::{HostEnv, StorageEnv};
use cubicle_sqldb::wal::{wal_path, WAL_HEADER};
use cubicle_sqldb::{Database, SqlValue};
use std::collections::HashMap;

const DB: &str = "/torn.db";

/// SplitMix64: tiny, seedable, good enough to pick pages and payloads.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn slurp(sys: &mut System, env: &mut HostEnv, path: &str) -> Vec<u8> {
    let mut f = env.open(sys, path).unwrap();
    let n = f.size(sys).unwrap() as usize;
    let mut buf = vec![0u8; n];
    if n > 0 {
        assert_eq!(f.pread(sys, 0, &mut buf).unwrap(), n);
    }
    buf
}

fn plant(sys: &mut System, env: &mut HostEnv, path: &str, bytes: &[u8]) {
    let mut f = env.open(sys, path).unwrap();
    if !bytes.is_empty() {
        f.pwrite(sys, 0, bytes).unwrap();
    }
}

fn page_image(tag: u64, fill: u8) -> Vec<u8> {
    let mut page = vec![fill; DB_PAGE];
    page[..8].copy_from_slice(&tag.to_le_bytes());
    page
}

/// Pager-level sweep: a crash may cut the log at any byte. Whatever the
/// cut, reopening must reconstruct the newest fully-committed state and
/// nothing newer.
#[test]
fn every_byte_truncation_recovers_exactly_the_committed_prefix() {
    let mut sys = System::new(IsolationMode::Unikraft);
    let mut env = HostEnv::new();
    let mut rng = Rng(0x0C0F_FEE0_0A11_5EED);
    let mut pager = Pager::open(&mut sys, Box::new(env.clone()), DB, 8).unwrap();

    // Page contents keyed by pno: (tag, fill).
    type PageState = HashMap<u32, (u64, u8)>;
    let mut live: Vec<u32> = Vec::new();
    let mut state: PageState = HashMap::new();
    // After each commit: (committed WAL end, page_count, page contents).
    let mut boundaries: Vec<(u64, u32, PageState)> = Vec::new();

    for _txn in 0..3 {
        pager.begin(&mut sys).unwrap();
        let writes = 1 + (rng.next() % 2) as usize;
        for _ in 0..writes {
            let pno = if !live.is_empty() && rng.next().is_multiple_of(2) {
                live[(rng.next() as usize) % live.len()]
            } else {
                let p = pager.allocate_page(&mut sys).unwrap();
                live.push(p);
                p
            };
            let (tag, fill) = (rng.next(), (rng.next() & 0xFF) as u8);
            pager
                .write_page(&mut sys, pno, &page_image(tag, fill))
                .unwrap();
            state.insert(pno, (tag, fill));
        }
        pager.commit(&mut sys).unwrap();
        boundaries.push((pager.wal_committed_end(), pager.page_count(), state.clone()));
    }
    drop(pager);

    let db_bytes = slurp(&mut sys, &mut env, DB);
    let wal_bytes = slurp(&mut sys, &mut env, &wal_path(DB));
    assert_eq!(
        boundaries.last().unwrap().0,
        wal_bytes.len() as u64,
        "the run must end on a committed, synced frame"
    );

    for t in 0..=wal_bytes.len() {
        let mut env2 = HostEnv::new();
        plant(&mut sys, &mut env2, DB, &db_bytes);
        plant(&mut sys, &mut env2, &wal_path(DB), &wal_bytes[..t]);
        let mut p = Pager::open(&mut sys, Box::new(env2.clone()), DB, 8)
            .unwrap_or_else(|e| panic!("recovery at offset {t} failed: {e}"));
        match boundaries.iter().rev().find(|b| b.0 <= t as u64) {
            None => {
                // Cut before the first commit record: a fresh database.
                assert_eq!(p.page_count(), 1, "offset {t}: expected pre-commit state");
                assert_eq!(p.wal_committed_end(), WAL_HEADER, "offset {t}");
            }
            Some((end, pc, snap)) => {
                assert_eq!(p.page_count(), *pc, "offset {t}: wrong page_count");
                assert_eq!(
                    p.wal_committed_end(),
                    *end,
                    "offset {t}: wrong committed end"
                );
                for (&pno, &(tag, fill)) in snap {
                    let page = p.read_page(&mut sys, pno).unwrap();
                    assert_eq!(
                        &page[..8],
                        &tag.to_le_bytes(),
                        "offset {t}: page {pno} tag mismatch"
                    );
                    assert!(
                        page[8..].iter().all(|&b| b == fill),
                        "offset {t}: page {pno} body mismatch"
                    );
                }
            }
        }
    }
    assert!(sys.stats().wal_replays > 0, "replays must be counted");
    assert!(
        sys.stats().wal_torn_tails_discarded > 0,
        "mid-frame cuts must be counted as torn tails"
    );
}

fn reopen_and_check(
    sys: &mut System,
    db_bytes: &[u8],
    wal_prefix: &[u8],
    expect_rows: Option<i64>,
) {
    let mut env = HostEnv::new();
    plant(sys, &mut env, DB, db_bytes);
    plant(sys, &mut env, &wal_path(DB), wal_prefix);
    let mut db = Database::open(sys, Box::new(env.clone()), DB)
        .unwrap_or_else(|e| panic!("open at {} bytes failed: {e}", wal_prefix.len()));
    match expect_rows {
        Some(n) => {
            let rows = db.query(sys, "SELECT count(*) FROM t").unwrap();
            assert_eq!(
                rows[0][0],
                SqlValue::Integer(n),
                "at {} bytes",
                wal_prefix.len()
            );
            let check = db.query(sys, "PRAGMA integrity_check").unwrap();
            assert_eq!(check[0][0], SqlValue::Text("ok".into()));
        }
        None => {
            // The CREATE TABLE itself was torn off: no table may exist.
            assert!(
                db.query(sys, "SELECT count(*) FROM t").is_err(),
                "table must not exist before its CREATE committed"
            );
        }
    }
}

/// SQL-level replay: cut the log exactly on each commit boundary (that
/// transaction survives) and a few bytes short of it (the commit record
/// is torn, the transaction vanishes atomically).
#[test]
fn sql_replay_at_and_inside_commit_boundaries() {
    let mut sys = System::new(IsolationMode::Unikraft);
    let mut env = HostEnv::new();
    let mut db = Database::open(&mut sys, Box::new(env.clone()), DB).unwrap();

    let mut boundaries: Vec<(u64, i64)> = Vec::new();
    db.execute(&mut sys, "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    boundaries.push((db.pager_mut().wal_committed_end(), 0));
    for i in 0..5i64 {
        db.execute(
            &mut sys,
            &format!("INSERT INTO t VALUES ({i}, 'payload {i}')"),
        )
        .unwrap();
        boundaries.push((db.pager_mut().wal_committed_end(), i + 1));
    }
    drop(db);

    let db_bytes = slurp(&mut sys, &mut env, DB);
    let wal_bytes = slurp(&mut sys, &mut env, &wal_path(DB));

    for (i, &(end, rows)) in boundaries.iter().enumerate() {
        let end = end as usize;
        reopen_and_check(&mut sys, &db_bytes, &wal_bytes[..end], Some(rows));
        let prev = if i == 0 {
            None
        } else {
            Some(boundaries[i - 1].1)
        };
        reopen_and_check(&mut sys, &db_bytes, &wal_bytes[..end - 7], prev);
    }
}

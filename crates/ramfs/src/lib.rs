//! # cubicle-ramfs — the `RAMFS` file-system backend
//!
//! Unikraft's in-memory file system, ported to CubicleOS as an isolated
//! cubicle. `RAMFS` fills in the callback table defined by `VFSCORE`
//! ([`cubicle_vfs::FsOps`]) — the configuration whose separation into its
//! own compartment is the paper's headline experiment (Figures 9 & 10:
//! splitting `RAMFS` out of the VFS costs 4–7× on microkernels but only
//! 1.4× on CubicleOS).
//!
//! File *contents* live in simulated memory owned by the `RAMFS` cubicle
//! (page-sized extents); the data path between a caller's buffer and an
//! extent is a real cross-cubicle `memcpy`, authorised by the caller's
//! windows through trap-and-map. Extent pages are drawn from a local
//! pool, refilled in coarse chunks from the system-wide `ALLOC` cubicle —
//! reproducing Figure 8's sparse `RAMFS → ALLOC` edge.
//!
//! Crash consistency: [`install_journal`] places a redo journal of the
//! inode table and file extents ([`journal`]) in pages owned by a
//! *custodian* cubicle (normally `VFSCORE`), reachable through a window
//! that survives a `RAMFS` quarantine. The restart hook replays it, so a
//! microrebooted `RAMFS` comes back with its files instead of empty —
//! see DESIGN.md §6k and `tests/journal_reboot.rs`.

pub mod journal;
mod ramfs;

pub use ramfs::{fs_ops, image, install_journal, mount_at, Ramfs, POOL_CHUNK_PAGES};

//! Crash-surviving redo journal for the `RAMFS` inode table.
//!
//! A quarantine reclaims every page the offending cubicle *owns* — for
//! `RAMFS` that is all file extents plus its heap, which is why a
//! microrebooted file system comes back empty. The journal sidesteps the
//! blast radius by living in pages owned by a surviving **custodian**
//! cubicle: the custodian allocates the region, opens a window over it
//! for `RAMFS`, and from then on every namespace mutation is appended
//! through that window *before* it is applied. Quarantining `RAMFS`
//! destroys `RAMFS`'s windows and pages, but the custodian's pages — and
//! the ACL it granted — survive untouched, so the restart hook can read
//! the log back under the reborn cubicle's own privileges and redo every
//! acknowledged operation.
//!
//! ## On-region layout
//!
//! ```text
//! header (32 bytes):
//!   magic   "CBFSJRN1"                  8 bytes
//!   len     valid record bytes          u64 LE
//!   seq     records ever appended       u64 LE
//!   flags   bit 0 = journal disabled    u64 LE
//! records, back to back after the header:
//!   tag     u8 (1=create 2=remove 3=write 4=truncate)
//!   body    per-tag fields, integers LE
//!   check   u64 LE — chained FNV-1a over tag ‖ body, seeded with the
//!           previous record's checksum (the first record seeds from the
//!           FNV offset basis)
//! ```
//!
//! ## Crash ordering
//!
//! Appends write the record bytes first and update `len` (one 8-byte
//! store) last. A crash mid-append leaves `len` pointing before the
//! partial record, so replay never sees it — the same torn-tail
//! discipline as the sqldb WAL, with the header's `len` standing in for
//! the commit record. The chained checksum rejects any record whose
//! bytes did land but whose predecessors did not.
//!
//! When the region fills up, the journal is rewritten in place as a
//! snapshot of the live tree (compaction). If even the snapshot does not
//! fit, the journal flags itself disabled on-region and stops journaling
//! rather than replaying a lie.

use cubicle_core::{Result, System};
use cubicle_mpk::{VAddr, PAGE_SIZE};

/// Region header magic.
pub const JOURNAL_MAGIC: &[u8; 8] = b"CBFSJRN1";

/// Region header size in bytes.
pub const JOURNAL_HEADER: u64 = 32;

/// Header flag: journal overflowed and is no longer maintained.
pub const FLAG_DISABLED: u64 = 1;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// An address far outside anything the monitor maps: touching it from
/// inside an append is the crash-injection hook (the kernel quarantines
/// the toucher mid-append, after the record bytes but before `len`).
const WILD: VAddr = VAddr::new(0x0FFF_0000);

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One redo record. Inode numbers are explicit so replay cannot drift
/// from the order the original operations assigned them in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// `ino` was created under directory `parent` as `name`.
    Create {
        /// Assigned inode number.
        ino: u32,
        /// Parent directory inode.
        parent: u32,
        /// Entry name within the parent.
        name: String,
        /// Directory (true) or regular file (false).
        is_dir: bool,
    },
    /// `ino` was unlinked from `parent`.
    Remove {
        /// Removed inode number.
        ino: u32,
        /// Parent directory inode.
        parent: u32,
        /// Entry name within the parent.
        name: String,
    },
    /// `data` was written into `ino` at byte offset `off`.
    Write {
        /// Target inode.
        ino: u32,
        /// Byte offset of the write.
        off: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// `ino` was truncated (or extended, zero-filled) to `len` bytes.
    Truncate {
        /// Target inode.
        ino: u32,
        /// New length.
        len: u64,
    },
}

impl JournalRecord {
    /// Serialises tag + body (checksum appended separately).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            JournalRecord::Create {
                ino,
                parent,
                name,
                is_dir,
            } => {
                out.push(1);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&parent.to_le_bytes());
                out.push(u8::from(*is_dir));
                let name = name.as_bytes();
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name);
            }
            JournalRecord::Remove { ino, parent, name } => {
                out.push(2);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&parent.to_le_bytes());
                let name = name.as_bytes();
                out.extend_from_slice(&(name.len() as u16).to_le_bytes());
                out.extend_from_slice(name);
            }
            JournalRecord::Write { ino, off, data } => {
                out.push(3);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                out.extend_from_slice(data);
            }
            JournalRecord::Truncate { ino, len } => {
                out.push(4);
                out.extend_from_slice(&ino.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    /// Parses one record at `bytes[pos..]`; returns `(record, bytes
    /// consumed including checksum)` or `None` on a short / malformed /
    /// checksum-failing suffix (the torn tail).
    fn decode(bytes: &[u8], pos: usize, chain: u64) -> Option<(JournalRecord, usize, u64)> {
        let tail = &bytes[pos..];
        if tail.is_empty() {
            return None;
        }
        let body_len = match tail[0] {
            1 => {
                if tail.len() < 12 {
                    return None;
                }
                let name_len = u16::from_le_bytes(tail[10..12].try_into().ok()?) as usize;
                12 + name_len
            }
            2 => {
                if tail.len() < 11 {
                    return None;
                }
                let name_len = u16::from_le_bytes(tail[9..11].try_into().ok()?) as usize;
                11 + name_len
            }
            3 => {
                if tail.len() < 17 {
                    return None;
                }
                let data_len = u32::from_le_bytes(tail[13..17].try_into().ok()?) as usize;
                17 + data_len
            }
            4 => 13,
            _ => return None,
        };
        if tail.len() < body_len + 8 {
            return None;
        }
        let want = u64::from_le_bytes(tail[body_len..body_len + 8].try_into().ok()?);
        let got = fnv1a(chain, &tail[..body_len]);
        if want != got {
            return None;
        }
        let rec = match tail[0] {
            1 => JournalRecord::Create {
                ino: u32::from_le_bytes(tail[1..5].try_into().ok()?),
                parent: u32::from_le_bytes(tail[5..9].try_into().ok()?),
                is_dir: tail[9] != 0,
                name: String::from_utf8(tail[12..body_len].to_vec()).ok()?,
            },
            2 => JournalRecord::Remove {
                ino: u32::from_le_bytes(tail[1..5].try_into().ok()?),
                parent: u32::from_le_bytes(tail[5..9].try_into().ok()?),
                name: String::from_utf8(tail[11..body_len].to_vec()).ok()?,
            },
            3 => JournalRecord::Write {
                ino: u32::from_le_bytes(tail[1..5].try_into().ok()?),
                off: u64::from_le_bytes(tail[5..13].try_into().ok()?),
                data: tail[17..body_len].to_vec(),
            },
            4 => JournalRecord::Truncate {
                ino: u32::from_le_bytes(tail[1..5].try_into().ok()?),
                len: u64::from_le_bytes(tail[5..13].try_into().ok()?),
            },
            _ => unreachable!("matched above"),
        };
        Some((rec, body_len + 8, got))
    }
}

/// What [`Journal::append`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Record is on the region; safe to apply the operation.
    Logged,
    /// Region is full; the caller must compact (or disable) before the
    /// operation may proceed.
    Full,
    /// Journal is disabled (overflowed earlier); nothing was logged.
    Disabled,
}

/// Host-side handle to the custodian-owned journal region. The handle
/// itself survives a microreboot (component state is retained across
/// restarts); everything it *caches* is re-derivable from the region.
#[derive(Debug)]
pub struct Journal {
    base: VAddr,
    capacity: u64,
    /// Cached mirror of the header's `len` field.
    len: u64,
    /// Cached mirror of the header's `seq` field.
    seq: u64,
    /// Chained checksum of the last valid record.
    chain: u64,
    /// Journal gave up after an overflow the snapshot could not cure.
    pub disabled: bool,
    /// Records appended over the journal's lifetime (statistics).
    pub appends: u64,
    /// Snapshot rewrites performed (statistics).
    pub compactions: u64,
    /// Crash-injection hook: after this many more appends, touch wild
    /// memory *between* the record bytes and the `len` update.
    crash_after: Option<u64>,
}

impl Journal {
    /// Attaches to a freshly formatted region of `pages` pages at
    /// `base`. Call [`Journal::format`] (or have the custodian zero the
    /// region) before the first append.
    pub fn new(base: VAddr, pages: usize) -> Journal {
        Journal {
            base,
            capacity: (pages * PAGE_SIZE) as u64,
            len: 0,
            seq: 0,
            chain: FNV_OFFSET,
            disabled: false,
            appends: 0,
            compactions: 0,
            crash_after: None,
        }
    }

    /// Writes an empty header. Runs with the *current* cubicle's
    /// privileges — the custodian formats its own pages directly; `RAMFS`
    /// would need its window.
    ///
    /// # Errors
    ///
    /// Checked-memory errors (window denied, unmapped region).
    pub fn format(&mut self, sys: &mut System) -> Result<()> {
        self.len = 0;
        self.seq = 0;
        self.chain = FNV_OFFSET;
        self.disabled = false;
        let mut header = [0u8; JOURNAL_HEADER as usize];
        header[..8].copy_from_slice(JOURNAL_MAGIC);
        sys.write(self.base, &header)
    }

    /// Arms (or disarms) the crash-injection hook.
    pub fn set_crash_after(&mut self, appends: Option<u64>) {
        self.crash_after = appends;
    }

    /// Bytes of live records (excluding the header).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// No records logged?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Region capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn write_header(&mut self, sys: &mut System) -> Result<()> {
        let mut header = [0u8; JOURNAL_HEADER as usize];
        header[..8].copy_from_slice(JOURNAL_MAGIC);
        header[8..16].copy_from_slice(&self.len.to_le_bytes());
        header[16..24].copy_from_slice(&self.seq.to_le_bytes());
        header[24..32].copy_from_slice(&u64::from(self.disabled).to_le_bytes());
        sys.write(self.base, &header)
    }

    /// Appends one record: bytes first, `len` last. Returns
    /// [`AppendOutcome::Full`] without touching the region when the
    /// record does not fit — the caller compacts and retries.
    ///
    /// # Errors
    ///
    /// Checked-memory errors; with the crash hook armed, the wild-access
    /// error from mid-append (the record bytes are on-region, `len` is
    /// not — exactly the torn state replay must discard).
    pub fn append(&mut self, sys: &mut System, rec: &JournalRecord) -> Result<AppendOutcome> {
        if self.disabled {
            return Ok(AppendOutcome::Disabled);
        }
        let body = rec.encode();
        let check = fnv1a(self.chain, &body);
        let total = body.len() as u64 + 8;
        if JOURNAL_HEADER + self.len + total > self.capacity {
            return Ok(AppendOutcome::Full);
        }
        let off = self.base + (JOURNAL_HEADER + self.len) as usize;
        sys.write(off, &body)?;
        sys.write(off + body.len(), &check.to_le_bytes())?;
        if let Some(n) = self.crash_after {
            if n == 0 {
                self.crash_after = None;
                // Record bytes are down, `len` is not: the injected
                // quarantine lands exactly in the torn-append window.
                sys.read_vec(WILD, 8)?;
            } else {
                self.crash_after = Some(n - 1);
            }
        }
        self.len += total;
        self.seq += 1;
        self.chain = check;
        self.appends += 1;
        self.write_header(sys)?;
        Ok(AppendOutcome::Logged)
    }

    /// Flags the journal disabled, on-region and in the handle: replay
    /// after this point reports "not replayable" instead of lying.
    ///
    /// # Errors
    ///
    /// Checked-memory errors.
    pub fn disable(&mut self, sys: &mut System) -> Result<()> {
        self.disabled = true;
        self.write_header(sys)
    }

    /// Rewrites the region as `snapshot` (compaction). Returns `false` —
    /// and flags the journal disabled on-region — when even the snapshot
    /// does not fit.
    ///
    /// # Errors
    ///
    /// Checked-memory errors.
    pub fn rewrite(&mut self, sys: &mut System, snapshot: &[JournalRecord]) -> Result<bool> {
        let mut bytes = Vec::new();
        let mut chain = FNV_OFFSET;
        for rec in snapshot {
            let body = rec.encode();
            chain = fnv1a(chain, &body);
            bytes.extend_from_slice(&body);
            bytes.extend_from_slice(&chain.to_le_bytes());
        }
        if JOURNAL_HEADER + bytes.len() as u64 > self.capacity {
            self.disabled = true;
            self.write_header(sys)?;
            return Ok(false);
        }
        // Order within the rewrite: invalidate (len = 0) first, then the
        // snapshot bytes, then publish the new len. A crash at any point
        // loses at most the ops folded into the snapshot *since the
        // journal only compacts state it already made durable, replaying
        // the shorter prefix under-approximates — it never invents*.
        self.len = 0;
        self.write_header(sys)?;
        sys.write(self.base + JOURNAL_HEADER as usize, &bytes)?;
        self.len = bytes.len() as u64;
        self.seq += snapshot.len() as u64;
        self.chain = chain;
        self.compactions += 1;
        self.write_header(sys)?;
        Ok(true)
    }

    /// Reads the region back and returns every intact record, stopping
    /// at the first torn or checksum-failing suffix. Re-syncs the cached
    /// `len`/`chain` to what was actually recovered. Runs with the
    /// current cubicle's privileges (the restart hook runs inside the
    /// reborn `RAMFS`, resolving through the custodian's window).
    ///
    /// # Errors
    ///
    /// Checked-memory errors. A bad magic or a disabled flag yields
    /// `Ok(None)`: the journal is not replayable.
    pub fn replay(&mut self, sys: &mut System) -> Result<Option<Vec<JournalRecord>>> {
        let header = sys.read_vec(self.base, JOURNAL_HEADER as usize)?;
        if &header[..8] != JOURNAL_MAGIC {
            return Ok(None);
        }
        let len = u64::from_le_bytes(header[8..16].try_into().expect("8"));
        let seq = u64::from_le_bytes(header[16..24].try_into().expect("8"));
        let flags = u64::from_le_bytes(header[24..32].try_into().expect("8"));
        if flags & FLAG_DISABLED != 0 {
            self.disabled = true;
            return Ok(None);
        }
        let len = len.min(self.capacity - JOURNAL_HEADER);
        let bytes = sys.read_vec(self.base + JOURNAL_HEADER as usize, len as usize)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut chain = FNV_OFFSET;
        while pos < bytes.len() {
            match JournalRecord::decode(&bytes, pos, chain) {
                Some((rec, used, next_chain)) => {
                    records.push(rec);
                    pos += used;
                    chain = next_chain;
                }
                None => break, // torn tail: everything after is void
            }
        }
        self.len = pos as u64;
        self.seq = seq;
        self.chain = chain;
        self.disabled = false;
        Ok(Some(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_core::IsolationMode;

    fn region(sys: &mut System) -> Journal {
        let base = sys.alloc_pages(4);
        let mut j = Journal::new(base, 4);
        j.format(sys).unwrap();
        j
    }

    fn sample() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Create {
                ino: 1,
                parent: 0,
                name: "www".into(),
                is_dir: true,
            },
            JournalRecord::Create {
                ino: 2,
                parent: 1,
                name: "index.html".into(),
                is_dir: false,
            },
            JournalRecord::Write {
                ino: 2,
                off: 0,
                data: b"<h1>hello</h1>".to_vec(),
            },
            JournalRecord::Truncate { ino: 2, len: 4 },
            JournalRecord::Remove {
                ino: 2,
                parent: 1,
                name: "index.html".into(),
            },
        ]
    }

    #[test]
    fn append_replay_round_trip() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let mut j = region(&mut sys);
        for rec in sample() {
            assert_eq!(j.append(&mut sys, &rec).unwrap(), AppendOutcome::Logged);
        }
        let mut fresh = Journal::new(j.base, 4);
        let got = fresh.replay(&mut sys).unwrap().unwrap();
        assert_eq!(got, sample());
        assert_eq!(fresh.len(), j.len());
    }

    #[test]
    fn torn_len_update_hides_the_last_record() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let mut j = region(&mut sys);
        let recs = sample();
        for rec in &recs {
            j.append(&mut sys, rec).unwrap();
        }
        // Simulate the torn append: record bytes down, len one byte
        // short of covering the final record.
        let mut header = [0u8; JOURNAL_HEADER as usize];
        header[..8].copy_from_slice(JOURNAL_MAGIC);
        header[8..16].copy_from_slice(&(j.len() - 1).to_le_bytes());
        sys.write(j.base, &header).unwrap();
        let mut fresh = Journal::new(j.base, 4);
        let got = fresh.replay(&mut sys).unwrap().unwrap();
        // One byte short of the Remove record's end: it must vanish whole.
        assert_eq!(got.len(), recs.len() - 1);
        assert_eq!(got[..], recs[..recs.len() - 1]);
    }

    #[test]
    fn corrupt_byte_voids_the_suffix() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let mut j = region(&mut sys);
        let recs = sample();
        for rec in &recs {
            j.append(&mut sys, rec).unwrap();
        }
        // Flip one byte inside the second record's body: it and every
        // later record fail the chained checksum.
        let first_len = recs[0].encode().len() as u64 + 8;
        let victim = j.base + (JOURNAL_HEADER + first_len + 3) as usize;
        let byte = sys.read_vec(victim, 1).unwrap()[0];
        sys.write(victim, &[byte ^ 0x40]).unwrap();
        let mut fresh = Journal::new(j.base, 4);
        let got = fresh.replay(&mut sys).unwrap().unwrap();
        assert_eq!(got[..], recs[..1]);
    }

    #[test]
    fn rewrite_compacts_and_replays() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let mut j = region(&mut sys);
        for rec in sample() {
            j.append(&mut sys, &rec).unwrap();
        }
        let snapshot = vec![JournalRecord::Create {
            ino: 1,
            parent: 0,
            name: "www".into(),
            is_dir: true,
        }];
        assert!(j.rewrite(&mut sys, &snapshot).unwrap());
        assert_eq!(j.compactions, 1);
        let mut fresh = Journal::new(j.base, 4);
        assert_eq!(fresh.replay(&mut sys).unwrap().unwrap(), snapshot);
    }

    #[test]
    fn overflow_disables_on_region() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let base = sys.alloc_pages(1);
        let mut j = Journal::new(base, 1);
        j.format(&mut sys).unwrap();
        let big = JournalRecord::Write {
            ino: 1,
            off: 0,
            data: vec![0xAB; 2 * PAGE_SIZE],
        };
        assert_eq!(j.append(&mut sys, &big).unwrap(), AppendOutcome::Full);
        assert!(!j.rewrite(&mut sys, &[big]).unwrap());
        assert!(j.disabled);
        // A fresh handle sees the disabled flag and refuses to replay.
        let mut fresh = Journal::new(base, 1);
        assert_eq!(fresh.replay(&mut sys).unwrap(), None);
        assert!(fresh.disabled);
    }

    #[test]
    fn full_region_reports_full_without_writing() {
        let mut sys = System::new(IsolationMode::Unikraft);
        let base = sys.alloc_pages(1);
        let mut j = Journal::new(base, 1);
        j.format(&mut sys).unwrap();
        let rec = JournalRecord::Write {
            ino: 1,
            off: 0,
            data: vec![7u8; 1024],
        };
        let mut logged = 0;
        loop {
            match j.append(&mut sys, &rec).unwrap() {
                AppendOutcome::Logged => logged += 1,
                AppendOutcome::Full => break,
                AppendOutcome::Disabled => unreachable!(),
            }
        }
        assert!(logged >= 3, "a page fits a few 1 KiB records");
        let mut fresh = Journal::new(base, 1);
        assert_eq!(
            fresh.replay(&mut sys).unwrap().unwrap().len(),
            logged,
            "Full must leave the region exactly as it was"
        );
    }
}

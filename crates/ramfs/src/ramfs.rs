//! The `RAMFS` component implementation.

use std::collections::{HashMap, VecDeque};

use cubicle_core::{
    component_mut, impl_component, Builder, Component, ComponentImage, CubicleId, Errno,
    LoadedComponent, RecoveryEvent, Result, System, Value, WindowId,
};
use cubicle_mpk::insn::CodeImage;
use cubicle_mpk::{VAddr, PAGE_SIZE};
use cubicle_ukbase::AllocProxy;
use cubicle_vfs::path::components;
use cubicle_vfs::{FsOps, Vfs};

use crate::journal::{AppendOutcome, Journal, JournalRecord};

/// Pages requested from `ALLOC` per pool refill (coarse-grained
/// allocation, paper Fig. 8).
pub const POOL_CHUNK_PAGES: usize = 64;

/// Cycles of RAMFS-internal work per operation.
const RAMFS_OP_COST: u64 = 80;

#[derive(Debug)]
enum Inode {
    Dir { entries: Vec<(String, usize)> },
    File { size: u64, extents: Vec<VAddr> },
}

/// A live sendfile mapping: one window covering every extent page of an
/// inode, shared (refcounted) across concurrent mappers.
#[derive(Debug)]
struct SendfileMap {
    wid: WindowId,
    refs: u64,
    peers: Vec<CubicleId>,
}

/// State of the `RAMFS` component.
#[derive(Debug)]
pub struct Ramfs {
    inodes: Vec<Option<Inode>>,
    pool: Vec<VAddr>,
    alloc: Option<AllocProxy>,
    /// Extent pages currently in use (statistics).
    pub pages_used: u64,
    /// Live sendfile windows by inode (`map_extents`/`unmap_extents`).
    sendfile_maps: HashMap<i64, SendfileMap>,
    /// Redo journal in custodian-owned pages ([`install_journal`]).
    journal: Option<Journal>,
}

impl Default for Ramfs {
    fn default() -> Self {
        Ramfs {
            inodes: vec![Some(Inode::Dir {
                entries: Vec::new(),
            })], // root = ino 0
            pool: Vec::new(),
            alloc: None,
            pages_used: 0,
            sendfile_maps: HashMap::new(),
            journal: None,
        }
    }
}

impl_component!(Ramfs, restart_sys = reboot_recover);

impl Ramfs {
    /// Microreboot hook: the quarantine path reclaimed every extent page
    /// and the cubicle heap, so inode contents, the extent pool and the
    /// usage counter are all dead — back to an empty root directory. The
    /// `ALLOC` proxy survives (entry IDs are stable across reboots), and
    /// so does the journal region: it lives in a surviving custodian's
    /// pages, reachable through the window the custodian kept open, so
    /// every acknowledged namespace operation is redone here — the hook
    /// runs inside the reborn cubicle, resolving reads like any other
    /// component code would.
    fn reboot_recover(&mut self, sys: &mut System) {
        let alloc = self.alloc;
        let journal = self.journal.take();
        *self = Ramfs::default();
        self.alloc = alloc;
        self.journal = journal;
        let Some(mut j) = self.journal.take() else {
            return;
        };
        let replayed = match j.replay(sys) {
            Ok(Some(records)) => {
                let mut applied = 0u64;
                for rec in &records {
                    if self.apply_record(sys, rec).is_err() {
                        break; // never apply past a failed redo
                    }
                    applied += 1;
                }
                Some(applied)
            }
            Ok(None) | Err(_) => None,
        };
        self.journal = Some(j);
        if let Some(records) = replayed {
            sys.record_recovery(RecoveryEvent::RamfsJournalReplay { records });
        }
    }
    /// Wires the coarse allocator; without it the backend grows extents
    /// from its own cubicle heap (standalone tests).
    pub fn set_alloc(&mut self, alloc: AllocProxy) {
        self.alloc = Some(alloc);
    }

    fn lookup_path(&self, path: &str) -> std::result::Result<usize, i64> {
        let mut ino = 0usize;
        for comp in components(path) {
            match self.inodes.get(ino).and_then(Option::as_ref) {
                Some(Inode::Dir { entries }) => match entries.iter().find(|(n, _)| *n == comp) {
                    Some((_, child)) => ino = *child,
                    None => return Err(Errno::Enoent.neg()),
                },
                Some(Inode::File { .. }) => return Err(Errno::Enotdir.neg()),
                None => return Err(Errno::Enoent.neg()),
            }
        }
        Ok(ino)
    }

    fn file_mut(&mut self, ino: i64) -> std::result::Result<(&mut u64, &mut Vec<VAddr>), i64> {
        match usize::try_from(ino)
            .ok()
            .and_then(|i| self.inodes.get_mut(i)?.as_mut())
        {
            Some(Inode::File { size, extents }) => Ok((size, extents)),
            Some(Inode::Dir { .. }) => Err(Errno::Eisdir.neg()),
            None => Err(Errno::Enoent.neg()),
        }
    }

    fn take_page(&mut self, sys: &mut System) -> Result<VAddr> {
        if self.pool.is_empty() {
            match self.alloc {
                Some(proxy) => {
                    let base = proxy.palloc(sys, POOL_CHUNK_PAGES)?;
                    for i in 0..POOL_CHUNK_PAGES {
                        self.pool.push(base + i * PAGE_SIZE);
                    }
                }
                None => {
                    let base = sys.alloc_pages(POOL_CHUNK_PAGES);
                    for i in 0..POOL_CHUNK_PAGES {
                        self.pool.push(base + i * PAGE_SIZE);
                    }
                }
            }
        }
        let page = self.pool.pop().expect("refilled above");
        // Pool pages may hold stale contents from a previous file.
        sys.fill(page, 0, PAGE_SIZE)?;
        self.pages_used += 1;
        Ok(page)
    }

    /// Tears down the sendfile window over `ino`, if one exists. Called
    /// whenever the extent set is about to change (truncate, remove,
    /// growing write): the mapping's extent list would go stale, so
    /// authority is revoked rather than left dangling.
    fn drop_sendfile_map(&mut self, sys: &mut System, ino: i64) -> Result<()> {
        if let Some(m) = self.sendfile_maps.remove(&ino) {
            sys.window_destroy(m.wid)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Redo journal
    // ------------------------------------------------------------------

    /// The attached journal, if any (statistics, tests).
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Arms the journal's crash-injection hook: after `appends` more
    /// record appends, `RAMFS` touches wild memory *between* writing the
    /// record bytes and publishing the length — the torn-append window
    /// the crashstorm campaign aims at. No-op without a journal.
    pub fn set_journal_crash_after(&mut self, appends: Option<u64>) {
        if let Some(j) = self.journal.as_mut() {
            j.set_crash_after(appends);
        }
    }

    /// Logs `rec` ahead of applying it. On a full region the journal is
    /// compacted to a snapshot of the live tree and the append retried;
    /// if even the snapshot does not fit, the journal flags itself
    /// disabled rather than replay a lie.
    fn journal_append(&mut self, sys: &mut System, rec: &JournalRecord) -> Result<()> {
        match self.journal.as_mut() {
            None => return Ok(()),
            Some(j) if j.disabled => return Ok(()),
            Some(_) => {}
        }
        let outcome = self.journal.as_mut().expect("checked").append(sys, rec)?;
        if outcome != AppendOutcome::Full {
            return Ok(());
        }
        let snapshot = self.snapshot_records(sys)?;
        let j = self.journal.as_mut().expect("checked");
        if !j.rewrite(sys, &snapshot)? {
            return Ok(()); // disabled on-region
        }
        if j.append(sys, rec)? == AppendOutcome::Full {
            // A single record larger than the whole region.
            j.disable(sys)?;
        }
        Ok(())
    }

    /// Renders the live tree as the minimal record sequence that
    /// recreates it: one `Create` per inode (parents before children)
    /// plus one whole-content `Write` per non-empty file.
    fn snapshot_records(&self, sys: &mut System) -> Result<Vec<JournalRecord>> {
        let mut recs = Vec::new();
        let mut queue = VecDeque::from([0usize]);
        while let Some(dir) = queue.pop_front() {
            let Some(Inode::Dir { entries }) = self.inodes.get(dir).and_then(Option::as_ref) else {
                continue;
            };
            for (name, child) in entries {
                match self.inodes.get(*child).and_then(Option::as_ref) {
                    Some(Inode::Dir { .. }) => {
                        recs.push(JournalRecord::Create {
                            ino: *child as u32,
                            parent: dir as u32,
                            name: name.clone(),
                            is_dir: true,
                        });
                        queue.push_back(*child);
                    }
                    Some(Inode::File { size, extents }) => {
                        recs.push(JournalRecord::Create {
                            ino: *child as u32,
                            parent: dir as u32,
                            name: name.clone(),
                            is_dir: false,
                        });
                        if *size > 0 {
                            let mut data = Vec::with_capacity(*size as usize);
                            let mut remaining = *size as usize;
                            for page in extents {
                                let chunk = remaining.min(PAGE_SIZE);
                                data.extend_from_slice(&sys.read_vec(*page, chunk)?);
                                remaining -= chunk;
                                if remaining == 0 {
                                    break;
                                }
                            }
                            recs.push(JournalRecord::Write {
                                ino: *child as u32,
                                off: 0,
                                data,
                            });
                        }
                    }
                    None => {}
                }
            }
        }
        Ok(recs)
    }

    /// Redoes one journal record against the (freshly reset) tree.
    /// Unlike the export wrappers this never journals — replay must not
    /// feed the log it is reading.
    fn apply_record(&mut self, sys: &mut System, rec: &JournalRecord) -> Result<()> {
        match rec {
            JournalRecord::Create {
                ino,
                parent,
                name,
                is_dir,
            } => {
                let (ino, parent) = (*ino as usize, *parent as usize);
                if self.inodes.len() <= ino {
                    self.inodes.resize_with(ino + 1, || None);
                }
                self.inodes[ino] = Some(if *is_dir {
                    Inode::Dir {
                        entries: Vec::new(),
                    }
                } else {
                    Inode::File {
                        size: 0,
                        extents: Vec::new(),
                    }
                });
                if let Some(Inode::Dir { entries }) =
                    self.inodes.get_mut(parent).and_then(Option::as_mut)
                {
                    entries.retain(|(n, _)| n != name);
                    entries.push((name.clone(), ino));
                }
            }
            JournalRecord::Remove { ino, parent, name } => {
                let (ino, parent) = (*ino as usize, *parent as usize);
                if let Some(slot) = self.inodes.get_mut(ino) {
                    if let Some(Inode::File { extents, .. }) = slot.take() {
                        self.pages_used -= extents.len() as u64;
                        self.pool.extend(extents);
                    }
                }
                if let Some(Inode::Dir { entries }) =
                    self.inodes.get_mut(parent).and_then(Option::as_mut)
                {
                    entries.retain(|(n, _)| n != name);
                }
            }
            JournalRecord::Write { ino, off, data } => {
                let ino = i64::from(*ino);
                let needed = (*off as usize + data.len()).div_ceil(PAGE_SIZE);
                loop {
                    let have = match self.file_mut(ino) {
                        Ok((_, extents)) => extents.len(),
                        Err(_) => return Ok(()), // redo against a hole: skip
                    };
                    if have >= needed {
                        break;
                    }
                    let page = self.take_page(sys)?;
                    let (_, extents) = self.file_mut(ino).expect("checked");
                    extents.push(page);
                }
                let extents = {
                    let (_, extents) = self.file_mut(ino).expect("checked");
                    extents.clone()
                };
                let mut copied = 0usize;
                while copied < data.len() {
                    let pos = *off as usize + copied;
                    let (pi, po) = (pos / PAGE_SIZE, pos % PAGE_SIZE);
                    let chunk = (PAGE_SIZE - po).min(data.len() - copied);
                    sys.write(extents[pi] + po, &data[copied..copied + chunk])?;
                    copied += chunk;
                }
                let (size, _) = self.file_mut(ino).expect("checked");
                *size = (*size).max(*off + data.len() as u64);
            }
            JournalRecord::Truncate { ino, len } => {
                let ino = i64::from(*ino);
                let needed = (*len as usize).div_ceil(PAGE_SIZE);
                let surplus = match self.file_mut(ino) {
                    Ok((_, extents)) => {
                        let keep = needed.min(extents.len());
                        extents.split_off(keep)
                    }
                    Err(_) => return Ok(()),
                };
                self.pages_used -= surplus.len() as u64;
                self.pool.extend(surplus);
                loop {
                    let have = self.file_mut(ino).expect("checked").1.len();
                    if have >= needed {
                        break;
                    }
                    let page = self.take_page(sys)?;
                    self.file_mut(ino).expect("checked").1.push(page);
                }
                let (size, _) = self.file_mut(ino).expect("checked");
                *size = *len;
            }
        }
        Ok(())
    }
}

/// Wires a crash-surviving journal into a loaded `RAMFS`: `custodian`
/// (any cubicle that outlives `RAMFS` quarantines — typically `VFSCORE`)
/// allocates `pages` pages, opens a window over them for `RAMFS`, and
/// formats the region; `RAMFS` then journals every namespace mutation
/// through that window ahead of applying it. Returns the region base.
///
/// # Errors
///
/// Kernel errors from the allocation, window or format path.
///
/// # Panics
///
/// Panics when `ramfs_slot` does not hold a [`Ramfs`] component.
pub fn install_journal(
    sys: &mut System,
    custodian: CubicleId,
    ramfs_cid: CubicleId,
    ramfs_slot: usize,
    pages: usize,
) -> Result<VAddr> {
    let base = sys.run_in_cubicle(custodian, |sys| -> Result<VAddr> {
        let base = sys.alloc_pages(pages);
        let wid = sys.window_init();
        sys.window_add(wid, base, pages * PAGE_SIZE)?;
        sys.window_open(wid, ramfs_cid)?;
        // The custodian formats its own pages directly.
        Journal::new(base, pages).format(sys)?;
        Ok(base)
    })?;
    sys.with_component_mut::<Ramfs, _>(ramfs_slot, |fs, _| {
        fs.journal = Some(Journal::new(base, pages));
    })
    .expect("ramfs slot holds the Ramfs component");
    Ok(base)
}

/// Builds the loadable `RAMFS` image.
pub fn image() -> ComponentImage {
    let b = Builder::new();
    ComponentImage::new("RAMFS", CodeImage::plain(12 * 1024))
        .heap_pages(8)
        .export(
            b.export("long ramfs_lookup(const char *path, size_t len)")
                .unwrap(),
            e_lookup,
        )
        .export(
            b.export("long ramfs_create(const char *path, size_t len, int is_dir)")
                .unwrap(),
            e_create,
        )
        .export(
            b.export("long ramfs_remove(const char *path, size_t len)")
                .unwrap(),
            e_remove,
        )
        .export(
            b.export("long ramfs_read(long ino, void *buf, size_t n, uint64_t off)")
                .unwrap(),
            e_read,
        )
        .export(
            b.export("long ramfs_write(long ino, const void *buf, size_t n, uint64_t off)")
                .unwrap(),
            e_write,
        )
        .export(
            b.export("long ramfs_truncate(long ino, uint64_t len)")
                .unwrap(),
            e_truncate,
        )
        .export(b.export("long ramfs_size(long ino)").unwrap(), e_size)
        .export(b.export("long ramfs_sync(long ino)").unwrap(), e_sync)
        .export(
            b.export("long ramfs_readdir(long ino, void *buf, size_t n, long index)")
                .unwrap(),
            e_readdir,
        )
        .export(b.export("long ramfs_is_dir(long ino)").unwrap(), e_is_dir)
        .export(
            b.export("long ramfs_map_extents(long ino, long peer, void *out, size_t n)")
                .unwrap(),
            e_map_extents,
        )
        .export(
            b.export("long ramfs_unmap_extents(long ino)").unwrap(),
            e_unmap_extents,
        )
}

/// Fills `VFSCORE`'s callback table with this backend's entries.
///
/// # Errors
///
/// [`cubicle_core::CubicleError::NoSuchEntry`] when the image does not
/// export the expected symbols.
pub fn fs_ops(loaded: &LoadedComponent) -> Result<FsOps> {
    Ok(FsOps {
        cid: loaded.cid,
        lookup: loaded.entry("ramfs_lookup")?,
        create: loaded.entry("ramfs_create")?,
        remove: loaded.entry("ramfs_remove")?,
        read: loaded.entry("ramfs_read")?,
        write: loaded.entry("ramfs_write")?,
        truncate: loaded.entry("ramfs_truncate")?,
        size: loaded.entry("ramfs_size")?,
        sync: loaded.entry("ramfs_sync")?,
        readdir: loaded.entry("ramfs_readdir")?,
        is_dir: loaded.entry("ramfs_is_dir")?,
        map_extents: loaded.entry("ramfs_map_extents")?,
        unmap_extents: loaded.entry("ramfs_unmap_extents")?,
    })
}

/// Boot-time wiring: mounts this backend into a loaded `VFSCORE` at
/// `prefix` (Unikraft fills callback tables at initialisation time).
///
/// # Errors
///
/// [`cubicle_core::CubicleError::NoSuchEntry`] when the backend image
/// does not export the full callback table.
pub fn mount_at(
    sys: &mut System,
    vfs_slot: usize,
    ramfs: &LoadedComponent,
    prefix: &str,
) -> Result<()> {
    let ops = fs_ops(ramfs)?;
    sys.with_component_mut::<Vfs, _>(vfs_slot, |vfs, _| vfs.mount(prefix, ops))
        .expect("vfs slot holds the Vfs component");
    Ok(())
}

fn read_rel_path(sys: &mut System, args: &[Value]) -> Result<std::result::Result<String, i64>> {
    let (addr, len) = args[0].as_buf();
    if len > 4096 {
        return Ok(Err(Errno::Einval.neg()));
    }
    let bytes = match sys.read_vec(addr, len) {
        Ok(b) => b,
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
            return Ok(Err(Errno::Eacces.neg()))
        }
        Err(e) => return Err(e),
    };
    match String::from_utf8(bytes) {
        Ok(s) => Ok(Ok(s)),
        Err(_) => Ok(Err(Errno::Einval.neg())),
    }
}

fn e_lookup(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let path = match read_rel_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let fs = component_mut::<Ramfs>(this);
    match fs.lookup_path(&path) {
        Ok(ino) => Ok(Value::I64(ino as i64)),
        Err(e) => Ok(Value::I64(e)),
    }
}

fn e_create(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let path = match read_rel_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let is_dir = args[1].as_i64() != 0;
    let fs = component_mut::<Ramfs>(this);
    let mut comps = components(&path);
    let Some(name) = comps.pop() else {
        return Ok(Value::I64(Errno::Eexist.neg())); // root always exists
    };
    let parent = match fs.lookup_path(&comps.join("/")) {
        Ok(i) => i,
        Err(e) => return Ok(Value::I64(e)),
    };
    // Parent must be a directory without a same-named entry.
    match fs.inodes.get(parent).and_then(Option::as_ref) {
        Some(Inode::Dir { entries }) => {
            if entries.iter().any(|(n, _)| *n == name) {
                return Ok(Value::I64(Errno::Eexist.neg()));
            }
        }
        _ => return Ok(Value::I64(Errno::Enotdir.neg())),
    }
    let ino = fs.inodes.len();
    if fs.journal.is_some() {
        let rec = JournalRecord::Create {
            ino: ino as u32,
            parent: parent as u32,
            name: name.clone(),
            is_dir,
        };
        let fs = component_mut::<Ramfs>(this);
        fs.journal_append(sys, &rec)?;
    }
    let fs = component_mut::<Ramfs>(this);
    fs.inodes.push(Some(if is_dir {
        Inode::Dir {
            entries: Vec::new(),
        }
    } else {
        Inode::File {
            size: 0,
            extents: Vec::new(),
        }
    }));
    match fs.inodes[parent].as_mut() {
        Some(Inode::Dir { entries }) => entries.push((name, ino)),
        _ => unreachable!("checked above"),
    }
    Ok(Value::I64(ino as i64))
}

fn e_remove(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let path = match read_rel_path(sys, args)? {
        Ok(p) => p,
        Err(e) => return Ok(Value::I64(e)),
    };
    let fs = component_mut::<Ramfs>(this);
    let mut comps = components(&path);
    let Some(name) = comps.pop() else {
        return Ok(Value::I64(Errno::Einval.neg())); // cannot remove root
    };
    let parent = match fs.lookup_path(&comps.join("/")) {
        Ok(i) => i,
        Err(e) => return Ok(Value::I64(e)),
    };
    let ino = {
        let Some(Inode::Dir { entries }) = fs.inodes.get(parent).and_then(Option::as_ref) else {
            return Ok(Value::I64(Errno::Enotdir.neg()));
        };
        match entries.iter().find(|(n, _)| *n == name) {
            Some((_, i)) => *i,
            None => return Ok(Value::I64(Errno::Enoent.neg())),
        }
    };
    match fs.inodes.get(ino).and_then(Option::as_ref) {
        Some(Inode::Dir { entries }) if !entries.is_empty() => {
            return Ok(Value::I64(Errno::Enotempty.neg()))
        }
        _ => {}
    }
    if fs.journal.is_some() {
        let rec = JournalRecord::Remove {
            ino: ino as u32,
            parent: parent as u32,
            name: name.clone(),
        };
        let fs = component_mut::<Ramfs>(this);
        fs.journal_append(sys, &rec)?;
    }
    let fs = component_mut::<Ramfs>(this);
    fs.drop_sendfile_map(sys, ino as i64)?;
    if let Some(Inode::File { extents, .. }) = fs.inodes[ino].take() {
        fs.pages_used -= extents.len() as u64;
        fs.pool.extend(extents);
    } else {
        fs.inodes[ino] = None;
    }
    if let Some(Inode::Dir { entries }) = fs.inodes[parent].as_mut() {
        entries.retain(|(n, _)| *n != name);
    }
    Ok(Value::I64(0))
}

fn e_read(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let ino = args[0].as_i64();
    let (buf, n) = args[1].as_buf();
    let off = args[2].as_u64();
    let fs = component_mut::<Ramfs>(this);
    let (size, extents) = match fs.file_mut(ino) {
        Ok(x) => (*x.0, x.1.clone()),
        Err(e) => return Ok(Value::I64(e)),
    };
    if off >= size {
        return Ok(Value::I64(0)); // EOF
    }
    let n = n.min((size - off) as usize);
    // Copy extent pages → caller's buffer (runs with RAMFS privileges;
    // writing the caller's buffer requires the caller's window).
    let mut copied = 0usize;
    while copied < n {
        let pos = off as usize + copied;
        let page_idx = pos / PAGE_SIZE;
        let page_off = pos % PAGE_SIZE;
        let chunk = (PAGE_SIZE - page_off).min(n - copied);
        let src = extents[page_idx] + page_off;
        match cubicle_ukbase::libc::memcpy(sys, buf + copied, src, chunk) {
            Ok(()) => {}
            Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
                return Ok(Value::I64(Errno::Eacces.neg()))
            }
            Err(e) => return Err(e),
        }
        copied += chunk;
    }
    Ok(Value::I64(n as i64))
}

fn e_write(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let ino = args[0].as_i64();
    let (buf, n) = args[1].as_buf();
    let off = args[2].as_u64();
    // Journal ahead of any mutation. The payload is pulled through the
    // caller's window once, logged, and applied from the local copy, so
    // the journaled bytes and the extent bytes can never diverge.
    let payload: Option<Vec<u8>> = {
        let fs = component_mut::<Ramfs>(this);
        if fs.journal.is_some() {
            if let Err(e) = fs.file_mut(ino) {
                return Ok(Value::I64(e));
            }
            let data = match sys.read_vec(buf, n) {
                Ok(d) => d,
                Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
                    return Ok(Value::I64(Errno::Eacces.neg()))
                }
                Err(e) => return Err(e),
            };
            let rec = JournalRecord::Write {
                ino: ino as u32,
                off,
                data,
            };
            let fs = component_mut::<Ramfs>(this);
            fs.journal_append(sys, &rec)?;
            let JournalRecord::Write { data, .. } = rec else {
                unreachable!("built above");
            };
            Some(data)
        } else {
            None
        }
    };
    // Grow extents to cover [off, off+n).
    let needed_pages = (off as usize + n).div_ceil(PAGE_SIZE);
    {
        let fs = component_mut::<Ramfs>(this);
        let grows = match fs.file_mut(ino) {
            Ok((_, extents)) => extents.len() < needed_pages,
            Err(e) => return Ok(Value::I64(e)),
        };
        if grows {
            // The extent set is about to change under any live sendfile
            // mapping — revoke it so stale extent lists carry no authority.
            fs.drop_sendfile_map(sys, ino)?;
        }
        while {
            let fs = component_mut::<Ramfs>(this);
            let (_, extents) = fs.file_mut(ino).expect("checked");
            extents.len() < needed_pages
        } {
            let page = {
                let fs = component_mut::<Ramfs>(this);
                fs.take_page(sys)?
            };
            let fs = component_mut::<Ramfs>(this);
            let (_, extents) = fs.file_mut(ino).expect("checked");
            extents.push(page);
        }
    }
    let extents = {
        let fs = component_mut::<Ramfs>(this);
        let (_, extents) = fs.file_mut(ino).expect("checked");
        extents.clone()
    };
    // Copy caller's buffer → extent pages.
    let mut copied = 0usize;
    while copied < n {
        let pos = off as usize + copied;
        let page_idx = pos / PAGE_SIZE;
        let page_off = pos % PAGE_SIZE;
        let chunk = (PAGE_SIZE - page_off).min(n - copied);
        let dst = extents[page_idx] + page_off;
        let r = match &payload {
            Some(data) => sys.write(dst, &data[copied..copied + chunk]),
            None => cubicle_ukbase::libc::memcpy(sys, dst, buf + copied, chunk),
        };
        match r {
            Ok(()) => {}
            Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
                return Ok(Value::I64(Errno::Eacces.neg()))
            }
            Err(e) => return Err(e),
        }
        copied += chunk;
    }
    let fs = component_mut::<Ramfs>(this);
    let (size, _) = fs.file_mut(ino).expect("checked");
    *size = (*size).max(off + n as u64);
    Ok(Value::I64(n as i64))
}

fn e_truncate(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let ino = args[0].as_i64();
    let new_len = args[1].as_u64();
    let needed_pages = (new_len as usize).div_ceil(PAGE_SIZE);
    {
        let fs = component_mut::<Ramfs>(this);
        if fs.journal.is_some() {
            if let Err(e) = fs.file_mut(ino) {
                return Ok(Value::I64(e));
            }
            let rec = JournalRecord::Truncate {
                ino: ino as u32,
                len: new_len,
            };
            fs.journal_append(sys, &rec)?;
        }
    }
    {
        let fs = component_mut::<Ramfs>(this);
        fs.drop_sendfile_map(sys, ino)?;
        let surplus: Vec<VAddr> = match fs.file_mut(ino) {
            Ok((_, extents)) => {
                // shrink: recycle surplus pages
                let keep = needed_pages.min(extents.len());
                extents.split_off(keep)
            }
            Err(e) => return Ok(Value::I64(e)),
        };
        fs.pages_used -= surplus.len() as u64;
        fs.pool.extend(surplus);
    }
    // grow: add zeroed pages
    loop {
        let need_more = {
            let fs = component_mut::<Ramfs>(this);
            let (_, extents) = fs.file_mut(ino).expect("checked");
            extents.len() < needed_pages
        };
        if !need_more {
            break;
        }
        let page = {
            let fs = component_mut::<Ramfs>(this);
            fs.take_page(sys)?
        };
        let fs = component_mut::<Ramfs>(this);
        let (_, extents) = fs.file_mut(ino).expect("checked");
        extents.push(page);
    }
    let fs = component_mut::<Ramfs>(this);
    let (size, _) = fs.file_mut(ino).expect("checked");
    *size = new_len;
    Ok(Value::I64(0))
}

fn e_size(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST / 2);
    let ino = args[0].as_i64();
    let fs = component_mut::<Ramfs>(this);
    match fs.file_mut(ino) {
        Ok((size, _)) => Ok(Value::I64(*size as i64)),
        Err(e) => Ok(Value::I64(e)),
    }
}

fn e_sync(sys: &mut System, _this: &mut dyn Component, _args: &[Value]) -> Result<Value> {
    // RAM-backed: nothing to flush, but the crossing itself is the cost
    // the paper measures.
    sys.charge(RAMFS_OP_COST / 2);
    Ok(Value::I64(0))
}

fn e_readdir(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let ino = args[0].as_i64();
    let (buf, n) = args[1].as_buf();
    let index = args[2].as_i64();
    let fs = component_mut::<Ramfs>(this);
    let name = match usize::try_from(ino)
        .ok()
        .and_then(|i| fs.inodes.get(i)?.as_ref())
    {
        Some(Inode::Dir { entries }) => {
            match usize::try_from(index).ok().and_then(|i| entries.get(i)) {
                Some((name, _)) => name.clone(),
                None => return Ok(Value::I64(Errno::Enoent.neg())),
            }
        }
        Some(Inode::File { .. }) => return Ok(Value::I64(Errno::Enotdir.neg())),
        None => return Ok(Value::I64(Errno::Enoent.neg())),
    };
    let out = name.as_bytes();
    let len = out.len().min(n);
    match sys.write(buf, &out[..len]) {
        Ok(()) => Ok(Value::I64(len as i64)),
        Err(cubicle_core::CubicleError::WindowDenied { .. }) => Ok(Value::I64(Errno::Eacces.neg())),
        Err(e) => Err(e),
    }
}

/// `map_extents(ino, peer, out, n)`: grants `peer` (and the caller, who
/// already reaches RAMFS) one refcounted window over every extent page of
/// `ino` and writes the page addresses (`u64` LE each) into `out`. This is
/// the zero-copy sendfile primitive: the consumer reads response bytes
/// straight out of the file's own pages, no intermediate copy.
fn e_map_extents(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST);
    let ino = args[0].as_i64();
    let peer_raw = args[1].as_i64();
    let (out, n) = args[2].as_buf();
    let Ok(peer) = u16::try_from(peer_raw) else {
        return Ok(Value::I64(Errno::Einval.neg()));
    };
    let peer = CubicleId(peer);
    let extents = {
        let fs = component_mut::<Ramfs>(this);
        match fs.file_mut(ino) {
            Ok((_, extents)) => extents.clone(),
            Err(e) => return Ok(Value::I64(e)),
        }
    };
    if n < extents.len() * 8 {
        return Ok(Value::I64(Errno::Einval.neg()));
    }
    // Publish the extent list first: a denied write leaves no window
    // behind and no reference to roll back.
    let mut bytes = Vec::with_capacity(extents.len() * 8);
    for page in &extents {
        bytes.extend_from_slice(&page.raw().to_le_bytes());
    }
    if !bytes.is_empty() {
        match sys.write(out, &bytes) {
            Ok(()) => {}
            Err(cubicle_core::CubicleError::WindowDenied { .. }) => {
                return Ok(Value::I64(Errno::Eacces.neg()))
            }
            Err(e) => return Err(e),
        }
    }
    if !extents.is_empty() {
        let existing = {
            let fs = component_mut::<Ramfs>(this);
            fs.sendfile_maps
                .get(&ino)
                .map(|m| (m.wid, m.peers.contains(&peer)))
        };
        match existing {
            Some((wid, has_peer)) => {
                if !has_peer {
                    sys.window_open(wid, peer)?;
                }
                let fs = component_mut::<Ramfs>(this);
                let m = fs.sendfile_maps.get_mut(&ino).expect("probed above");
                if !has_peer {
                    m.peers.push(peer);
                }
                m.refs += 1;
            }
            None => {
                let wid = sys.window_init();
                for page in &extents {
                    sys.window_add(wid, *page, PAGE_SIZE)?;
                }
                sys.window_open(wid, peer)?;
                let fs = component_mut::<Ramfs>(this);
                fs.sendfile_maps.insert(
                    ino,
                    SendfileMap {
                        wid,
                        refs: 1,
                        peers: vec![peer],
                    },
                );
            }
        }
    }
    Ok(Value::I64(extents.len() as i64))
}

/// `unmap_extents(ino)`: drops one `map_extents` reference; the window is
/// destroyed (revoking all peers at once) when the count reaches zero.
/// Idempotent — unmapping an inode whose window was already revoked by a
/// truncate/remove/growing-write is a no-op.
fn e_unmap_extents(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST / 2);
    let ino = args[0].as_i64();
    let fs = component_mut::<Ramfs>(this);
    let Some(m) = fs.sendfile_maps.get_mut(&ino) else {
        return Ok(Value::I64(0));
    };
    m.refs -= 1;
    if m.refs == 0 {
        let wid = m.wid;
        fs.sendfile_maps.remove(&ino);
        sys.window_destroy(wid)?;
    }
    Ok(Value::I64(0))
}

fn e_is_dir(sys: &mut System, this: &mut dyn Component, args: &[Value]) -> Result<Value> {
    sys.charge(RAMFS_OP_COST / 2);
    let ino = args[0].as_i64();
    let fs = component_mut::<Ramfs>(this);
    match usize::try_from(ino)
        .ok()
        .and_then(|i| fs.inodes.get(i)?.as_ref())
    {
        Some(Inode::Dir { .. }) => Ok(Value::I64(1)),
        Some(Inode::File { .. }) => Ok(Value::I64(0)),
        None => Ok(Value::I64(Errno::Enoent.neg())),
    }
}

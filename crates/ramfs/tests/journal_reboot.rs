//! Crash-consistent recovery over the real cubicle stack: a `RAMFS`
//! with a custodian-held journal is quarantined mid-operation and
//! microrebooted, and every acknowledged file comes back bit-for-bit —
//! the tree is *not* re-populated by the test.

use cubicle_core::{impl_component, ComponentImage, CubicleId, Errno, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{install_journal, mount_at, Ramfs};
use cubicle_ukbase::{boot_base, BaseSystem};
use cubicle_vfs::{flags, whence, Vfs, VfsPort, VfsProxy};

struct App;
impl_component!(App);

struct Stack {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    ramfs_cid: CubicleId,
    ramfs_slot: usize,
    backends: Vec<CubicleId>,
    #[allow(dead_code)]
    base: BaseSystem,
}

/// Boots APP → VFSCORE → RAMFS → ALLOC with `VFSCORE` acting as the
/// journal's custodian (`journal_pages == 0` skips the journal — the
/// pre-journal baseline).
fn boot(journal_pages: usize) -> Stack {
    let mut sys = System::new(IsolationMode::Full);
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    if journal_pages > 0 {
        install_journal(
            &mut sys,
            vfs_loaded.cid,
            ramfs_loaded.cid,
            ramfs_loaded.slot,
            journal_pages,
        )
        .unwrap();
    }
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(4096)).heap_pages(64),
            Box::new(App),
        )
        .unwrap();
    sys.mark_boot_complete();
    sys.set_fault_containment(true);
    Stack {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).unwrap(),
        ramfs_cid: ramfs_loaded.cid,
        ramfs_slot: ramfs_loaded.slot,
        backends: vec![ramfs_loaded.cid],
        base,
    }
}

fn with_port<T>(stack: &mut Stack, f: impl FnOnce(&mut System, &VfsPort) -> T) -> T {
    let (app, vfs, backends) = (stack.app, stack.vfs, stack.backends.clone());
    stack.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &backends).unwrap();
        f(sys, &port)
    })
}

fn put(sys: &mut System, port: &VfsPort, path: &str, data: &[u8]) {
    let fd = port
        .open(sys, path, flags::O_CREAT | flags::O_RDWR)
        .unwrap();
    assert!(fd >= 0, "open {path}: {fd}");
    // uneven chunks exercise multi-extent writes (and multi-record
    // journaling) for payloads over a page
    for (i, chunk) in data.chunks(3_001).enumerate() {
        port.lseek(sys, fd, (i * 3_001) as i64, whence::SEEK_SET)
            .unwrap();
        assert_eq!(
            port.write_all(sys, fd, chunk).unwrap() as usize,
            chunk.len()
        );
    }
    port.close(sys, fd).unwrap();
}

fn get(sys: &mut System, port: &VfsPort, path: &str) -> Result<Vec<u8>, i64> {
    let fd = port.open(sys, path, 0).unwrap();
    if fd < 0 {
        return Err(fd);
    }
    let size = port.fstat(sys, fd).unwrap().unwrap().size as usize;
    let buf = sys.heap_alloc(size.max(1), 8).unwrap();
    let n = port
        .with_buffer_window(sys, buf, size.max(1), |sys| {
            port.proxy().pread(sys, fd, buf, size, 0)
        })
        .unwrap();
    assert_eq!(n as usize, size, "{path}: short read");
    let data = sys.read_vec(buf, size).unwrap();
    sys.heap_free(buf).unwrap();
    port.close(sys, fd).unwrap();
    Ok(data)
}

fn pattern(len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| (i % 251) as u8 ^ salt).collect()
}

#[test]
fn quarantine_mid_write_then_microreboot_restores_every_file() {
    let mut stack = boot(16);
    let index_body = b"<h1>crash-consistent cubicles</h1>".to_vec();
    let big = pattern(10_000, 0x5A);

    // Build a tree that exercises all four record types: creates,
    // multi-extent writes, a truncate, and a remove.
    with_port(&mut stack, |sys, port| {
        port.mkdir(sys, "/www").unwrap();
        put(sys, port, "/www/index.html", &index_body);
        put(sys, port, "/big.bin", &big);
        put(sys, port, "/cut.txt", &[0xFFu8; 5000]);
        let fd = port.open(sys, "/cut.txt", flags::O_RDWR).unwrap();
        port.ftruncate(sys, fd, 100).unwrap();
        port.close(sys, fd).unwrap();
        put(sys, port, "/gone.txt", b"doomed");
        assert_eq!(port.unlink(sys, "/gone.txt").unwrap(), 0);
    });

    // Arm the torn-append hook: the next journaled write dies *between*
    // the record bytes and the len update, and the containment policy
    // quarantines RAMFS right there.
    let slot = stack.ramfs_slot;
    stack
        .sys
        .with_component_mut::<Ramfs, _>(slot, |fs, _| fs.set_journal_crash_after(Some(0)))
        .unwrap();
    let denied = with_port(&mut stack, |sys, port| {
        let fd = port.open(sys, "/www/index.html", flags::O_RDWR).unwrap();
        port.write_all(sys, fd, b"never acknowledged")
    });
    // Containment converts the mid-append fault to a negative errno at
    // the first healthy boundary (or an Err if the unwind goes further).
    assert!(
        !matches!(denied, Ok(n) if n >= 0),
        "mid-append crash must surface as an error: {denied:?}"
    );
    assert!(
        stack.sys.cubicle(stack.ramfs_cid).is_quarantined(),
        "wild touch mid-append must quarantine RAMFS"
    );
    assert!(
        !stack.sys.cubicle(stack.app).is_quarantined(),
        "fault must not cascade into the app"
    );

    // Microreboot. The restart hook replays the journal under the
    // reborn cubicle's own privileges — nothing is re-put by the test.
    stack.sys.restart(stack.ramfs_cid).unwrap();
    assert_eq!(stack.sys.stats().ramfs_journal_replays, 1);

    with_port(&mut stack, |sys, port| {
        assert_eq!(get(sys, port, "/www/index.html").unwrap(), index_body);
        assert_eq!(get(sys, port, "/big.bin").unwrap(), big);
        let cut = get(sys, port, "/cut.txt").unwrap();
        assert_eq!(cut.len(), 100, "truncate must be replayed");
        assert!(cut.iter().all(|&b| b == 0xFF));
        assert_eq!(
            get(sys, port, "/gone.txt").unwrap_err(),
            Errno::Enoent.neg(),
            "removes must be replayed too"
        );
        // The torn write was never acknowledged: the file carries the
        // pre-crash bytes, not the half-logged mutation.
        assert_eq!(get(sys, port, "/www/index.html").unwrap(), index_body);
        // And the file system is fully usable afterwards.
        put(sys, port, "/after.txt", b"post-reboot write");
        assert_eq!(
            get(sys, port, "/after.txt").unwrap(),
            b"post-reboot write".to_vec()
        );
    });
    let audit = stack.sys.audit();
    assert!(audit.is_clean(), "post-recovery audit dirty:\n{audit}");
}

#[test]
fn journal_compaction_survives_the_reboot() {
    // A 2-page region fills after a handful of 1 KiB writes, forcing
    // snapshot compaction; recovery must replay the *compacted* log.
    let mut stack = boot(2);
    let finale = pattern(1_024, 0x11);
    with_port(&mut stack, |sys, port| {
        for round in 0..8u8 {
            put(sys, port, "/hot.bin", &pattern(1_024, round));
        }
        put(sys, port, "/hot.bin", &finale);
    });
    let slot = stack.ramfs_slot;
    let compactions = stack
        .sys
        .with_component_mut::<Ramfs, _>(slot, |fs, _| fs.journal().map(|j| j.compactions))
        .unwrap()
        .expect("journal installed");
    assert!(compactions > 0, "the tiny region must have compacted");

    let ramfs = stack.ramfs_cid;
    let r = stack.sys.run_in_cubicle(ramfs, |sys| {
        sys.read_vec(cubicle_mpk::VAddr::new(0x0FFF_0000), 8)
    });
    assert!(r.is_err(), "wild read must fault");
    assert!(stack.sys.cubicle(ramfs).is_quarantined());
    stack.sys.restart(ramfs).unwrap();
    assert_eq!(stack.sys.stats().ramfs_journal_replays, 1);

    with_port(&mut stack, |sys, port| {
        assert_eq!(get(sys, port, "/hot.bin").unwrap(), finale);
    });
    let audit = stack.sys.audit();
    assert!(audit.is_clean(), "post-recovery audit dirty:\n{audit}");
}

#[test]
fn without_a_journal_the_reboot_loses_the_tree() {
    // The pre-journal baseline this PR exists to fix: same crash, no
    // custodian region — the microrebooted RAMFS comes back empty.
    let mut stack = boot(0);
    with_port(&mut stack, |sys, port| {
        put(sys, port, "/f", b"volatile");
    });
    let ramfs = stack.ramfs_cid;
    let r = stack.sys.run_in_cubicle(ramfs, |sys| {
        sys.read_vec(cubicle_mpk::VAddr::new(0x0FFF_0000), 8)
    });
    assert!(r.is_err());
    stack.sys.restart(ramfs).unwrap();
    assert_eq!(stack.sys.stats().ramfs_journal_replays, 0);
    with_port(&mut stack, |sys, port| {
        assert_eq!(get(sys, port, "/f").unwrap_err(), Errno::Enoent.neg());
    });
}

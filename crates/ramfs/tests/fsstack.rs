//! End-to-end file-system stack tests: APP → VFSCORE → RAMFS → (ALLOC),
//! the component graph of the paper's Figure 8, exercised through real
//! windows and trap-and-map.

use cubicle_core::{impl_component, ComponentImage, CubicleId, Errno, IsolationMode, System};
use cubicle_mpk::insn::CodeImage;
use cubicle_ramfs::{mount_at, Ramfs};
use cubicle_ukbase::{boot_base, BaseSystem};
use cubicle_vfs::{flags, whence, Vfs, VfsPort, VfsProxy};

struct App;
impl_component!(App);

struct Stack {
    sys: System,
    app: CubicleId,
    vfs: VfsProxy,
    backends: Vec<CubicleId>,
    #[allow(dead_code)]
    base: BaseSystem,
}

fn boot(mode: IsolationMode) -> Stack {
    let mut sys = System::new(mode);
    let base = boot_base(&mut sys).unwrap();
    let vfs_loaded = sys
        .load(cubicle_vfs::image(), Box::new(Vfs::default()))
        .unwrap();
    let ramfs_loaded = sys
        .load(cubicle_ramfs::image(), Box::new(Ramfs::default()))
        .unwrap();
    sys.with_component_mut::<Ramfs, _>(ramfs_loaded.slot, |fs, _| fs.set_alloc(base.alloc))
        .unwrap();
    mount_at(&mut sys, vfs_loaded.slot, &ramfs_loaded, "/").unwrap();
    let app = sys
        .load(
            ComponentImage::new("APP", CodeImage::plain(4096)).heap_pages(64),
            Box::new(App),
        )
        .unwrap();
    sys.mark_boot_complete();
    Stack {
        sys,
        app: app.cid,
        vfs: VfsProxy::resolve(&vfs_loaded).unwrap(),
        backends: vec![ramfs_loaded.cid],
        base,
    }
}

fn with_port<T>(stack: &mut Stack, f: impl FnOnce(&mut System, &VfsPort) -> T) -> T {
    let (app, vfs, backends) = (stack.app, stack.vfs, stack.backends.clone());
    stack.sys.run_in_cubicle(app, move |sys| {
        let port = VfsPort::new(sys, vfs, &backends).unwrap();
        f(sys, &port)
    })
}

#[test]
fn create_write_read_round_trip() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/hello.txt", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        assert!(fd >= 0, "open failed: {fd}");
        assert_eq!(port.write_all(sys, fd, b"hello cubicles").unwrap(), 14);
        port.lseek(sys, fd, 0, whence::SEEK_SET).unwrap();
        assert_eq!(port.read_vec(sys, fd, 64).unwrap(), b"hello cubicles");
        assert_eq!(port.close(sys, fd), Ok(0));
    });
}

#[test]
fn round_trip_in_every_isolation_mode() {
    for mode in [
        IsolationMode::Unikraft,
        IsolationMode::NoMpk,
        IsolationMode::NoAcl,
        IsolationMode::Full,
    ] {
        let mut stack = boot(mode);
        let out = with_port(&mut stack, |sys, port| {
            let fd = port
                .open(sys, "/f", flags::O_CREAT | flags::O_RDWR)
                .unwrap();
            port.write_all(sys, fd, b"mode-independent semantics")
                .unwrap();
            port.read_back(sys, port, fd)
        });
        assert_eq!(out, b"mode-independent semantics", "{mode:?}");
    }
}

// helper extension used by the mode test
trait ReadBack {
    fn read_back(&self, sys: &mut System, port: &VfsPort, fd: i64) -> Vec<u8>;
}
impl ReadBack for VfsPort {
    fn read_back(&self, sys: &mut System, port: &VfsPort, fd: i64) -> Vec<u8> {
        let buf = sys.heap_alloc(64, 8).unwrap();
        let n = port
            .with_buffer_window(sys, buf, 64, |sys| port.proxy().pread(sys, fd, buf, 64, 0))
            .unwrap();
        sys.read_vec(buf, n as usize).unwrap()
    }
}

#[test]
fn large_file_spans_many_extents() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/big.bin", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        let pattern: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        // write in uneven chunks to exercise extent arithmetic
        let mut off = 0usize;
        for chunk in pattern.chunks(7_777) {
            let buf = sys.heap_alloc(chunk.len(), 8).unwrap();
            sys.write(buf, chunk).unwrap();
            let n = port
                .with_buffer_window(sys, buf, chunk.len(), |sys| {
                    port.proxy().pwrite(sys, fd, buf, chunk.len(), off as u64)
                })
                .unwrap();
            assert_eq!(n as usize, chunk.len());
            sys.heap_free(buf).unwrap();
            off += chunk.len();
        }
        // read back across extent boundaries
        let buf = sys.heap_alloc(100_000, 8).unwrap();
        let n = port
            .with_buffer_window(sys, buf, 100_000, |sys| {
                port.proxy().pread(sys, fd, buf, 100_000, 0)
            })
            .unwrap();
        assert_eq!(n, 100_000);
        assert_eq!(sys.read_vec(buf, 100_000).unwrap(), pattern);
        let stat = port.fstat(sys, fd).unwrap().unwrap();
        assert_eq!(stat.size, 100_000);
        assert!(!stat.is_dir);
    });
}

#[test]
fn directories_and_listing() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        assert_eq!(port.mkdir(sys, "/www").unwrap(), 1); // inode number
        for name in ["a.html", "b.html", "c.html"] {
            let fd = port
                .open(sys, &format!("/www/{name}"), flags::O_CREAT | flags::O_RDWR)
                .unwrap();
            port.write_all(sys, fd, name.as_bytes()).unwrap();
            port.close(sys, fd).unwrap();
        }
        let dirfd = port.open(sys, "/www", 0).unwrap();
        let mut names = Vec::new();
        for i in 0.. {
            match port.readdir(sys, dirfd, i).unwrap() {
                Ok(name) => names.push(name),
                Err(e) => {
                    assert_eq!(e, Errno::Enoent.neg());
                    break;
                }
            }
        }
        names.sort();
        assert_eq!(names, vec!["a.html", "b.html", "c.html"]);
        let stat = port.stat(sys, "/www").unwrap().unwrap();
        assert!(stat.is_dir);
    });
}

#[test]
fn unlink_frees_and_refuses_nonempty_dirs() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        port.mkdir(sys, "/d").unwrap();
        let fd = port
            .open(sys, "/d/file", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, b"x").unwrap();
        port.close(sys, fd).unwrap();

        assert_eq!(port.unlink(sys, "/d").unwrap(), Errno::Enotempty.neg());
        assert_eq!(port.unlink(sys, "/d/file").unwrap(), 0);
        assert_eq!(port.unlink(sys, "/d").unwrap(), 0);
        assert_eq!(port.open(sys, "/d/file", 0).unwrap(), Errno::Enoent.neg());
    });
}

#[test]
fn truncate_shrinks_and_grows_zeroed() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/t", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, &[0xFFu8; 5000]).unwrap();
        port.ftruncate(sys, fd, 100).unwrap();
        assert_eq!(port.fstat(sys, fd).unwrap().unwrap().size, 100);
        port.ftruncate(sys, fd, 9000).unwrap();
        // bytes beyond the old extent must read back zeroed (the pool
        // zeroes recycled pages)
        let buf = sys.heap_alloc(9000, 8).unwrap();
        let n = port
            .with_buffer_window(sys, buf, 9000, |sys| {
                port.proxy().pread(sys, fd, buf, 9000, 0)
            })
            .unwrap();
        assert_eq!(n, 9000);
        let data = sys.read_vec(buf, 9000).unwrap();
        assert!(data[..100].iter().all(|&b| b == 0xFF));
        assert!(
            data[4096..].iter().all(|&b| b == 0),
            "grown region must be zeroed"
        );
    });
}

#[test]
fn append_mode_appends() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(
                sys,
                "/log",
                flags::O_CREAT | flags::O_WRONLY | flags::O_APPEND,
            )
            .unwrap();
        port.write_all(sys, fd, b"one.").unwrap();
        port.write_all(sys, fd, b"two.").unwrap();
        port.close(sys, fd).unwrap();
        let fd = port.open(sys, "/log", 0).unwrap();
        assert_eq!(port.read_vec(sys, fd, 64).unwrap(), b"one.two.");
    });
}

#[test]
fn open_errors() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        assert_eq!(port.open(sys, "/missing", 0).unwrap(), Errno::Enoent.neg());
        port.mkdir(sys, "/dir").unwrap();
        // creating over an existing dir fails
        assert_eq!(port.mkdir(sys, "/dir").unwrap(), Errno::Eexist.neg());
        // writing to a dir ino is EISDIR
        let dirfd = port.open(sys, "/dir", 0).unwrap();
        assert!(dirfd >= 0);
        let buf = sys.heap_alloc(8, 8).unwrap();
        let r = port.write(sys, dirfd, buf, 8).unwrap();
        assert_eq!(r, Errno::Eisdir.neg());
        // bad fd
        assert_eq!(port.close(sys, 999).unwrap(), Errno::Ebadf.neg());
        assert_eq!(port.fsync(sys, 999).unwrap(), Errno::Ebadf.neg());
    });
}

#[test]
fn data_path_faults_only_under_mpk() {
    let mut full = boot(IsolationMode::Full);
    with_port(&mut full, |sys, port| {
        let fd = port
            .open(sys, "/x", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, &[7u8; 4096]).unwrap();
    });
    assert!(
        full.sys.stats().faults_resolved > 0,
        "Full mode resolves window faults"
    );

    let mut base = boot(IsolationMode::NoMpk);
    with_port(&mut base, |sys, port| {
        let fd = port
            .open(sys, "/x", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, &[7u8; 4096]).unwrap();
    });
    assert_eq!(base.sys.machine_stats().faults, 0, "NoMpk never faults");
}

#[test]
fn figure8_style_call_edges_exist() {
    let mut stack = boot(IsolationMode::Full);
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/wl", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        for i in 0..50u64 {
            let data = i.to_le_bytes();
            port.write_all(sys, fd, &data).unwrap();
        }
        port.fsync(sys, fd).unwrap();
        port.close(sys, fd).unwrap();
    });
    let sys = &stack.sys;
    let app = stack.app;
    let vfs = sys.find_cubicle("VFSCORE").unwrap();
    let ramfs = sys.find_cubicle("RAMFS").unwrap();
    let alloc = sys.find_cubicle("ALLOC").unwrap();
    let (_, stats) = sys.since_boot();
    assert!(stats.edge(app, vfs) > 50, "APP → VFSCORE is the hot edge");
    assert!(
        stats.edge(vfs, ramfs) > 50,
        "VFSCORE → RAMFS is the hot edge"
    );
    assert!(
        stats.edge(ramfs, alloc) >= 1,
        "RAMFS → ALLOC coarse allocations"
    );
    assert!(
        stats.edge(ramfs, alloc) < stats.edge(vfs, ramfs) / 10,
        "ALLOC edge is sparse (Fig. 8)"
    );
    assert_eq!(stats.edge(app, ramfs), 0, "APP never calls RAMFS directly");
}

#[test]
fn isolation_holds_across_the_stack() {
    // The application cannot touch RAMFS extents directly even though
    // RAMFS copied its data from the app's buffers moments ago.
    let mut stack = boot(IsolationMode::Full);
    let ramfs_cid = stack.sys.find_cubicle("RAMFS").unwrap();
    with_port(&mut stack, |sys, port| {
        let fd = port
            .open(sys, "/sec", flags::O_CREAT | flags::O_RDWR)
            .unwrap();
        port.write_all(sys, fd, b"in ramfs now").unwrap();
        port.close(sys, fd).unwrap();
    });
    // Find a RAMFS-owned heap page and try to read it from the app.
    let mut target = None;
    for page in 16..4096u64 {
        let addr = cubicle_mpk::VAddr::new(page * 4096);
        if stack.sys.page_owner(addr) == Some(ramfs_cid) {
            target = Some(addr);
        }
    }
    let target = target.expect("ramfs owns pages");
    let app = stack.app;
    let denied = stack.sys.run_in_cubicle(app, |sys| sys.read_vec(target, 8));
    assert!(denied.is_err(), "app must not read RAMFS pages");
}

//! The trusted component builder.
//!
//! The paper's builder (§5.2) extends Unikraft's build: it compiles each
//! component as a dynamic library, reads the symbols from
//! `exportsyms.uk`, parses each exported function's definition (from LLVM
//! IR) to extract its signature, and generates + signs a cross-cubicle
//! call trampoline per symbol. "The generated trampoline is
//! security-sensitive because it can copy data across per-cubicle stacks;
//! therefore, it must be generated and signed by the trusted builder."
//!
//! This module reproduces that pipeline: [`Builder::parse_export`] parses
//! a C-style declaration into an [`ExportDecl`] (name + arity + stack-argument
//! bytes), and [`Builder::sign`] produces the [`SignedExport`] the loader
//! verifies before installing the trampoline.

use std::fmt;

/// Number of integer argument registers in the x86-64 SysV ABI; arguments
/// beyond these live on the stack and must be copied across per-cubicle
/// stacks by the trampoline.
pub const ABI_REG_ARGS: usize = 6;

/// A parsed export declaration.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExportDecl {
    /// Symbol name.
    pub name: String,
    /// Number of parameters.
    pub arity: usize,
}

impl ExportDecl {
    /// Bytes of stack-resident arguments the trampoline must copy between
    /// the caller's and callee's stacks on every call (8 bytes per
    /// argument beyond the six register-passed ones).
    pub fn stack_arg_bytes(&self) -> usize {
        self.arity.saturating_sub(ABI_REG_ARGS) * 8
    }
}

impl fmt::Display for ExportDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// Errors from parsing an export declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseExportError {
    /// The declaration has no parameter list.
    MissingParamList,
    /// The function name could not be identified.
    MissingName,
}

impl fmt::Display for ParseExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseExportError::MissingParamList => write!(f, "declaration has no parameter list"),
            ParseExportError::MissingName => write!(f, "could not identify function name"),
        }
    }
}

impl std::error::Error for ParseExportError {}

/// An export declaration together with the builder's signature over it.
///
/// The loader recomputes the signature with the shared builder secret and
/// refuses unsigned or tampered trampolines.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SignedExport {
    /// The declaration the trampoline was generated for.
    pub decl: ExportDecl,
    /// The builder's signature over the declaration.
    pub signature: u64,
}

/// The trusted builder.
///
/// # Example
///
/// ```
/// use cubicle_core::Builder;
///
/// let builder = Builder::new();
/// let export = builder
///     .parse_export("ssize_t vfs_write(int fd, const void *buf, size_t n)")
///     .unwrap();
/// assert_eq!(export.name, "vfs_write");
/// assert_eq!(export.arity, 3);
/// let signed = builder.sign(export);
/// assert!(builder.verify(&signed));
/// ```
#[derive(Clone, Debug)]
pub struct Builder {
    secret: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// The deployment-wide trusted builder (fixed secret: the builder and
    /// the loader are both part of the TCB and share it).
    pub fn new() -> Builder {
        Builder {
            secret: 0xC0B1_C1E0_5B1D_4EE7,
        }
    }

    /// A builder with a *different* secret — models an untrusted party
    /// attempting to forge trampolines; its signatures will not verify.
    pub fn untrusted() -> Builder {
        Builder {
            secret: 0xBAD5_EED5_BAD5_EED5,
        }
    }

    /// Parses a C-style function declaration into an [`ExportDecl`].
    ///
    /// Mirrors the paper's builder, which "parses the corresponding
    /// function definition to extract its signature". The accepted
    /// grammar is `ret-type name(param {, param})` with `void` or an
    /// empty list meaning zero parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExportError`] when the string is not a function
    /// declaration.
    pub fn parse_export(&self, decl: &str) -> Result<ExportDecl, ParseExportError> {
        let open = decl.find('(').ok_or(ParseExportError::MissingParamList)?;
        let close = decl.rfind(')').ok_or(ParseExportError::MissingParamList)?;
        if close < open {
            return Err(ParseExportError::MissingParamList);
        }
        let head = decl[..open].trim_end();
        let name = head
            .rsplit(|c: char| c.is_whitespace() || c == '*')
            .next()
            .filter(|s| !s.is_empty() && s.chars().all(|c| c.is_alphanumeric() || c == '_'))
            .ok_or(ParseExportError::MissingName)?;
        let params = decl[open + 1..close].trim();
        let arity = if params.is_empty() || params == "void" {
            0
        } else {
            params.split(',').count()
        };
        Ok(ExportDecl {
            name: name.to_string(),
            arity,
        })
    }

    /// Generates and signs the trampoline descriptor for `decl`.
    pub fn sign(&self, decl: ExportDecl) -> SignedExport {
        let signature = self.signature_of(&decl);
        SignedExport { decl, signature }
    }

    /// Parses and signs in one step.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseExportError`] from [`Builder::parse_export`].
    pub fn export(&self, decl: &str) -> Result<SignedExport, ParseExportError> {
        Ok(self.sign(self.parse_export(decl)?))
    }

    /// Verifies a signed export against this builder's secret (the loader
    /// side of the trust handshake).
    pub fn verify(&self, signed: &SignedExport) -> bool {
        self.signature_of(&signed.decl) == signed.signature
    }

    fn signature_of(&self, decl: &ExportDecl) -> u64 {
        // FNV-1a over (secret, name, arity): a stand-in for the real
        // cryptographic signature, sufficient for a simulation.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.secret;
        for b in decl.name.bytes().chain([decl.arity as u8]) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Builder {
        Builder::new()
    }

    #[test]
    fn parse_simple() {
        let d = b()
            .parse_export("int open(const char *path, int flags)")
            .unwrap();
        assert_eq!(d.name, "open");
        assert_eq!(d.arity, 2);
    }

    #[test]
    fn parse_pointer_return_type() {
        let d = b().parse_export("void *uk_malloc(size_t size)").unwrap();
        assert_eq!(d.name, "uk_malloc");
        assert_eq!(d.arity, 1);
    }

    #[test]
    fn parse_void_params() {
        assert_eq!(b().parse_export("uint64_t uk_now(void)").unwrap().arity, 0);
        assert_eq!(b().parse_export("uint64_t uk_now()").unwrap().arity, 0);
    }

    #[test]
    fn parse_many_params_yields_stack_args() {
        let d = b()
            .parse_export("int pread(int a, void *b, size_t c, long d, long e, long f, long g)")
            .unwrap();
        assert_eq!(d.arity, 7);
        assert_eq!(d.stack_arg_bytes(), 8);
        let d6 = b()
            .parse_export("int f(int a, int b, int c, int d, int e, int f)")
            .unwrap();
        assert_eq!(d6.stack_arg_bytes(), 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            b().parse_export("not a function"),
            Err(ParseExportError::MissingParamList)
        );
        assert_eq!(
            b().parse_export(")("),
            Err(ParseExportError::MissingParamList)
        );
        assert_eq!(
            b().parse_export("(int x)"),
            Err(ParseExportError::MissingName)
        );
    }

    #[test]
    fn sign_verify_round_trip() {
        let builder = b();
        let signed = builder.export("void f(int x)").unwrap();
        assert!(builder.verify(&signed));
    }

    #[test]
    fn tampered_declaration_fails_verification() {
        let builder = b();
        let mut signed = builder.export("void f(int x)").unwrap();
        signed.decl.arity = 5; // attacker edits the copied-stack-bytes count
        assert!(!builder.verify(&signed));
    }

    #[test]
    fn untrusted_builder_signatures_rejected() {
        let mallory = Builder::untrusted();
        let forged = mallory.export("void f(int x)").unwrap();
        assert!(!b().verify(&forged));
        assert!(mallory.verify(&forged), "self-consistency of the forger");
    }

    #[test]
    fn display_shows_arity() {
        let d = ExportDecl {
            name: "f".into(),
            arity: 2,
        };
        assert_eq!(d.to_string(), "f/2");
    }
}

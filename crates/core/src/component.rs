//! Components and the images the loader consumes.
//!
//! A component is one third-party library OS module (vfscore, ramfs,
//! lwip, …) or the application itself. Components are compiled separately
//! ("as a separate dynamic library", paper §5.2) and handed to the loader
//! as a [`ComponentImage`]: synthetic code, sizes of its data/heap/stack
//! segments, and the export table the trusted builder produced.

use crate::builder::SignedExport;
use crate::error::CubicleError;
use crate::value::Value;
use cubicle_mpk::insn::CodeImage;
use std::any::Any;

/// Runtime state of a loaded component.
///
/// Implementations hold whatever Rust state the component needs; all data
/// that crosses cubicle boundaries must live in simulated memory
/// (allocated via `System::heap_alloc` etc.), which is what the isolation
/// machinery actually protects.
pub trait Component: Any {
    /// Upcast for entry-point downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Called by the monitor after a microreboot
    /// ([`crate::System::restart`]) has re-mapped the cubicle's segments:
    /// the component must drop host-side state referring to its old
    /// (reclaimed) simulated memory — caches, connection tables, pointers
    /// into the old heap. Wiring that survives a reboot (proxies to other
    /// cubicles, whose entry IDs stay stable) may be kept.
    ///
    /// The hook runs *inside* the freshly rebooted cubicle (the monitor
    /// pushes a frame before invoking it), so `sys` may be used for
    /// checked memory access — e.g. replaying a redo journal that a
    /// surviving peer kept reachable through a window.
    fn on_restart(&mut self, sys: &mut crate::System) {
        let _ = sys;
    }
}

/// Downcasts a component reference inside an entry point.
///
/// # Panics
///
/// Panics when the component is not a `T` — entry points are registered
/// together with their component by the loader, so a mismatch is a bug in
/// the trusted image, not a runtime condition.
pub fn component_mut<T: Component>(c: &mut dyn Component) -> &mut T {
    c.as_any_mut()
        .downcast_mut::<T>()
        .expect("entry point dispatched on the wrong component type")
}

/// Implements [`Component`] for a concrete state type.
///
/// The `restart = method` form wires an inherent method as the
/// [`Component::on_restart`] microreboot hook; `restart_sys = method`
/// wires a method that also takes the kernel (for hooks that replay
/// recovery state through checked memory access).
#[macro_export]
macro_rules! impl_component {
    ($ty:ty) => {
        impl $crate::Component for $ty {
            fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
                self
            }
        }
    };
    ($ty:ty, restart = $method:ident) => {
        impl $crate::Component for $ty {
            fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
                self
            }
            fn on_restart(&mut self, _sys: &mut $crate::System) {
                self.$method();
            }
        }
    };
    ($ty:ty, restart_sys = $method:ident) => {
        impl $crate::Component for $ty {
            fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
                self
            }
            fn on_restart(&mut self, sys: &mut $crate::System) {
                self.$method(sys);
            }
        }
    };
}

/// Signature of a public entry point, as dispatched by its trampoline.
///
/// `sys` is the kernel, `this` the component's own state, `args` the call
/// frame. Domain errors are returned POSIX-style as `Value::I64(-errno)`;
/// `Err` is reserved for isolation/kernel failures.
pub type EntryFn =
    fn(&mut crate::System, &mut dyn Component, &[Value]) -> Result<Value, CubicleError>;

/// A complete component image for the loader.
#[derive(Debug)]
pub struct ComponentImage {
    /// Component name (also the cubicle name when loaded standalone).
    pub name: String,
    /// Synthetic machine code, scanned for forbidden instructions.
    pub code: CodeImage,
    /// Pages of global data to map read-write.
    pub data_pages: usize,
    /// Pages of initial heap grant.
    pub heap_pages: usize,
    /// Pages of per-cubicle stack.
    pub stack_pages: usize,
    /// Loaded as a shared cubicle (LIBC-style: executes with the caller's
    /// privileges, its static data is accessible to everyone)?
    pub shared: bool,
    /// Exported entry points with builder-signed trampoline descriptors.
    pub exports: Vec<(SignedExport, EntryFn)>,
}

impl ComponentImage {
    /// Starts a builder-style description of a component with sensible
    /// segment defaults (16 heap pages, 4 stack pages, 2 data pages).
    pub fn new(name: impl Into<String>, code: CodeImage) -> ComponentImage {
        ComponentImage {
            name: name.into(),
            code,
            data_pages: 2,
            heap_pages: 16,
            stack_pages: 4,
            shared: false,
            exports: Vec::new(),
        }
    }

    /// Sets the initial heap grant in pages.
    pub fn heap_pages(mut self, pages: usize) -> ComponentImage {
        self.heap_pages = pages;
        self
    }

    /// Sets the stack size in pages.
    pub fn stack_pages(mut self, pages: usize) -> ComponentImage {
        self.stack_pages = pages;
        self
    }

    /// Sets the global data size in pages.
    pub fn data_pages(mut self, pages: usize) -> ComponentImage {
        self.data_pages = pages;
        self
    }

    /// Marks the component as a shared cubicle.
    pub fn shared(mut self) -> ComponentImage {
        self.shared = true;
        self
    }

    /// Adds a signed export.
    pub fn export(mut self, signed: SignedExport, func: EntryFn) -> ComponentImage {
        self.exports.push((signed, func));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe {
        hits: u32,
    }
    impl_component!(Probe);

    #[test]
    fn component_mut_downcasts() {
        let mut p = Probe { hits: 3 };
        let dynamic: &mut dyn Component = &mut p;
        assert_eq!(component_mut::<Probe>(dynamic).hits, 3);
        component_mut::<Probe>(dynamic).hits += 1;
        assert_eq!(p.hits, 4);
    }

    struct Other;
    impl_component!(Other);

    #[test]
    #[should_panic(expected = "wrong component type")]
    fn wrong_downcast_panics() {
        let mut o = Other;
        let dynamic: &mut dyn Component = &mut o;
        component_mut::<Probe>(dynamic);
    }

    #[test]
    fn image_builder_defaults() {
        let img = ComponentImage::new("ramfs", CodeImage::plain(100));
        assert_eq!(img.name, "ramfs");
        assert_eq!(img.data_pages, 2);
        assert!(!img.shared);
        let img = img.heap_pages(32).stack_pages(8).data_pages(1).shared();
        assert_eq!(
            (img.heap_pages, img.stack_pages, img.data_pages),
            (32, 8, 1)
        );
        assert!(img.shared);
    }
}

//! CubicleSan: the dynamic half of the monitor's concurrency sanitizer.
//!
//! The multi-core monitor serialises its four shared metadata structures
//! (page metadata, window descriptors, grant cache, heap ledger) on the
//! simulated-time [`MonitorLock`]s. Nothing in the lock machinery itself
//! *proves* the discipline is complete — a mutation site that forgets to
//! acquire still "works" under host-sequential execution. This module is
//! the proof harness: a vector-clock happens-before race detector plus
//! Eraser-style lockset tracking plus a lock-order (deadlock) graph,
//! driven by three kinds of events the kernel feeds it:
//!
//! * **dispatch** — the scheduler put a core on the CPU
//!   ([`System::switch_to_core`]); advances that core's own clock
//!   component. Scheduling is *not* synchronisation: no edges are drawn
//!   between cores, exactly as in the real machine.
//! * **acquire/release** — a monitor lock section. Acquire joins the
//!   lock's clock into the core's clock (the release that preceded it
//!   happens-before everything after the acquire) and records lock-order
//!   edges from every lock already held; release publishes the core's
//!   clock into the lock and ticks the core.
//! * **access** — a read or write of one of the four protected
//!   structures, annotated with the lexical site. Two accesses to the
//!   same structure from different cores, at least one a write, with
//!   *neither* a happens-before edge *nor* a common lock, are a race.
//!   Independently, Eraser's candidate-lockset intersection shrinks per
//!   structure; an empty candidate set over multi-core history is a
//!   lockset violation even when the observed interleaving happened to
//!   be ordered.
//!
//! The detector is a pure observer, like tracing and the audit: it
//! charges no simulated cycles, so enabling it changes no clock — the A/B
//! overhead entry in `BENCH_results.json` measures host wall time only.
//!
//! [`MonitorLock`]: crate::MonitorLock
//! [`System::switch_to_core`]: crate::System::switch_to_core

use crate::system::MonitorLock;
use std::fmt;

/// Number of monitor locks tracked (mirrors `MonitorLock::all()`).
const NUM_LOCKS: usize = 4;

/// Reports kept before further races are only counted, not recorded.
const REPORT_CAP: usize = 64;

/// The monitor structure an access note refers to. One-to-one with the
/// lock that is *supposed* to guard it — the whole point of the detector
/// is to find accesses where that correspondence was broken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RaceObject {
    /// `System::page_meta` (+ the reclaimed-page tombstones).
    PageMeta = 0,
    /// Window descriptor arrays (`Cubicle::windows`).
    Windows = 1,
    /// The window-grant authorisation cache.
    GrantCache = 2,
    /// Heap sub-allocators and grant accounting.
    Ledger = 3,
}

impl RaceObject {
    /// Stable lower-case name used in reports and exports.
    pub fn name(self) -> &'static str {
        match self {
            RaceObject::PageMeta => "page_meta",
            RaceObject::Windows => "windows",
            RaceObject::GrantCache => "grant_cache",
            RaceObject::Ledger => "ledger",
        }
    }

    /// All objects, in index order.
    pub fn all() -> [RaceObject; 4] {
        [
            RaceObject::PageMeta,
            RaceObject::Windows,
            RaceObject::GrantCache,
            RaceObject::Ledger,
        ]
    }
}

/// One side of a reported access pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessInfo {
    /// Core the access ran on.
    pub core: usize,
    /// That core's scalar epoch at the access.
    pub epoch: u64,
    /// Bitmask of [`MonitorLock`]s held (bit = lock discriminant).
    pub locks: u8,
    /// `true` for a mutation, `false` for a read.
    pub write: bool,
    /// Lexical site label (function:operation).
    pub site: &'static str,
}

/// A detected data race: two accesses to `object` on different cores,
/// at least one a write, with no happens-before edge and no common lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RaceReport {
    /// The structure both sides touched.
    pub object: RaceObject,
    /// The earlier access (in detection order).
    pub first: AccessInfo,
    /// The later access, which exposed the race.
    pub second: AccessInfo,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = |w: bool| if w { "write" } else { "read" };
        write!(
            f,
            "race on {}: {} at `{}` (core {}, locks {}) vs {} at `{}` (core {}, locks {})",
            self.object.name(),
            kind(self.first.write),
            self.first.site,
            self.first.core,
            lockset_names(self.first.locks),
            kind(self.second.write),
            self.second.site,
            self.second.core,
            lockset_names(self.second.locks),
        )
    }
}

/// An Eraser lockset violation: the candidate lockset of `object` became
/// empty once it had been touched from more than one core.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocksetViolation {
    /// The structure whose candidate set emptied.
    pub object: RaceObject,
    /// The access that emptied it.
    pub access: AccessInfo,
}

impl fmt::Display for LocksetViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lockset violation on {}: access at `{}` (core {}, locks {}) left no \
             common lock over the structure's multi-core history",
            self.object.name(),
            self.access.site,
            self.access.core,
            lockset_names(self.access.locks),
        )
    }
}

/// Renders a lock bitmask as `{a, b}` (or `{}` for lock-free).
fn lockset_names(mask: u8) -> String {
    let mut out = String::from("{");
    for lock in MonitorLock::all() {
        if mask & (1 << lock as usize) != 0 {
            if out.len() > 1 {
                out.push_str(", ");
            }
            out.push_str(lock.name());
        }
    }
    out.push('}');
    out
}

/// A vector clock: one monotone component per core, grown on demand.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, core: usize) -> u64 {
        self.0.get(core).copied().unwrap_or(0)
    }

    fn tick(&mut self, core: usize) {
        if self.0.len() <= core {
            self.0.resize(core + 1, 0);
        }
        self.0[core] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// The last recorded access of one kind (read or write) by one core to
/// one object.
#[derive(Clone, Copy, Debug)]
struct LastAccess {
    info: AccessInfo,
}

/// Per-object detector state.
#[derive(Default)]
struct ObjectState {
    /// Last write per core.
    writes: Vec<Option<LastAccess>>,
    /// Last read per core.
    reads: Vec<Option<LastAccess>>,
    /// Eraser candidate lockset: intersection of the locksets of every
    /// access so far (`None` until the first access).
    candidate: Option<u8>,
    /// Bitmask of cores that have touched the object.
    cores_seen: u64,
    /// Violation already reported for this object (report once).
    violated: bool,
}

/// The CubicleSan dynamic detector. Owned by [`crate::System`] behind
/// `set_race_detection`; all methods are host-side observers.
#[derive(Default)]
pub struct RaceDetector {
    /// One vector clock per core.
    clocks: Vec<VClock>,
    /// One clock per monitor lock (the release that last published).
    lock_clocks: [VClock; NUM_LOCKS],
    /// Locks currently held, per core (bitmask).
    held: Vec<u8>,
    /// Per-object access history.
    objects: [ObjectState; 4],
    /// Lock-order adjacency matrix: `order[a][b]` = a was held while b
    /// was acquired.
    order: [[bool; NUM_LOCKS]; NUM_LOCKS],
    /// Distinct lock-order edges observed.
    edges: u64,
    /// First cycle found in the lock-order graph, rendered.
    cycle: Option<String>,
    /// Race reports, deduplicated by (object, site pair), capped.
    reports: Vec<RaceReport>,
    /// Races detected past the report cap or the dedup filter.
    suppressed: u64,
    /// Lockset violations (one per object).
    violations: Vec<LocksetViolation>,
}

/// What one detector event added, for the kernel's stat counters.
#[derive(Clone, Copy, Default, Debug)]
pub struct RaceDelta {
    /// New race reports (including deduplicated/suppressed ones).
    pub races: u64,
    /// New distinct lock-order edges.
    pub edges: u64,
    /// New lockset violations.
    pub violations: u64,
}

impl RaceDetector {
    /// A fresh detector with empty history.
    pub fn new() -> RaceDetector {
        RaceDetector::default()
    }

    fn ensure_core(&mut self, core: usize) {
        if self.clocks.len() <= core {
            let old = self.clocks.len();
            self.clocks.resize(core + 1, VClock::default());
            self.held.resize(core + 1, 0);
            for obj in &mut self.objects {
                obj.writes.resize(core + 1, None);
                obj.reads.resize(core + 1, None);
            }
            // A core's own component starts at 1: its first event must
            // sit *above* every other core's initial view (0) of it, or
            // two never-synchronised first accesses would compare as
            // ordered (epoch 0 <= view 0).
            for c in old..=core {
                self.clocks[c].tick(c);
            }
        }
    }

    /// The scheduler dispatched `core`. Ticks its clock component — a new
    /// scheduling slice is a new epoch, but *not* a synchronisation edge.
    pub fn on_dispatch(&mut self, core: usize) {
        self.ensure_core(core);
        self.clocks[core].tick(core);
    }

    /// `core` acquired `lock`: join the lock's clock (happens-after the
    /// previous release) and record lock-order edges from every lock
    /// already held.
    pub fn on_acquire(&mut self, core: usize, lock: MonitorLock) -> RaceDelta {
        self.ensure_core(core);
        let l = lock as usize;
        let mut delta = RaceDelta::default();
        let lock_clock = self.lock_clocks[l].clone();
        self.clocks[core].join(&lock_clock);
        let held = self.held[core];
        for prior in MonitorLock::all() {
            let p = prior as usize;
            if p != l && held & (1 << p) != 0 && !self.order[p][l] {
                self.order[p][l] = true;
                self.edges += 1;
                delta.edges += 1;
                if self.cycle.is_none() {
                    self.cycle = self.find_cycle();
                }
            }
        }
        self.held[core] |= 1 << l;
        delta
    }

    /// `core` released `lock`: publish the core's clock into the lock and
    /// tick the core (subsequent local events are a new epoch).
    pub fn on_release(&mut self, core: usize, lock: MonitorLock) {
        self.ensure_core(core);
        let l = lock as usize;
        self.held[core] &= !(1 << l);
        self.lock_clocks[l] = self.clocks[core].clone();
        self.clocks[core].tick(core);
    }

    /// `core` touched `object` at `site`. Runs the happens-before pair
    /// check against every other core's last conflicting access and the
    /// Eraser candidate-lockset intersection.
    pub fn on_access(
        &mut self,
        core: usize,
        object: RaceObject,
        write: bool,
        site: &'static str,
    ) -> RaceDelta {
        self.ensure_core(core);
        let mut delta = RaceDelta::default();
        let info = AccessInfo {
            core,
            epoch: self.clocks[core].get(core),
            locks: self.held[core],
            write,
            site,
        };

        // ── happens-before pair check ────────────────────────────────
        let mut found: Vec<RaceReport> = Vec::new();
        {
            let obj = &self.objects[object as usize];
            for other in 0..self.clocks.len() {
                if other == core {
                    continue;
                }
                // A write conflicts with prior reads and writes; a read
                // only with prior writes.
                let mut candidates: Vec<LastAccess> = Vec::new();
                if let Some(w) = obj.writes[other] {
                    candidates.push(w);
                }
                if write {
                    if let Some(r) = obj.reads[other] {
                        candidates.push(r);
                    }
                }
                for prior in candidates {
                    let ordered = prior.info.epoch <= self.clocks[core].get(other);
                    let common = prior.info.locks & info.locks != 0;
                    if !ordered && !common {
                        found.push(RaceReport {
                            object,
                            first: prior.info,
                            second: info,
                        });
                    }
                }
            }
        }
        for report in found {
            delta.races += 1;
            let dup = self.reports.iter().any(|r| {
                r.object == report.object
                    && r.first.site == report.first.site
                    && r.second.site == report.second.site
            });
            if dup || self.reports.len() >= REPORT_CAP {
                self.suppressed += 1;
            } else {
                self.reports.push(report);
            }
        }

        // ── Eraser lockset intersection ──────────────────────────────
        let obj = &mut self.objects[object as usize];
        obj.candidate = Some(match obj.candidate {
            None => info.locks,
            Some(c) => c & info.locks,
        });
        obj.cores_seen |= 1 << core.min(63);
        let multi_core = obj.cores_seen.count_ones() > 1;
        if multi_core && obj.candidate == Some(0) && !obj.violated {
            obj.violated = true;
            self.violations.push(LocksetViolation {
                object,
                access: info,
            });
            delta.violations += 1;
        }

        // ── record as the new last access ────────────────────────────
        let slot = if write {
            &mut obj.writes[core]
        } else {
            &mut obj.reads[core]
        };
        *slot = Some(LastAccess { info });
        delta
    }

    /// Depth-first search for a cycle in the 4-node lock-order graph,
    /// rendered as `a -> b -> a`.
    fn find_cycle(&self) -> Option<String> {
        // Colours: 0 unvisited, 1 on stack, 2 done.
        let mut colour = [0u8; NUM_LOCKS];
        let mut stack: Vec<usize> = Vec::new();
        fn dfs(
            order: &[[bool; NUM_LOCKS]; NUM_LOCKS],
            colour: &mut [u8; NUM_LOCKS],
            stack: &mut Vec<usize>,
            node: usize,
        ) -> Option<Vec<usize>> {
            colour[node] = 1;
            stack.push(node);
            for (next, &edge) in order[node].iter().enumerate() {
                if !edge {
                    continue;
                }
                if colour[next] == 1 {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle = stack[from..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                if colour[next] == 0 {
                    if let Some(c) = dfs(order, colour, stack, next) {
                        return Some(c);
                    }
                }
            }
            stack.pop();
            colour[node] = 2;
            None
        }
        for start in 0..NUM_LOCKS {
            if colour[start] == 0 {
                if let Some(cycle) = dfs(&self.order, &mut colour, &mut stack, start) {
                    let names: Vec<&str> = cycle
                        .iter()
                        .map(|&n| MonitorLock::all()[n].name())
                        .collect();
                    return Some(names.join(" -> "));
                }
            }
        }
        None
    }

    /// Race reports recorded so far (deduplicated, capped).
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Races found past the dedup filter or report cap.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Lockset violations recorded so far (one per object).
    pub fn violations(&self) -> &[LocksetViolation] {
        &self.violations
    }

    /// Distinct lock-order edges observed.
    pub fn lockorder_edges(&self) -> u64 {
        self.edges
    }

    /// The first lock-order cycle found, rendered (`None` = acyclic).
    pub fn lockorder_cycle(&self) -> Option<&str> {
        self.cycle.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: MonitorLock = MonitorLock::PageMeta;
    const W: MonitorLock = MonitorLock::Windows;
    const G: MonitorLock = MonitorLock::GrantCache;
    const L: MonitorLock = MonitorLock::Ledger;

    fn locked_access(d: &mut RaceDetector, core: usize, lock: MonitorLock, site: &'static str) {
        d.on_acquire(core, lock);
        d.on_access(core, RaceObject::PageMeta, true, site);
        d.on_release(core, lock);
    }

    #[test]
    fn same_lock_never_races() {
        let mut d = RaceDetector::new();
        locked_access(&mut d, 0, P, "a");
        d.on_dispatch(1);
        locked_access(&mut d, 1, P, "b");
        assert!(d.reports().is_empty());
        assert!(d.violations().is_empty());
    }

    #[test]
    fn unlocked_cross_core_write_races() {
        let mut d = RaceDetector::new();
        locked_access(&mut d, 0, P, "writer");
        d.on_dispatch(1);
        // Core 1 never acquired anything after core 0's release: no
        // happens-before edge, and the access holds no lock.
        let delta = d.on_access(1, RaceObject::PageMeta, true, "elided");
        assert_eq!(delta.races, 1);
        assert_eq!(d.reports().len(), 1);
        let r = d.reports()[0];
        assert_eq!(r.first.site, "writer");
        assert_eq!(r.second.site, "elided");
        assert_eq!((r.first.core, r.second.core), (0, 1));
        assert_eq!(d.violations().len(), 1, "lockset also empties");
    }

    #[test]
    fn lock_join_creates_happens_before_edge() {
        let mut d = RaceDetector::new();
        locked_access(&mut d, 0, P, "writer");
        d.on_dispatch(1);
        // Core 1 acquires/releases the same lock first: the join orders
        // core 0's write before everything after, so even a lock-free
        // access afterwards is not a *race* (the lockset still empties).
        d.on_acquire(1, P);
        d.on_release(1, P);
        let delta = d.on_access(1, RaceObject::PageMeta, true, "late");
        assert_eq!(delta.races, 0, "happens-before edge suppresses the pair");
        assert_eq!(d.violations().len(), 1, "Eraser still flags the lockset");
    }

    #[test]
    fn read_read_does_not_race() {
        let mut d = RaceDetector::new();
        d.on_access(0, RaceObject::Windows, false, "r0");
        d.on_dispatch(1);
        let delta = d.on_access(1, RaceObject::Windows, false, "r1");
        assert_eq!(delta.races, 0);
    }

    #[test]
    fn read_vs_unordered_write_races() {
        let mut d = RaceDetector::new();
        d.on_acquire(0, W);
        d.on_access(0, RaceObject::Windows, false, "reader");
        d.on_release(0, W);
        d.on_dispatch(1);
        let delta = d.on_access(1, RaceObject::Windows, true, "wild-writer");
        assert_eq!(delta.races, 1);
    }

    #[test]
    fn single_core_never_races() {
        let mut d = RaceDetector::new();
        for i in 0..10 {
            d.on_dispatch(0);
            let delta = d.on_access(
                0,
                RaceObject::Ledger,
                i % 2 == 0,
                if i % 2 == 0 { "w" } else { "r" },
            );
            assert_eq!(delta.races, 0);
        }
        assert!(d.violations().is_empty(), "one core: no multi-core history");
    }

    #[test]
    fn duplicate_pairs_are_suppressed() {
        let mut d = RaceDetector::new();
        locked_access(&mut d, 0, P, "writer");
        d.on_dispatch(1);
        d.on_access(1, RaceObject::PageMeta, true, "elided");
        // The same site pair fires again on core 1's next slice —
        // recorded once, counted after.
        d.on_dispatch(1);
        d.on_access(1, RaceObject::PageMeta, true, "elided");
        assert_eq!(d.reports().len(), 1);
        assert!(d.suppressed() >= 1);
    }

    #[test]
    fn lock_order_edges_accumulate_and_stay_acyclic() {
        let mut d = RaceDetector::new();
        d.on_acquire(0, P);
        d.on_acquire(0, W); // P -> W
        d.on_release(0, W);
        d.on_acquire(0, G); // P -> G
        d.on_release(0, G);
        d.on_release(0, P);
        d.on_acquire(0, L);
        d.on_acquire(0, P); // L -> P
        d.on_release(0, P);
        d.on_release(0, L);
        assert_eq!(d.lockorder_edges(), 3);
        assert_eq!(d.lockorder_cycle(), None);
        // Repeats add no new edges.
        d.on_acquire(0, P);
        d.on_acquire(0, W);
        d.on_release(0, W);
        d.on_release(0, P);
        assert_eq!(d.lockorder_edges(), 3);
    }

    #[test]
    fn lock_order_cycle_is_reported() {
        let mut d = RaceDetector::new();
        d.on_acquire(0, P);
        d.on_acquire(0, W); // P -> W
        d.on_release(0, W);
        d.on_release(0, P);
        d.on_acquire(1, W);
        let delta = d.on_acquire(1, P); // W -> P: closes the cycle
        assert_eq!(delta.edges, 1);
        let cycle = d.lockorder_cycle().expect("cycle found");
        assert!(
            cycle.contains("page_meta") && cycle.contains("windows"),
            "cycle names both locks: {cycle}"
        );
    }

    #[test]
    fn report_and_violation_render() {
        let mut d = RaceDetector::new();
        locked_access(&mut d, 0, P, "writer");
        d.on_dispatch(1);
        d.on_access(1, RaceObject::PageMeta, true, "elided");
        let text = d.reports()[0].to_string();
        assert!(text.contains("race on page_meta"), "{text}");
        assert!(
            text.contains("`writer`") && text.contains("`elided`"),
            "{text}"
        );
        assert!(
            text.contains("{page_meta}") && text.contains("{}"),
            "{text}"
        );
        let v = d.violations()[0].to_string();
        assert!(v.contains("lockset violation on page_meta"), "{v}");
    }
}

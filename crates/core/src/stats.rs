//! Kernel-level event statistics.
//!
//! Figures 5 and 8 of the paper annotate the component graphs with
//! cross-cubicle call counts "obtained during benchmark measurement
//! time"; the ablation in Figure 6 decomposes overhead into trampoline,
//! MPK and window costs. These counters provide the raw data.

use crate::ids::CubicleId;
use std::collections::HashMap;
use std::fmt;

/// Counters maintained by the kernel (in addition to the machine-level
/// counters in [`cubicle_mpk::MachineStats`]).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SysStats {
    /// Total cross-cubicle calls dispatched.
    pub cross_calls: u64,
    /// Calls per (caller, callee) edge.
    pub call_edges: HashMap<(CubicleId, CubicleId), u64>,
    /// Protection faults resolved by trap-and-map (page retagged).
    pub faults_resolved: u64,
    /// Protection faults denied (no open window).
    pub faults_denied: u64,
    /// Window descriptors probed during ACL searches.
    pub acl_probes: u64,
    /// Window management operations (init/add/open/close/…).
    pub window_ops: u64,
    /// Bytes of stack-resident arguments copied across per-cubicle stacks
    /// by trampolines.
    pub stack_bytes_copied: u64,
    /// Messages sent by the IPC baseline transport.
    pub ipc_msgs: u64,
    /// Payload bytes marshalled by the IPC baseline transport.
    pub ipc_bytes: u64,
    /// Component images the loader refused (forbidden instructions).
    pub loads_rejected: u64,
    /// Total forbidden `wrpkru`/`syscall` occurrences found by the
    /// loader's exhaustive audit scan of rejected images.
    pub forbidden_insns: u64,
    /// Cubicles quarantined by the fault containment machinery.
    pub quarantines: u64,
    /// Microreboots performed (`System::restart`).
    pub restarts: u64,
    /// Cross-call frames forcibly unwound while propagating a contained
    /// fault toward a healthy caller.
    pub unwound_frames: u64,
    /// Containable faults converted to an errno at a cross-call boundary
    /// (one per contained incident reaching a healthy caller).
    pub contained_faults: u64,
    /// Callees quarantined by the cycle watchdog for exceeding their
    /// cross-call cycle budget.
    pub watchdog_trips: u64,
    /// Batched cross-call dispatches (one trampoline + PKRU round-trip
    /// covering a whole batch; see [`crate::System::cross_call_batch`]).
    pub batch_dispatches: u64,
    /// Entry invocations carried inside batched dispatches.
    pub batched_calls: u64,
    /// Trap-and-map resolutions answered by the window-grant cache
    /// (O(1) re-check of the remembered descriptor, no linear search).
    pub grant_cache_hits: u64,
    /// Trap-and-map resolutions that fell through to the linear window
    /// search while the grant cache was enabled.
    pub grant_cache_misses: u64,
    /// Grant-cache entries dropped by precise invalidation (window
    /// close/remove/destroy, ownership transfer, quarantine, restart).
    pub grant_cache_invalidations: u64,
    /// Data races detected by CubicleSan (including pairs suppressed by
    /// the dedup filter or the report cap). 0 when detection is off.
    pub race_reports: u64,
    /// Distinct lock-order edges CubicleSan observed. 0 when off.
    pub lockorder_edges: u64,
    /// Eraser lockset violations CubicleSan recorded. 0 when off.
    pub lockset_violations: u64,
    /// Write-ahead-log replays performed on database open (each one
    /// recovered a crashed commit path).
    pub wal_replays: u64,
    /// Committed WAL frames applied during replays.
    pub wal_frames_recovered: u64,
    /// Torn / uncommitted WAL tails discarded during replays.
    pub wal_torn_tails_discarded: u64,
    /// RAMFS inode-journal replays performed by `on_restart` after a
    /// microreboot.
    pub ramfs_journal_replays: u64,
    /// Group-commit syncs that coalesced two or more transactions into
    /// one durable write.
    pub group_commit_batches: u64,
}

impl SysStats {
    /// Records one call on the `caller → callee` edge.
    pub fn record_edge(&mut self, caller: CubicleId, callee: CubicleId) {
        *self.call_edges.entry((caller, callee)).or_insert(0) += 1;
        self.cross_calls += 1;
    }

    /// Calls observed on the `caller → callee` edge.
    pub fn edge(&self, caller: CubicleId, callee: CubicleId) -> u64 {
        self.call_edges.get(&(caller, callee)).copied().unwrap_or(0)
    }

    /// Total calls *into* `callee` from anyone.
    pub fn calls_into(&self, callee: CubicleId) -> u64 {
        self.call_edges
            .iter()
            .filter(|((_, to), _)| *to == callee)
            .map(|(_, n)| n)
            .sum()
    }

    /// Difference `self - earlier`, for windowed measurements (e.g.,
    /// excluding boot). Edges absent from `earlier` are kept as-is.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has counters larger than `self` (it must be a
    /// snapshot taken before).
    pub fn since(&self, earlier: &SysStats) -> SysStats {
        assert!(
            earlier.cross_calls <= self.cross_calls,
            "snapshot is not earlier"
        );
        let mut edges = HashMap::new();
        // verify: order-ok — differences land in another hash map, so no
        // iteration order is observable
        for (&edge, &n) in &self.call_edges {
            let base = earlier.call_edges.get(&edge).copied().unwrap_or(0);
            assert!(base <= n, "snapshot is not earlier");
            if n - base > 0 {
                edges.insert(edge, n - base);
            }
        }
        SysStats {
            cross_calls: self.cross_calls - earlier.cross_calls,
            call_edges: edges,
            faults_resolved: self.faults_resolved - earlier.faults_resolved,
            faults_denied: self.faults_denied - earlier.faults_denied,
            acl_probes: self.acl_probes - earlier.acl_probes,
            window_ops: self.window_ops - earlier.window_ops,
            stack_bytes_copied: self.stack_bytes_copied - earlier.stack_bytes_copied,
            ipc_msgs: self.ipc_msgs - earlier.ipc_msgs,
            ipc_bytes: self.ipc_bytes - earlier.ipc_bytes,
            loads_rejected: self.loads_rejected - earlier.loads_rejected,
            forbidden_insns: self.forbidden_insns - earlier.forbidden_insns,
            quarantines: self.quarantines - earlier.quarantines,
            restarts: self.restarts - earlier.restarts,
            unwound_frames: self.unwound_frames - earlier.unwound_frames,
            contained_faults: self.contained_faults - earlier.contained_faults,
            watchdog_trips: self.watchdog_trips - earlier.watchdog_trips,
            batch_dispatches: self.batch_dispatches - earlier.batch_dispatches,
            batched_calls: self.batched_calls - earlier.batched_calls,
            grant_cache_hits: self.grant_cache_hits - earlier.grant_cache_hits,
            grant_cache_misses: self.grant_cache_misses - earlier.grant_cache_misses,
            grant_cache_invalidations: self.grant_cache_invalidations
                - earlier.grant_cache_invalidations,
            race_reports: self.race_reports - earlier.race_reports,
            lockorder_edges: self.lockorder_edges - earlier.lockorder_edges,
            lockset_violations: self.lockset_violations - earlier.lockset_violations,
            wal_replays: self.wal_replays - earlier.wal_replays,
            wal_frames_recovered: self.wal_frames_recovered - earlier.wal_frames_recovered,
            wal_torn_tails_discarded: self.wal_torn_tails_discarded
                - earlier.wal_torn_tails_discarded,
            ramfs_journal_replays: self.ramfs_journal_replays - earlier.ramfs_journal_replays,
            group_commit_batches: self.group_commit_batches - earlier.group_commit_batches,
        }
    }

    /// Folds one CubicleSan event delta into the sanitizer counters.
    pub(crate) fn apply_race_delta(&mut self, delta: crate::race::RaceDelta) {
        self.race_reports += delta.races;
        self.lockorder_edges += delta.edges;
        self.lockset_violations += delta.violations;
    }
}

impl fmt::Display for SysStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cross-calls: {}  faults: {} resolved / {} denied  acl-probes: {}  window-ops: {}",
            self.cross_calls,
            self.faults_resolved,
            self.faults_denied,
            self.acl_probes,
            self.window_ops
        )?;
        writeln!(
            f,
            "stack-bytes-copied: {}  ipc: {} msgs / {} bytes",
            self.stack_bytes_copied, self.ipc_msgs, self.ipc_bytes
        )?;
        if self.loads_rejected > 0 {
            writeln!(
                f,
                "loads-rejected: {} ({} forbidden occurrences)",
                self.loads_rejected, self.forbidden_insns
            )?;
        }
        // Quiet when containment never fired, so snapshots of healthy
        // runs (e.g. the golden Fig. 6 surface) are unchanged.
        if self.quarantines + self.restarts + self.unwound_frames + self.contained_faults > 0 {
            writeln!(
                f,
                "quarantines: {}  restarts: {}  unwound-frames: {}  contained-faults: {}",
                self.quarantines, self.restarts, self.unwound_frames, self.contained_faults
            )?;
        }
        if self.watchdog_trips > 0 {
            writeln!(f, "watchdog-trips: {}", self.watchdog_trips)?;
        }
        // Quiet unless the batching / grant-cache fast paths engaged, so
        // feature-off snapshots (golden Fig. 6) render identically.
        if self.batch_dispatches > 0 {
            writeln!(
                f,
                "batch-dispatches: {}  batched-calls: {}",
                self.batch_dispatches, self.batched_calls
            )?;
        }
        if self.grant_cache_hits + self.grant_cache_misses + self.grant_cache_invalidations > 0 {
            writeln!(
                f,
                "grant-cache: {} hits / {} misses / {} invalidations",
                self.grant_cache_hits, self.grant_cache_misses, self.grant_cache_invalidations
            )?;
        }
        // Quiet unless crash recovery actually ran, so healthy-run
        // snapshots (golden Fig. 6) render identically.
        if self.wal_replays
            + self.wal_frames_recovered
            + self.wal_torn_tails_discarded
            + self.ramfs_journal_replays
            > 0
        {
            writeln!(
                f,
                "recovery: {} wal replays ({} frames, {} torn tails) / {} ramfs journal replays",
                self.wal_replays,
                self.wal_frames_recovered,
                self.wal_torn_tails_discarded,
                self.ramfs_journal_replays
            )?;
        }
        if self.group_commit_batches > 0 {
            writeln!(f, "group-commit-batches: {}", self.group_commit_batches)?;
        }
        // Quiet when CubicleSan is off (lockorder_edges is nonzero on any
        // detection-on run that nests locks, so the sanitizer line shows
        // up exactly when the detector ran with something to say).
        if self.race_reports + self.lockorder_edges + self.lockset_violations > 0 {
            writeln!(
                f,
                "sanitizer: {} races / {} lock-order edges / {} lockset violations",
                self.race_reports, self.lockorder_edges, self.lockset_violations
            )?;
        }
        let mut edges: Vec<_> = self.call_edges.iter().collect();
        edges.sort();
        for ((from, to), n) in edges {
            writeln!(f, "  {from} -> {to}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_accumulate() {
        let mut s = SysStats::default();
        s.record_edge(CubicleId(1), CubicleId(2));
        s.record_edge(CubicleId(1), CubicleId(2));
        s.record_edge(CubicleId(2), CubicleId(3));
        assert_eq!(s.edge(CubicleId(1), CubicleId(2)), 2);
        assert_eq!(s.edge(CubicleId(2), CubicleId(3)), 1);
        assert_eq!(s.edge(CubicleId(3), CubicleId(1)), 0);
        assert_eq!(s.cross_calls, 3);
        assert_eq!(s.calls_into(CubicleId(2)), 2);
    }

    #[test]
    fn since_subtracts() {
        let mut s = SysStats::default();
        s.record_edge(CubicleId(1), CubicleId(2));
        let snapshot = s.clone();
        s.record_edge(CubicleId(1), CubicleId(2));
        s.record_edge(CubicleId(4), CubicleId(5));
        s.faults_resolved = 7;
        let d = s.since(&snapshot);
        assert_eq!(d.cross_calls, 2);
        assert_eq!(d.edge(CubicleId(1), CubicleId(2)), 1);
        assert_eq!(d.edge(CubicleId(4), CubicleId(5)), 1);
        assert_eq!(d.faults_resolved, 7);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn since_rejects_future_snapshot() {
        let mut later = SysStats::default();
        later.record_edge(CubicleId(1), CubicleId(2));
        SysStats::default().since(&later);
    }

    #[test]
    fn display_lists_edges() {
        let mut s = SysStats::default();
        s.record_edge(CubicleId(1), CubicleId(2));
        s.stack_bytes_copied = 96;
        s.ipc_msgs = 4;
        s.ipc_bytes = 512;
        let out = s.to_string();
        assert!(out.contains("cubicle#1 -> cubicle#2: 1"));
        assert!(out.contains("stack-bytes-copied: 96"));
        assert!(out.contains("ipc: 4 msgs / 512 bytes"));
        assert!(!out.contains("loads-rejected"), "quiet when nothing failed");
        s.loads_rejected = 1;
        s.forbidden_insns = 3;
        assert!(s
            .to_string()
            .contains("loads-rejected: 1 (3 forbidden occurrences)"));
    }
}

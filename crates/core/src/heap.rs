//! Per-cubicle memory sub-allocator.
//!
//! "Each isolated cubicle has its own memory sub-allocator" (paper §4):
//! the monitor grants whole pages to a cubicle, and this first-fit
//! free-list allocator carves them into byte-granularity allocations.
//! Allocator metadata is kept host-side for simulation clarity; only the
//! allocated storage itself lives in simulated memory.

use cubicle_mpk::VAddr;

/// A first-fit free-list allocator with coalescing.
///
/// # Example
///
/// ```
/// use cubicle_core::SubAllocator;
/// use cubicle_mpk::VAddr;
///
/// let mut heap = SubAllocator::new();
/// heap.add_region(VAddr::new(0x10000), 4096);
/// let a = heap.alloc(100, 8).unwrap();
/// let b = heap.alloc(200, 8).unwrap();
/// assert_ne!(a, b);
/// heap.free(a).unwrap();
/// heap.free(b).unwrap();
/// // after freeing everything, a full-size allocation fits again
/// assert!(heap.alloc(4096, 1).is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SubAllocator {
    /// Free blocks, sorted by start address, always coalesced.
    free: Vec<(u64, usize)>,
    /// Live allocations: start → length.
    live: Vec<(u64, usize)>,
    /// Total bytes handed to the allocator via [`SubAllocator::add_region`].
    capacity: usize,
    /// Bytes currently allocated.
    in_use: usize,
}

/// Error returned by [`SubAllocator::free`] for a pointer that was never
/// allocated (or was already freed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvalidFree(pub VAddr);

impl std::fmt::Display for InvalidFree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid free of {}", self.0)
    }
}

impl std::error::Error for InvalidFree {}

impl SubAllocator {
    /// Creates an empty allocator with no backing memory.
    pub fn new() -> SubAllocator {
        SubAllocator::default()
    }

    /// Donates the region `[start, start+len)` to the allocator.
    pub fn add_region(&mut self, start: VAddr, len: usize) {
        if len == 0 {
            return;
        }
        self.capacity += len;
        self.insert_free(start.raw(), len);
    }

    /// Total bytes under management.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Allocates `size` bytes aligned to `align`.
    ///
    /// Returns `None` when no free block fits.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `size` is zero.
    pub fn alloc(&mut self, size: usize, align: usize) -> Option<VAddr> {
        assert!(size > 0, "zero-size allocation");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align as u64;
        let mut chosen: Option<(usize, u64)> = None;
        for (i, &(start, len)) in self.free.iter().enumerate() {
            let aligned = (start + align - 1) & !(align - 1);
            let pad = (aligned - start) as usize;
            if pad + size <= len {
                chosen = Some((i, aligned));
                break;
            }
        }
        let (i, aligned) = chosen?;
        let (start, len) = self.free[i];
        let pad = (aligned - start) as usize;
        self.free.remove(i);
        if pad > 0 {
            self.insert_free(start, pad);
        }
        let tail = len - pad - size;
        if tail > 0 {
            self.insert_free(aligned + size as u64, tail);
        }
        let idx = self.live.partition_point(|&(s, _)| s < aligned);
        self.live.insert(idx, (aligned, size));
        self.in_use += size;
        Some(VAddr::new(aligned))
    }

    /// Releases an allocation made by [`SubAllocator::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFree`] when `addr` is not a live allocation.
    pub fn free(&mut self, addr: VAddr) -> Result<usize, InvalidFree> {
        let raw = addr.raw();
        let idx = self
            .live
            .binary_search_by_key(&raw, |&(s, _)| s)
            .map_err(|_| InvalidFree(addr))?;
        let (start, len) = self.live.remove(idx);
        self.in_use -= len;
        self.insert_free(start, len);
        Ok(len)
    }

    /// Size of the live allocation at `addr`, if any.
    pub fn allocation_len(&self, addr: VAddr) -> Option<usize> {
        self.live
            .binary_search_by_key(&addr.raw(), |&(s, _)| s)
            .ok()
            .map(|i| self.live[i].1)
    }

    fn insert_free(&mut self, start: u64, len: usize) {
        let idx = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(idx, (start, len));
        // Coalesce with successor, then predecessor.
        if idx + 1 < self.free.len() {
            let (s, l) = self.free[idx];
            let (ns, nl) = self.free[idx + 1];
            if s + l as u64 == ns {
                self.free[idx] = (s, l + nl);
                self.free.remove(idx + 1);
            }
        }
        if idx > 0 {
            let (ps, pl) = self.free[idx - 1];
            let (s, l) = self.free[idx];
            if ps + pl as u64 == s {
                self.free[idx - 1] = (ps, pl + l);
                self.free.remove(idx);
            }
        }
    }

    /// Number of fragments on the free list (diagnostics).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(len: usize) -> SubAllocator {
        let mut h = SubAllocator::new();
        h.add_region(VAddr::new(0x10000), len);
        h
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut h = heap(4096);
        let a = h.alloc(128, 8).unwrap();
        assert_eq!(h.in_use(), 128);
        assert_eq!(h.allocation_len(a), Some(128));
        assert_eq!(h.free(a).unwrap(), 128);
        assert_eq!(h.in_use(), 0);
        assert_eq!(h.allocation_len(a), None);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut h = heap(4096);
        let mut spans = Vec::new();
        for i in 1..=16 {
            let a = h.alloc(i * 10, 8).unwrap();
            spans.push((a.raw(), a.raw() + (i * 10) as u64));
        }
        spans.sort();
        for pair in spans.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlap: {pair:?}");
        }
    }

    #[test]
    fn alignment_respected() {
        let mut h = heap(4096);
        h.alloc(3, 1).unwrap();
        let a = h.alloc(64, 64).unwrap();
        assert!(a.is_aligned(64));
        let b = h.alloc(100, 4096).map(|v| v.is_aligned(4096));
        // Either it fit (and is aligned) or there was no aligned space.
        assert_ne!(b, Some(false));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut h = heap(256);
        assert!(h.alloc(300, 1).is_none());
        let a = h.alloc(256, 1).unwrap();
        assert!(h.alloc(1, 1).is_none());
        h.free(a).unwrap();
        assert!(h.alloc(256, 1).is_some());
    }

    #[test]
    fn coalescing_rebuilds_big_blocks() {
        let mut h = heap(4096);
        let a = h.alloc(1000, 1).unwrap();
        let b = h.alloc(1000, 1).unwrap();
        let c = h.alloc(1000, 1).unwrap();
        h.free(b).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        assert_eq!(h.fragments(), 1);
        assert!(h.alloc(4096, 1).is_some());
    }

    #[test]
    fn double_free_rejected() {
        let mut h = heap(4096);
        let a = h.alloc(10, 1).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(InvalidFree(a)));
    }

    #[test]
    fn free_of_interior_pointer_rejected() {
        let mut h = heap(4096);
        let a = h.alloc(100, 1).unwrap();
        assert!(h.free(a + 4).is_err());
    }

    #[test]
    fn multiple_regions() {
        let mut h = SubAllocator::new();
        h.add_region(VAddr::new(0x10000), 128);
        h.add_region(VAddr::new(0x20000), 4096);
        assert_eq!(h.capacity(), 128 + 4096);
        // Too big for the first region, must come from the second.
        let a = h.alloc(1024, 1).unwrap();
        assert!(a.raw() >= 0x20000);
    }

    #[test]
    fn zero_len_region_ignored() {
        let mut h = SubAllocator::new();
        h.add_region(VAddr::new(0x1000), 0);
        assert_eq!(h.capacity(), 0);
        assert!(h.alloc(1, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "zero-size")]
    fn zero_size_alloc_panics() {
        heap(64).alloc(0, 1);
    }
}

//! Identifier newtypes used throughout the kernel.

use std::fmt;

/// Identifies a cubicle (an isolation compartment).
///
/// Cubicle 0 is always the trusted monitor. The paper's evaluation never
/// needs more than the 16 compartments afforded by MPK's 16 keys; we allow
/// up to 64 cubicle IDs so the window bitmask fits a `u64`, but key
/// assignment still fails beyond 16 (see `System::load`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CubicleId(pub u16);

impl CubicleId {
    /// The trusted monitor's cubicle.
    pub const MONITOR: CubicleId = CubicleId(0);

    /// Index into per-cubicle tables.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The bit representing this cubicle in a window's ACL bitmask.
    pub const fn mask_bit(self) -> u64 {
        1u64 << self.0
    }
}

impl fmt::Display for CubicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cubicle#{}", self.0)
    }
}

/// Identifies a window within its owning cubicle.
///
/// Window IDs are only meaningful together with their owner: windows "are
/// assigned to the calling cubicle, and can only be managed by it"
/// (paper §4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WindowId(pub u32);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window#{}", self.0)
    }
}

/// Identifies a public entry point registered with the loader; each entry
/// has exactly one trusted cross-cubicle call trampoline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntryId(pub u32);

impl EntryId {
    /// Index into the global entry table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entry#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_is_zero() {
        assert_eq!(CubicleId::MONITOR.index(), 0);
        assert_eq!(CubicleId::MONITOR.mask_bit(), 1);
    }

    #[test]
    fn mask_bits_are_disjoint() {
        let bits: Vec<u64> = (0..64).map(|i| CubicleId(i).mask_bit()).collect();
        let mut acc = 0u64;
        for b in &bits {
            assert_eq!(acc & b, 0);
            acc |= b;
        }
        assert_eq!(acc, u64::MAX);
    }

    #[test]
    fn display() {
        assert_eq!(CubicleId(3).to_string(), "cubicle#3");
        assert_eq!(WindowId(1).to_string(), "window#1");
        assert_eq!(EntryId(9).to_string(), "entry#9");
    }
}

//! Per-cubicle resource ledger.
//!
//! One [`LedgerRow`] per cubicle, assembled on demand by
//! [`crate::System::ledger`]: how many pages the cubicle owns and how
//! many foreign pages it currently holds via trap-and-map, its live
//! windows and heap/stack usage, whether its key is resident or parked
//! under virtualisation, its quarantine state, and (when tracing is
//! enabled) the self/total cycles the span profiler attributes to it.
//! This is the data behind the `cubicle-top` table and the per-cubicle
//! Prometheus series.

use crate::cubicle::CubicleState;
use crate::ids::CubicleId;
use cubicle_mpk::ProtKey;

/// A snapshot of one cubicle's resource consumption.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LedgerRow {
    /// The cubicle this row describes.
    pub cubicle: CubicleId,
    /// Its human-readable name.
    pub name: String,
    /// Active or quarantined.
    pub state: CubicleState,
    /// Microreboot incarnation (0 for the original).
    pub generation: u32,
    /// The MPK key its pages are tagged with right now.
    pub key: ProtKey,
    /// Under key virtualisation: is the key currently the parked tag
    /// (pages inaccessible until the cubicle is entered again)?
    pub key_parked: bool,
    /// Pages whose recorded owner is this cubicle.
    pub pages_owned: usize,
    /// Foreign-owned pages currently tagged with this cubicle's key —
    /// i.e. pages trap-and-map moved to it through an open window and
    /// has not yet reclaimed.
    pub pages_held_foreign: usize,
    /// Live window descriptors.
    pub windows: usize,
    /// Window descriptors currently open for at least one peer.
    pub windows_open: usize,
    /// Bytes live in the heap sub-allocator.
    pub heap_used: usize,
    /// Bytes of heap capacity granted.
    pub heap_capacity: usize,
    /// Bytes of stack in use.
    pub stack_used: usize,
    /// Cross-calls into this cubicle (it as callee).
    pub calls_in: u64,
    /// Cross-calls out of this cubicle (it as caller).
    pub calls_out: u64,
    /// Trap-and-map faults by this cubicle answered from the window-grant
    /// cache (0 when the cache is disabled).
    pub grant_hits: u64,
    /// Exclusive cycles the span profiler attributes to the cubicle
    /// (0 when tracing is disabled).
    pub cycles_self: u64,
    /// Inclusive cycles: self plus everything its calls caused
    /// (0 when tracing is disabled).
    pub cycles_total: u64,
    /// Simulated core that most recently executed inside the cubicle
    /// (0 on a single-core run).
    pub last_core: u32,
}

impl LedgerRow {
    /// Is the cubicle quarantined in this snapshot?
    pub fn quarantined(&self) -> bool {
        self.state == CubicleState::Quarantined
    }
}

//! Kernel error type.

use crate::ids::{CubicleId, WindowId};
use cubicle_mpk::insn::ForbiddenInsn;
use cubicle_mpk::{Fault, VAddr};
use std::error::Error;
use std::fmt;

/// Errors surfaced by the CubicleOS kernel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CubicleError {
    /// A memory access faulted and the monitor could not authorise it:
    /// no open window covers the address for the accessing cubicle.
    WindowDenied {
        /// The cubicle whose access was refused.
        accessor: CubicleId,
        /// The cubicle owning the page.
        owner: CubicleId,
        /// The faulting address.
        addr: VAddr,
    },
    /// A raw machine fault that is not subject to window authorisation
    /// (unmapped page, page-permission violation).
    MachineFault(Fault),
    /// The referenced window does not exist in the calling cubicle.
    NoSuchWindow(WindowId),
    /// A window operation referenced memory the calling cubicle does not
    /// own ("windows are assigned to the calling cubicle, and can only be
    /// managed by it", paper §4).
    NotOwner {
        /// The offending address.
        addr: VAddr,
    },
    /// The loader refused a component image containing a forbidden
    /// instruction sequence (paper §5.4).
    ForbiddenInstruction(ForbiddenInsn),
    /// The loader refused a trampoline whose signature was not produced by
    /// the trusted builder.
    UntrustedTrampoline {
        /// Name of the offending entry.
        entry: String,
    },
    /// A cross-cubicle call named an entry that was never registered —
    /// control-flow-integrity violation.
    NoSuchEntry(String),
    /// Two components exported the same symbol name.
    DuplicateSymbol(String),
    /// A cross-cubicle call would re-enter a component that is already on
    /// the call stack (nested A→B→A); see paper §5.6 "Nested calls".
    ReentrantCall(CubicleId),
    /// All 16 MPK keys are in use (paper §8 discusses tag virtualisation
    /// as future work; this reproduction keeps the hardware limit).
    OutOfKeys,
    /// Too many cubicles for the 64-bit window ACL bitmask.
    TooManyCubicles,
    /// The cubicle's address-space budget is exhausted.
    OutOfMemory(CubicleId),
    /// The referenced cubicle has been quarantined by the monitor after a
    /// contained fault: its resources were reclaimed and cross-cubicle
    /// calls into it are rejected until [`crate::System::restart`].
    Quarantined {
        /// The quarantined cubicle.
        cubicle: CubicleId,
    },
    /// The cycle watchdog quarantined a callee that overran its
    /// configured cross-call cycle budget ([`crate::System::set_cycle_budget`]).
    CycleBudgetExceeded {
        /// The cubicle that was timed out.
        cubicle: CubicleId,
    },
    /// A restart arrived before the crash-looping cubicle's exponential
    /// backoff delay elapsed ([`crate::System::set_restart_policy`]).
    RestartBackoff {
        /// The cubicle still serving its backoff delay.
        cubicle: CubicleId,
        /// Earliest simulated cycle at which a restart will be accepted.
        ready_at: u64,
    },
    /// The cubicle exhausted its restart strikes and the monitor's policy
    /// declared the quarantine permanent: no further restarts accepted.
    PermanentlyQuarantined {
        /// The written-off cubicle.
        cubicle: CubicleId,
    },
    /// An ID that names no cubicle in this kernel reached a public
    /// interface.
    NoSuchCubicle(CubicleId),
    /// An invalid argument reached a kernel interface.
    InvalidArgument(&'static str),
    /// An application-level failure propagated through a cross-cubicle
    /// call (carries a printable reason).
    Component(String),
}

impl fmt::Display for CubicleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubicleError::WindowDenied { accessor, owner, addr } => write!(
                f,
                "isolation violation: {accessor} accessed {addr} owned by {owner} with no open window"
            ),
            CubicleError::MachineFault(fault) => write!(f, "machine fault: {fault}"),
            CubicleError::NoSuchWindow(wid) => write!(f, "no such window: {wid}"),
            CubicleError::NotOwner { addr } => {
                write!(f, "window operation on non-owned memory at {addr}")
            }
            CubicleError::ForbiddenInstruction(insn) => {
                write!(f, "loader rejected component: contains {insn} instruction")
            }
            CubicleError::UntrustedTrampoline { entry } => {
                write!(f, "loader rejected trampoline for `{entry}`: not signed by trusted builder")
            }
            CubicleError::NoSuchEntry(name) => {
                write!(f, "control-flow violation: `{name}` is not a public entry point")
            }
            CubicleError::DuplicateSymbol(name) => {
                write!(f, "duplicate export symbol `{name}`")
            }
            CubicleError::ReentrantCall(cid) => {
                write!(f, "nested cross-cubicle call re-enters {cid}")
            }
            CubicleError::OutOfKeys => write!(f, "all 16 MPK protection keys are in use"),
            CubicleError::TooManyCubicles => write!(f, "more than 64 cubicles requested"),
            CubicleError::OutOfMemory(cid) => write!(f, "{cid} is out of memory"),
            CubicleError::Quarantined { cubicle } => {
                write!(f, "{cubicle} is quarantined after a contained fault")
            }
            CubicleError::CycleBudgetExceeded { cubicle } => {
                write!(f, "watchdog timed out {cubicle}: cross-call cycle budget exceeded")
            }
            CubicleError::RestartBackoff { cubicle, ready_at } => write!(
                f,
                "restart of {cubicle} refused: backoff in effect until cycle {ready_at}"
            ),
            CubicleError::PermanentlyQuarantined { cubicle } => write!(
                f,
                "{cubicle} is permanently quarantined: restart strikes exhausted"
            ),
            CubicleError::NoSuchCubicle(cid) => write!(f, "no such cubicle: {cid}"),
            CubicleError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            CubicleError::Component(msg) => write!(f, "component error: {msg}"),
        }
    }
}

impl CubicleError {
    /// The POSIX errno the monitor's unwind path converts this error to
    /// at the first cross-call boundary into a healthy cubicle, or `None`
    /// when the error is not a containable fault (caller bugs like
    /// [`CubicleError::ReentrantCall`] propagate unchanged).
    pub fn contained_errno(&self) -> Option<crate::errno::Errno> {
        match self {
            CubicleError::WindowDenied { .. }
            | CubicleError::MachineFault(_)
            | CubicleError::Quarantined { .. } => Some(crate::errno::Errno::Efault),
            CubicleError::OutOfMemory(_) => Some(crate::errno::Errno::Enomem),
            CubicleError::CycleBudgetExceeded { .. } => Some(crate::errno::Errno::Etimedout),
            _ => None,
        }
    }
}

impl Error for CubicleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CubicleError::MachineFault(fault) => Some(fault),
            _ => None,
        }
    }
}

impl From<Fault> for CubicleError {
    fn from(fault: Fault) -> Self {
        CubicleError::MachineFault(fault)
    }
}

/// Convenient result alias for kernel operations.
pub type Result<T, E = CubicleError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;
    use cubicle_mpk::{AccessKind, FaultKind};

    #[test]
    fn display_messages_are_informative() {
        let e = CubicleError::WindowDenied {
            accessor: CubicleId(2),
            owner: CubicleId(1),
            addr: VAddr::new(0x4000),
        };
        let s = e.to_string();
        assert!(s.contains("cubicle#2") && s.contains("cubicle#1") && s.contains("0x4000"));
    }

    #[test]
    fn machine_fault_has_source() {
        let fault = Fault {
            addr: VAddr::new(0x1),
            access: AccessKind::Read,
            kind: FaultKind::NotPresent,
        };
        let e = CubicleError::from(fault);
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CubicleError>();
    }
}

//! Log2-bucketed cycle histograms for cross-cubicle call latencies.
//!
//! Recorded at cross-call exit, per `caller → callee` edge and per entry
//! point, so a run can report tail latencies (p50/p95/p99/max) for every
//! boundary in the component graph — the per-edge view behind the
//! paper's Figure 6 cost decomposition.
//!
//! Buckets are powers of two: a sample `v` lands in the bucket of its
//! bit length, i.e. bucket `i` holds samples in `[2^(i-1), 2^i)` (bucket
//! 0 holds exactly 0). Quantiles are therefore approximate, reported as
//! the upper bound of the bucket the quantile falls in — factor-of-two
//! resolution, which is plenty for cycle costs spanning six orders of
//! magnitude.

use crate::ids::{CubicleId, EntryId};
use std::collections::HashMap;

/// Number of buckets: bit lengths 0..=64.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of cycle counts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleHisto {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for CycleHisto {
    fn default() -> CycleHisto {
        CycleHisto {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

/// Index of the bucket `v` lands in: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl CycleHisto {
    /// Adds one sample.
    pub fn record(&mut self, cycles: u64) {
        self.buckets[bucket_of(cycles)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(cycles);
        self.max = self.max.max(cycles);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The approximate `q`-quantile (`0.0 ..= 1.0`): the upper bound of
    /// the first bucket whose cumulative count reaches `q * count`.
    /// Returns 0 for an empty histogram. The exact `max` is returned for
    /// the final occupied bucket, so `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        let last_occupied = (0..NUM_BUCKETS)
            .rev()
            .find(|&i| self.buckets[i] > 0)
            .unwrap_or(0);
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                // cap the top bucket's upper bound at the observed max
                return if i == last_occupied {
                    self.max
                } else {
                    bucket_upper(i)
                };
            }
        }
        self.max
    }

    /// Median (approximate, see [`CycleHisto::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (approximate).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (approximate).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The raw bucket counts (index = bit length of the sample).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Iterates `(inclusive_upper_bound, count)` over occupied buckets.
    pub fn occupied_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }
}

/// Cross-call latency histograms, keyed per edge and per entry point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Metrics {
    edges: HashMap<(CubicleId, CubicleId), CycleHisto>,
    entries: HashMap<EntryId, CycleHisto>,
}

impl Metrics {
    /// Records one completed cross-call.
    pub fn record_call(
        &mut self,
        caller: CubicleId,
        callee: CubicleId,
        entry: EntryId,
        cycles: u64,
    ) {
        self.edges
            .entry((caller, callee))
            .or_default()
            .record(cycles);
        self.entries.entry(entry).or_default().record(cycles);
    }

    /// Histogram for a `caller → callee` edge, if any call was recorded.
    pub fn edge(&self, caller: CubicleId, callee: CubicleId) -> Option<&CycleHisto> {
        self.edges.get(&(caller, callee))
    }

    /// Histogram for an entry point, if any call was recorded.
    pub fn entry(&self, entry: EntryId) -> Option<&CycleHisto> {
        self.entries.get(&entry)
    }

    /// Iterates all edges, sorted for deterministic output.
    pub fn edges(&self) -> Vec<(&(CubicleId, CubicleId), &CycleHisto)> {
        let mut v: Vec<_> = self.edges.iter().collect();
        v.sort_by_key(|(k, _)| **k);
        v
    }

    /// Iterates all entry points, sorted for deterministic output.
    pub fn entries(&self) -> Vec<(&EntryId, &CycleHisto)> {
        let mut v: Vec<_> = self.entries.iter().collect();
        v.sort_by_key(|(k, _)| **k);
        v
    }

    /// Total recorded calls, across all edges.
    pub fn total_calls(&self) -> u64 {
        self.edges.values().map(CycleHisto::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn count_sum_max_track_samples() {
        let mut h = CycleHisto::default();
        for v in [10, 20, 3000, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3030);
        assert_eq!(h.max(), 3000);
        assert_eq!(h.mean(), 757);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = CycleHisto::default();
        // 90 fast samples (~100 cycles), 10 slow (~100k cycles)
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let p50 = h.p50();
        assert!((64..=127).contains(&p50), "p50 = {p50}");
        assert_eq!(
            h.p95(),
            100_000,
            "tail quantile reports the max of its bucket"
        );
        assert_eq!(h.p99(), 100_000);
        assert_eq!(h.quantile(1.0), 100_000);
        assert!(h.quantile(0.0) > 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = CycleHisto::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.occupied_buckets().count(), 0);
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample() {
        let mut h = CycleHisto::default();
        h.record(777);
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn metrics_key_by_edge_and_entry() {
        let mut m = Metrics::default();
        m.record_call(CubicleId(1), CubicleId(2), EntryId(0), 500);
        m.record_call(CubicleId(1), CubicleId(2), EntryId(0), 700);
        m.record_call(CubicleId(1), CubicleId(3), EntryId(1), 50);
        assert_eq!(m.edge(CubicleId(1), CubicleId(2)).unwrap().count(), 2);
        assert_eq!(m.edge(CubicleId(1), CubicleId(3)).unwrap().count(), 1);
        assert!(m.edge(CubicleId(2), CubicleId(1)).is_none());
        assert_eq!(m.entry(EntryId(0)).unwrap().count(), 2);
        assert_eq!(m.entry(EntryId(1)).unwrap().sum(), 50);
        assert_eq!(m.total_calls(), 3);
        assert_eq!(m.edges().len(), 2);
        assert_eq!(m.entries().len(), 2);
    }
}

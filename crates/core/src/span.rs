//! Causal span profiling over the kernel event stream.
//!
//! Every cross-cubicle call opens a **span** (id, parent id, caller,
//! callee, entry, start/end cycle); the in-flight call chain is an
//! explicit span tree. From that tree the profiler derives the paper's
//! missing attribution axis: not just *what* happened (PR 1's counters
//! and histograms) but *who caused it and what it cost* — exclusive
//! (self) versus inclusive (total) cycles per cubicle and per entry
//! point, plus windows opened, stack bytes copied, PKRU writes, faults
//! and heap bytes charged to the span active when they occurred.
//!
//! Attribution is delta-based: the profiler keeps a `last_stamp` cursor
//! and, on every span open/close, assigns the elapsed gap to the span on
//! top of the open stack (or to the root caller when the stack is
//! empty). This makes two invariants hold exactly, both enforced by
//! tests:
//!
//! * per span: `self + Σ(child totals) == total`;
//! * globally: `Σ(per-cubicle self) == attributed window`
//!   ([`SpanProfiler::attributed_window`]).
//!
//! Like the rest of the tracer, the profiler is strictly an observer:
//! it never charges simulated cycles.

use crate::ids::{CubicleId, EntryId};
use crate::trace::TraceEvent;
use std::collections::{HashMap, VecDeque};

/// One frame of a collapsed flamegraph stack: the root context (a
/// cubicle executing outside any cross-call) or one cross-call hop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SpanFrame {
    /// The cubicle driving calls at stack depth zero.
    Root(CubicleId),
    /// A cross-call into `0` through entry point `1`.
    Call(CubicleId, EntryId),
}

/// Exclusive/inclusive cycle attribution for one cubicle or entry point.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CycleAttribution {
    /// Cycles spent with this subject itself on top of the span stack
    /// (exclusive time: children's cycles excluded).
    pub self_cycles: u64,
    /// Cycles of whole spans attributed to this subject (inclusive
    /// time). Per cubicle, nested re-appearances under an ancestor of
    /// the same cubicle are not double-counted.
    pub total_cycles: u64,
    /// Completed spans attributed to this subject (calls into it).
    pub calls: u64,
}

/// A completed span: one cross-cubicle call with cycle and resource
/// attribution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// Unique span id (allocated per cross-call, never reused; 0 is
    /// reserved for "no span").
    pub id: u64,
    /// The id of the enclosing span, 0 for a depth-zero call.
    pub parent: u64,
    /// The calling cubicle.
    pub caller: CubicleId,
    /// The cubicle entered.
    pub callee: CubicleId,
    /// The entry point invoked.
    pub entry: EntryId,
    /// Cycle stamp at span open.
    pub start: u64,
    /// Cycle stamp at span close.
    pub end: u64,
    /// Exclusive cycles: time with this span on top of the stack.
    pub self_cycles: u64,
    /// Summed totals of direct children.
    pub child_cycles: u64,
    /// Nesting depth (0 = opened with an empty stack).
    pub depth: usize,
    /// `window_open` operations performed under this span (exclusive).
    pub windows_opened: u64,
    /// Trampoline stack-argument bytes copied under this span.
    pub bytes_copied: u64,
    /// PKRU writes under this span.
    pub pkru_writes: u64,
    /// Page retags under this span.
    pub retags: u64,
    /// Trap-and-map faults (resolved + denied) under this span.
    pub faults: u64,
    /// Heap bytes allocated under this span.
    pub heap_bytes: u64,
}

impl SpanRecord {
    /// Inclusive cycles: close stamp minus open stamp. Equals
    /// [`SpanRecord::self_cycles`] + [`SpanRecord::child_cycles`].
    pub fn total_cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// An open (in-flight) span on the profiler's stack.
#[derive(Clone, Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    caller: CubicleId,
    callee: CubicleId,
    entry: EntryId,
    start: u64,
    self_cycles: u64,
    child_cycles: u64,
    windows_opened: u64,
    bytes_copied: u64,
    pkru_writes: u64,
    retags: u64,
    faults: u64,
    heap_bytes: u64,
    /// Collapsed-stack path from the root to this span.
    path: Vec<SpanFrame>,
}

/// The causal span profiler. Fed every trace event by the tracer (see
/// `System::enable_tracing`); derives the span tree, per-cubicle and
/// per-entry cycle attribution, and the collapsed-stack flamegraph.
#[derive(Clone, Debug)]
pub struct SpanProfiler {
    open: Vec<OpenSpan>,
    /// Completed spans, newest last (bounded ring like the trace
    /// buffer).
    recent: VecDeque<SpanRecord>,
    recent_capacity: usize,
    /// Completed spans evicted from `recent`.
    dropped: u64,
    /// Cycle stamp when profiling started.
    epoch: u64,
    /// Everything in `[epoch, last_stamp)` has been attributed.
    last_stamp: u64,
    per_cubicle: HashMap<CubicleId, CycleAttribution>,
    per_entry: HashMap<EntryId, CycleAttribution>,
    /// Collapsed-stack self-cycle counts, keyed by root-to-leaf path.
    folded: HashMap<Vec<SpanFrame>, u64>,
    spans_completed: u64,
}

impl SpanProfiler {
    /// Creates a profiler whose attribution window starts at `epoch`
    /// and which retains at most `capacity` completed spans.
    pub fn new(epoch: u64, capacity: usize) -> SpanProfiler {
        SpanProfiler {
            open: Vec::new(),
            recent: VecDeque::new(),
            recent_capacity: capacity.max(1),
            dropped: 0,
            epoch,
            last_stamp: epoch,
            per_cubicle: HashMap::new(),
            per_entry: HashMap::new(),
            folded: HashMap::new(),
            spans_completed: 0,
        }
    }

    /// The span id currently on top of the stack, 0 when no cross-call
    /// is in flight.
    pub fn current_span(&self) -> u64 {
        self.open.last().map_or(0, |o| o.id)
    }

    /// Current nesting depth of in-flight spans.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Cycles attributed so far: the span between the profiling epoch
    /// and the last span open/close. Equals the sum of all per-cubicle
    /// self cycles — the profiler's conservation invariant.
    pub fn attributed_window(&self) -> u64 {
        self.last_stamp - self.epoch
    }

    /// Completed spans retained (oldest first).
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.recent.iter()
    }

    /// Completed spans ever recorded (retained + dropped).
    pub fn spans_completed(&self) -> u64 {
        self.spans_completed
    }

    /// Completed spans evicted from the bounded retention ring.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-cubicle cycle attribution, sorted by cubicle id.
    pub fn per_cubicle(&self) -> Vec<(CubicleId, CycleAttribution)> {
        let mut v: Vec<_> = self.per_cubicle.iter().map(|(&c, &a)| (c, a)).collect();
        v.sort_by_key(|(c, _)| *c);
        v
    }

    /// Attribution for one cubicle (zero when it never appeared).
    pub fn cubicle_attribution(&self, cid: CubicleId) -> CycleAttribution {
        self.per_cubicle.get(&cid).copied().unwrap_or_default()
    }

    /// Per-entry-point cycle attribution, sorted by entry id.
    pub fn per_entry(&self) -> Vec<(EntryId, CycleAttribution)> {
        let mut v: Vec<_> = self.per_entry.iter().map(|(&e, &a)| (e, a)).collect();
        v.sort_by_key(|(e, _)| *e);
        v
    }

    /// Collapsed-stack (flamegraph) lines as `(path, self_cycles)`,
    /// sorted by path for deterministic output. Zero-count paths are
    /// omitted.
    pub fn folded(&self) -> Vec<(&[SpanFrame], u64)> {
        let mut v: Vec<_> = self
            .folded
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(p, &n)| (p.as_slice(), n))
            .collect();
        v.sort();
        v
    }

    /// Feeds one trace event to the profiler. Called by the tracer for
    /// every recorded event, in stream order.
    pub fn on_event(&mut self, at: u64, event: &TraceEvent) {
        match *event {
            TraceEvent::CrossCallEnter {
                span,
                caller,
                callee,
                entry,
                ..
            } => self.on_enter(at, span, caller, callee, entry),
            TraceEvent::CrossCallExit { span, .. } => self.on_exit(at, span),
            TraceEvent::WindowOp {
                op: crate::trace::WindowOpKind::Open,
                ..
            } => {
                if let Some(top) = self.open.last_mut() {
                    top.windows_opened += 1;
                }
            }
            TraceEvent::StackCopy { bytes, .. } => {
                if let Some(top) = self.open.last_mut() {
                    top.bytes_copied += bytes as u64;
                }
            }
            TraceEvent::WrPkru { .. } => {
                if let Some(top) = self.open.last_mut() {
                    top.pkru_writes += 1;
                }
            }
            TraceEvent::Retag { .. } => {
                if let Some(top) = self.open.last_mut() {
                    top.retags += 1;
                }
            }
            TraceEvent::FaultResolved { .. } | TraceEvent::FaultDenied { .. } => {
                if let Some(top) = self.open.last_mut() {
                    top.faults += 1;
                }
            }
            TraceEvent::HeapAlloc { bytes, .. } => {
                if let Some(top) = self.open.last_mut() {
                    top.heap_bytes += bytes as u64;
                }
            }
            _ => {}
        }
    }

    /// Attributes the gap since `last_stamp` to the top-of-stack span,
    /// or to `root` (the cubicle driving calls) when the stack is empty.
    fn attribute_gap(&mut self, at: u64, root: CubicleId) {
        let gap = at.saturating_sub(self.last_stamp);
        self.last_stamp = self.last_stamp.max(at);
        if gap == 0 {
            return;
        }
        match self.open.last_mut() {
            Some(top) => {
                top.self_cycles += gap;
                let cubicle = top.callee;
                let entry = top.entry;
                *self.folded.entry(top.path.clone()).or_insert(0) += gap;
                self.per_cubicle.entry(cubicle).or_default().self_cycles += gap;
                self.per_entry.entry(entry).or_default().self_cycles += gap;
            }
            None => {
                *self.folded.entry(vec![SpanFrame::Root(root)]).or_insert(0) += gap;
                let a = self.per_cubicle.entry(root).or_default();
                a.self_cycles += gap;
                a.total_cycles += gap;
            }
        }
    }

    fn on_enter(&mut self, at: u64, id: u64, caller: CubicleId, callee: CubicleId, entry: EntryId) {
        self.attribute_gap(at, caller);
        let parent = self.current_span();
        let mut path = match self.open.last() {
            Some(top) => top.path.clone(),
            None => vec![SpanFrame::Root(caller)],
        };
        path.push(SpanFrame::Call(callee, entry));
        self.open.push(OpenSpan {
            id,
            parent,
            caller,
            callee,
            entry,
            start: at,
            self_cycles: 0,
            child_cycles: 0,
            windows_opened: 0,
            bytes_copied: 0,
            pkru_writes: 0,
            retags: 0,
            faults: 0,
            heap_bytes: 0,
            path,
        });
    }

    fn on_exit(&mut self, at: u64, id: u64) {
        // An exit without a matching open span (tracing was enabled
        // mid-call-chain): nothing to close, but the elapsed gap still
        // belongs to whatever is on the stack.
        if self.open.last().is_none_or(|o| o.id != id) {
            let root = self.open.first().map_or(CubicleId::MONITOR, |o| o.caller);
            self.attribute_gap(at, root);
            return;
        }
        // Close the top span: the gap since the last stamp is its self
        // time, its total flows into the parent's child sum.
        let root = self.open.first().map(|o| o.caller).expect("stack nonempty");
        self.attribute_gap(at, root);
        let top = self.open.pop().expect("checked above");
        let total = at - top.start;
        if let Some(parent) = self.open.last_mut() {
            parent.child_cycles += total;
        }
        // Inclusive attribution. Per cubicle, a span nested under an
        // ancestor span of the *same* cubicle (or under its own root
        // context) is already covered by that ancestor's total — adding
        // it again would double-count.
        let root_caller = self.open.first().map_or(top.caller, |o| o.caller);
        let covered = top.callee == root_caller || self.open.iter().any(|o| o.callee == top.callee);
        if !covered {
            self.per_cubicle.entry(top.callee).or_default().total_cycles += total;
        }
        if self.open.is_empty() && top.callee != top.caller {
            // A depth-zero span is part of the root caller's inclusive
            // time as well: the root was blocked in the call.
            self.per_cubicle.entry(top.caller).or_default().total_cycles += total;
        }
        {
            let a = self.per_cubicle.entry(top.callee).or_default();
            a.calls += 1;
        }
        let e = self.per_entry.entry(top.entry).or_default();
        e.total_cycles += total;
        e.calls += 1;
        self.spans_completed += 1;
        if self.recent.len() >= self.recent_capacity {
            self.recent.pop_front();
            self.dropped += 1;
        }
        self.recent.push_back(SpanRecord {
            id: top.id,
            parent: top.parent,
            caller: top.caller,
            callee: top.callee,
            entry: top.entry,
            start: top.start,
            end: at,
            self_cycles: top.self_cycles,
            child_cycles: top.child_cycles,
            depth: self.open.len(),
            windows_opened: top.windows_opened,
            bytes_copied: top.bytes_copied,
            pkru_writes: top.pkru_writes,
            retags: top.retags,
            faults: top.faults,
            heap_bytes: top.heap_bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: CubicleId = CubicleId(1);
    const B: CubicleId = CubicleId(2);
    const C: CubicleId = CubicleId(3);
    const E1: EntryId = EntryId(10);
    const E2: EntryId = EntryId(11);

    fn enter(p: &mut SpanProfiler, at: u64, id: u64, caller: CubicleId, callee: CubicleId) {
        let entry = if id % 2 == 1 { E1 } else { E2 };
        p.on_event(
            at,
            &TraceEvent::CrossCallEnter {
                span: id,
                parent: p.current_span(),
                caller,
                callee,
                entry,
            },
        );
    }

    fn exit(p: &mut SpanProfiler, at: u64, id: u64, caller: CubicleId, callee: CubicleId) {
        let entry = if id % 2 == 1 { E1 } else { E2 };
        p.on_event(
            at,
            &TraceEvent::CrossCallExit {
                span: id,
                caller,
                callee,
                entry,
                cycles: 0,
            },
        );
    }

    #[test]
    fn nested_self_and_total_attribution() {
        // A→B at 0, B→C at 10, C exits at 30, B exits at 50.
        let mut p = SpanProfiler::new(0, 64);
        enter(&mut p, 0, 1, A, B);
        enter(&mut p, 10, 2, B, C);
        exit(&mut p, 30, 2, B, C);
        exit(&mut p, 50, 1, A, B);

        let spans: Vec<_> = p.spans().copied().collect();
        assert_eq!(spans.len(), 2);
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.id, 2);
        assert_eq!(inner.parent, 1);
        assert_eq!(inner.self_cycles, 20);
        assert_eq!(inner.total_cycles(), 20);
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.self_cycles, 30);
        assert_eq!(outer.child_cycles, 20);
        assert_eq!(outer.total_cycles(), 50);
        assert_eq!(outer.self_cycles + outer.child_cycles, outer.total_cycles());

        assert_eq!(p.cubicle_attribution(B).self_cycles, 30);
        assert_eq!(p.cubicle_attribution(C).self_cycles, 20);
        assert_eq!(p.cubicle_attribution(B).total_cycles, 50);
        assert_eq!(p.cubicle_attribution(C).total_cycles, 20);
        assert_eq!(p.cubicle_attribution(A).total_cycles, 50, "root blocked");
        let self_sum: u64 = p.per_cubicle().iter().map(|(_, a)| a.self_cycles).sum();
        assert_eq!(self_sum, p.attributed_window());
        assert_eq!(p.attributed_window(), 50);
    }

    #[test]
    fn root_gaps_go_to_the_driving_cubicle() {
        let mut p = SpanProfiler::new(100, 64);
        enter(&mut p, 140, 1, A, B); // 40 root cycles for A
        exit(&mut p, 150, 1, A, B);
        enter(&mut p, 170, 2, A, C); // 20 more root cycles
        exit(&mut p, 180, 2, A, C);
        assert_eq!(p.cubicle_attribution(A).self_cycles, 60);
        assert_eq!(p.attributed_window(), 80);
        let self_sum: u64 = p.per_cubicle().iter().map(|(_, a)| a.self_cycles).sum();
        assert_eq!(self_sum, 80);
    }

    #[test]
    fn recursive_cubicle_totals_not_double_counted() {
        // A→B→C→B: the inner B span is covered by the outer B span.
        let mut p = SpanProfiler::new(0, 64);
        enter(&mut p, 0, 1, A, B);
        enter(&mut p, 10, 2, B, C);
        enter(&mut p, 20, 3, C, B);
        exit(&mut p, 30, 3, C, B);
        exit(&mut p, 40, 2, B, C);
        exit(&mut p, 50, 1, A, B);
        assert_eq!(p.cubicle_attribution(B).total_cycles, 50, "outer only");
        assert_eq!(p.cubicle_attribution(C).total_cycles, 30);
        let self_sum: u64 = p.per_cubicle().iter().map(|(_, a)| a.self_cycles).sum();
        assert_eq!(self_sum, 50);
    }

    #[test]
    fn folded_paths_accumulate_self_cycles() {
        let mut p = SpanProfiler::new(0, 64);
        enter(&mut p, 5, 1, A, B);
        enter(&mut p, 10, 2, B, C);
        exit(&mut p, 30, 2, B, C);
        exit(&mut p, 50, 1, A, B);
        let folded = p.folded();
        let total: u64 = folded.iter().map(|(_, n)| n).sum();
        assert_eq!(total, p.attributed_window());
        assert!(folded.iter().any(|(path, n)| *n == 20
            && path.len() == 3
            && path[0] == SpanFrame::Root(A)
            && matches!(path[2], SpanFrame::Call(c, _) if c == C)));
    }

    #[test]
    fn resources_attach_to_the_active_span() {
        let mut p = SpanProfiler::new(0, 64);
        enter(&mut p, 0, 1, A, B);
        p.on_event(
            1,
            &TraceEvent::StackCopy {
                caller: A,
                callee: B,
                bytes: 96,
            },
        );
        p.on_event(
            2,
            &TraceEvent::HeapAlloc {
                cubicle: B,
                addr: cubicle_mpk::VAddr::new(0x1000),
                bytes: 256,
            },
        );
        p.on_event(
            3,
            &TraceEvent::WrPkru {
                pkru: cubicle_mpk::Pkru::allow_all(),
            },
        );
        exit(&mut p, 10, 1, A, B);
        let span = p.spans().next().unwrap();
        assert_eq!(span.bytes_copied, 96);
        assert_eq!(span.heap_bytes, 256);
        assert_eq!(span.pkru_writes, 1);
    }

    #[test]
    fn unmatched_exit_is_tolerated() {
        let mut p = SpanProfiler::new(0, 64);
        exit(&mut p, 25, 9, A, B); // no matching enter
        assert_eq!(p.spans().count(), 0);
        assert_eq!(p.attributed_window(), 25);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn retention_ring_is_bounded() {
        let mut p = SpanProfiler::new(0, 2);
        for i in 0..5u64 {
            enter(&mut p, i * 10, i + 1, A, B);
            exit(&mut p, i * 10 + 5, i + 1, A, B);
        }
        assert_eq!(p.spans().count(), 2);
        assert_eq!(p.spans_completed(), 5);
        assert_eq!(p.spans_dropped(), 3);
    }
}

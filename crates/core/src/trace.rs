//! Bounded kernel event trace.
//!
//! The paper's evaluation reasons about *which* mechanism cost where:
//! Figure 6 decomposes cross-call overhead into trampoline, MPK-switch
//! and window shares, Figures 5/8 annotate component graphs with call
//! counts. The trace buffer records the underlying events — cross-call
//! enter/exit, trap-and-map outcomes, retags, PKRU writes, window and
//! allocator operations — each stamped with the simulated cycle counter,
//! so any run can be replayed into those figures (or loaded into
//! Perfetto via `System::export_chrome_trace`).
//!
//! Recording is strictly an observer: it never charges simulated cycles,
//! and with tracing disabled (the default) the kernel takes a single
//! `Option::is_some` branch per potential event.

use crate::ids::{CubicleId, EntryId, WindowId};
use cubicle_mpk::{AccessKind, Pkru, ProtKey, VAddr};
use std::collections::VecDeque;

/// Which window-API operation a [`TraceEvent::WindowOp`] records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WindowOpKind {
    /// `cubicle_window_init`.
    Init,
    /// `cubicle_window_add`.
    Add,
    /// `cubicle_window_remove`.
    Remove,
    /// `cubicle_window_open`.
    Open,
    /// `cubicle_window_close`.
    Close,
    /// `cubicle_window_close_all`.
    CloseAll,
    /// `cubicle_window_destroy`.
    Destroy,
}

impl WindowOpKind {
    /// Stable lower-case name (used by the exporters).
    pub fn as_str(self) -> &'static str {
        match self {
            WindowOpKind::Init => "init",
            WindowOpKind::Add => "add",
            WindowOpKind::Remove => "remove",
            WindowOpKind::Open => "open",
            WindowOpKind::Close => "close",
            WindowOpKind::CloseAll => "close_all",
            WindowOpKind::Destroy => "destroy",
        }
    }
}

/// What decided a trap-and-map outcome (kept in the fault audit log).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultDecision {
    /// The accessor owns the page: implicit window 0, always readmitted
    /// (causal tag consistency, paper §5.6).
    OwnerReclaim,
    /// Ablation mode without ACLs: every window counts as open.
    AclsDisabled,
    /// This window descriptor of the owner covered the page and its ACL
    /// admitted the accessor.
    Window(WindowId),
    /// No covering window admitted the accessor; the access was refused.
    Denied,
}

/// One audited trap-and-map resolution: who touched whose page, and
/// which descriptor (if any) authorised it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultAudit {
    /// Simulated cycle count at resolution time.
    pub at: u64,
    /// The faulting address.
    pub addr: VAddr,
    /// Owner of the page.
    pub owner: CubicleId,
    /// The cubicle that performed the access.
    pub accessor: CubicleId,
    /// Read, write or execute.
    pub access: AccessKind,
    /// How the monitor decided.
    pub decision: FaultDecision,
}

impl FaultAudit {
    /// Did the monitor admit the access?
    pub fn resolved(&self) -> bool {
        !matches!(self.decision, FaultDecision::Denied)
    }
}

/// A kernel event, as recorded in the [`TraceBuffer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A cross-cubicle call entered its trampoline, opening a span.
    CrossCallEnter {
        /// The span this call opens (unique per call, never reused; 0
        /// is reserved for "no span").
        span: u64,
        /// The enclosing span, 0 for a depth-zero call.
        parent: u64,
        /// The calling cubicle.
        caller: CubicleId,
        /// The cubicle being entered.
        callee: CubicleId,
        /// The entry point invoked.
        entry: EntryId,
    },
    /// A cross-cubicle call returned (on every path, including errors),
    /// closing its span.
    CrossCallExit {
        /// The span being closed (matches the enter's `span`).
        span: u64,
        /// The calling cubicle.
        caller: CubicleId,
        /// The cubicle that was entered.
        callee: CubicleId,
        /// The entry point invoked.
        entry: EntryId,
        /// Simulated cycles between enter and exit, callee work included.
        cycles: u64,
    },
    /// Trap-and-map admitted an access and retagged the page.
    FaultResolved {
        /// The faulting address.
        addr: VAddr,
        /// Owner of the page.
        owner: CubicleId,
        /// The accessing cubicle.
        accessor: CubicleId,
        /// Read, write or execute.
        kind: AccessKind,
    },
    /// Trap-and-map refused an access (no open window).
    FaultDenied {
        /// The faulting address.
        addr: VAddr,
        /// Owner of the page.
        owner: CubicleId,
        /// The accessing cubicle.
        accessor: CubicleId,
        /// Read, write or execute.
        kind: AccessKind,
    },
    /// A page changed protection key (`pkey_mprotect`).
    Retag {
        /// Base address of the page.
        addr: VAddr,
        /// Key before.
        from: ProtKey,
        /// Key after.
        to: ProtKey,
    },
    /// The PKRU register was written (`wrpkru`).
    WrPkru {
        /// The value written.
        pkru: Pkru,
    },
    /// A window-API operation completed.
    WindowOp {
        /// Which operation.
        op: WindowOpKind,
        /// The window operated on.
        wid: WindowId,
        /// The peer granted/revoked, when the operation has one.
        peer: Option<CubicleId>,
    },
    /// A heap allocation succeeded.
    HeapAlloc {
        /// The owning cubicle.
        cubicle: CubicleId,
        /// Address handed out.
        addr: VAddr,
        /// Bytes requested.
        bytes: usize,
    },
    /// A heap allocation was released.
    HeapFree {
        /// The owning cubicle.
        cubicle: CubicleId,
        /// Address released.
        addr: VAddr,
    },
    /// A trampoline copied stack-resident arguments between stacks.
    StackCopy {
        /// The calling cubicle.
        caller: CubicleId,
        /// The called cubicle.
        callee: CubicleId,
        /// Bytes copied.
        bytes: usize,
    },
    /// The monitor quarantined a cubicle after a contained fault. Opens
    /// a quarantine span on the cubicle's trace track; the matching
    /// [`TraceEvent::Restart`] closes it.
    Quarantine {
        /// The quarantined cubicle.
        cubicle: CubicleId,
    },
    /// The monitor microrebooted a quarantined cubicle
    /// (`System::restart`), closing its quarantine span.
    Restart {
        /// The rebooted cubicle.
        cubicle: CubicleId,
        /// Its new incarnation number (1 for the first reboot).
        generation: u32,
    },
    /// The unwind path converted a containable fault into an errno at
    /// the cross-call boundary into a healthy caller.
    FaultContained {
        /// The callee whose call chain was unwound.
        callee: CubicleId,
        /// The healthy caller that received the errno.
        caller: CubicleId,
        /// The negative errno handed to the caller.
        errno: i64,
    },
    /// A page was reclaimed (unmapped) by the quarantine path.
    PageReclaim {
        /// Base address of the reclaimed page.
        addr: VAddr,
        /// The key the page carried when reclaimed.
        key: ProtKey,
    },
}

/// A recorded event: sequence number + cycle stamp + payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Monotonic sequence number (never reused, survives overwrites).
    pub seq: u64,
    /// Simulated cycle count when the event was recorded.
    pub at: u64,
    /// Simulated core the event occurred on (0 on a single-core run).
    pub core: u32,
    /// The event itself.
    pub event: TraceEvent,
}

/// Bounded ring of [`TraceRecord`]s: when full, the oldest record is
/// overwritten and [`TraceBuffer::dropped`] grows.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        let capacity = capacity.max(1);
        TraceBuffer {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends an event stamped `at` cycles on core 0, overwriting the
    /// oldest record when full.
    pub fn push(&mut self, at: u64, event: TraceEvent) {
        self.push_on(at, 0, event);
    }

    /// Appends an event stamped `at` cycles on core `core`. The sequence
    /// number totally orders records across cores (host order, which is
    /// also the serialization order of the monitor), while `at` is the
    /// per-core simulated clock.
    pub fn push_on(&mut self, at: u64, core: u32, event: TraceEvent) {
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            core,
            event,
        });
        self.next_seq += 1;
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // distinguishable filler events
    fn ev(n: u16) -> TraceEvent {
        TraceEvent::HeapFree {
            cubicle: CubicleId(n),
            addr: VAddr::new(0),
        }
    }

    #[test]
    fn push_and_iterate_in_order() {
        let mut buf = TraceBuffer::new(8);
        for i in 0..5 {
            buf.push(u64::from(i) * 10, ev(i));
        }
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.dropped(), 0);
        let ats: Vec<u64> = buf.records().map(|r| r.at).collect();
        assert_eq!(ats, vec![0, 10, 20, 30, 40]);
        let seqs: Vec<u64> = buf.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let mut buf = TraceBuffer::new(3);
        for i in 0..7 {
            buf.push(u64::from(i), ev(i));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 4);
        assert_eq!(buf.total_recorded(), 7);
        let ats: Vec<u64> = buf.records().map(|r| r.at).collect();
        assert_eq!(ats, vec![4, 5, 6], "oldest records were evicted");
        let seqs: Vec<u64> = buf.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6], "sequence numbers survive eviction");
    }

    #[test]
    fn capacity_has_a_floor_of_one() {
        let mut buf = TraceBuffer::new(0);
        buf.push(1, ev(0));
        buf.push(2, ev(1));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.dropped(), 1);
    }

    #[test]
    fn window_op_names_are_stable() {
        assert_eq!(WindowOpKind::Init.as_str(), "init");
        assert_eq!(WindowOpKind::CloseAll.as_str(), "close_all");
        assert_eq!(WindowOpKind::Destroy.as_str(), "destroy");
    }

    #[test]
    fn audit_resolved_flag() {
        let mk = |decision| FaultAudit {
            at: 0,
            addr: VAddr::new(0x1000),
            owner: CubicleId(1),
            accessor: CubicleId(2),
            access: AccessKind::Read,
            decision,
        };
        assert!(mk(FaultDecision::OwnerReclaim).resolved());
        assert!(mk(FaultDecision::Window(WindowId(0))).resolved());
        assert!(!mk(FaultDecision::Denied).resolved());
    }
}
